//! The scenario registry: named `(design × noise × decoder × n-grid)`
//! configurations runnable end-to-end from the `repro` binary.
//!
//! A [`Scenario`] bundles everything needed to reproduce one headline
//! number: which [`DesignSpec`] samples the pooling graph, which noise
//! model corrupts the measurements, which decoder reconstructs, and the
//! population grid to sweep. `repro scenarios list` prints the catalog,
//! `repro scenarios run <name>` executes one scenario and writes its CSV —
//! the README's scenario table is generated from this registry (pinned by
//! the `readme_catalog` test), so docs and code cannot drift apart.
//!
//! Five measurement modes ([`Measurement`]):
//!
//! * [`Measurement::RequiredQueries`] — the paper's *required number of
//!   queries* via the incremental simulation (Section V), exactly like
//!   Figures 2–5 (greedy decoder only).
//! * [`Measurement::SuccessRate`] — exact-recovery rate at the Theorem-1
//!   budget: for each `n`, `trials` runs are sampled at `m = m*(n)` (the
//!   theorem's sufficient query count, floored at 200) and decoded
//!   batch-style.
//! * [`Measurement::Overlap`] — mean overlap at the same budget, for
//!   configurations where exact recovery is not the right yardstick (the
//!   spatially-coupled design breaks the exchangeability global top-`k`
//!   rules rely on; the honest number is how much overlap survives).
//! * [`Measurement::WorkloadOverlap`] — prior-blind vs prior-aware
//!   overlap on a structured population ([`WorkloadSpec`]) at a *scarce*
//!   query budget (an eighth of the default): the regime where the
//!   population prior is worth queries.
//! * [`Measurement::Tracking`] — per-epoch overlap on the temporal SIR
//!   workload: the streaming greedy tracker re-decodes a drifting truth
//!   (greedy decoder), or the full distributed protocol runs once per
//!   epoch (distributed decoders).

use crate::figures::{FigureReport, RunOptions};
use crate::output::table;
use crate::sweep::{self, SweepCell};
use crate::{mix_seed, runner, Mode};
use npd_amp::matrix_amp::run_matrix_amp_tracking;
use npd_amp::{prepare_categorical, AmpDecoder, MatrixAmpConfig};
use npd_core::distributed::{self, SelectionStrategy};
use npd_core::{
    exact_recovery, label_accuracy, overlap, CategoricalInstance, Decoder, DesignSpec, Estimate,
    GreedyDecoder, Instance, NoiseModel, PoolingDesign, Regime, TwoStepDecoder,
};
use npd_decoders::BpDecoder;
use npd_netsim::{FaultConfig, NodeFaultPlan};
use npd_workloads::{track_greedy, track_protocol, PopulationModel, TrackingConfig, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The reconstruction algorithm a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecoderKind {
    /// Algorithm 1 (noisy maximum neighborhood), measured incrementally.
    Greedy,
    /// Greedy plus one residual-refinement pass.
    TwoStep,
    /// Approximate message passing.
    Amp,
    /// Gaussian-relaxed belief propagation.
    Bp,
    /// Matrix-AMP over the categorical (d-ary) hidden state, with the
    /// Bayes simplex denoiser.
    MatrixAmp,
    /// The full distributed protocol on the network simulator, with the
    /// given phase-II selection strategy.
    Distributed(SelectionStrategy),
}

impl DecoderKind {
    /// Stable name used in reports and the README catalog.
    pub fn name(&self) -> &'static str {
        match self {
            DecoderKind::Greedy => "greedy",
            DecoderKind::TwoStep => "two-step",
            DecoderKind::Amp => "amp",
            DecoderKind::Bp => "bp",
            DecoderKind::MatrixAmp => "matrix-amp",
            DecoderKind::Distributed(SelectionStrategy::BatcherSort) => "protocol/batcher",
            DecoderKind::Distributed(SelectionStrategy::GossipThreshold { .. }) => {
                "protocol/gossip"
            }
        }
    }

    /// Builds the decoder (batch scenarios only).
    fn build(&self) -> Box<dyn Decoder> {
        match self {
            DecoderKind::Greedy => Box::new(GreedyDecoder::new()),
            DecoderKind::TwoStep => Box::new(TwoStepDecoder::new()),
            DecoderKind::Amp => Box::new(AmpDecoder::default()),
            DecoderKind::Bp => Box::new(BpDecoder::default()),
            DecoderKind::MatrixAmp => {
                unreachable!("matrix-AMP scenarios run through Measurement::Categorical")
            }
            DecoderKind::Distributed(_) => {
                unreachable!("distributed scenarios run through Measurement::ProtocolCost")
            }
        }
    }
}

/// Agent-level chaos injected into a protocol scenario.
///
/// The spec is the *recipe*; the per-trial [`NodeFaultPlan`] is built from
/// it with a trial-salted seed, so fault realizations are independent
/// across trials yet every trial replays bit-identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosSpec {
    /// Fraction of network nodes that fail-stop crash.
    pub crash_frac: f64,
    /// Inclusive round window the crash round is drawn from.
    pub crash_window: (u64, u64),
    /// Crashed nodes rejoin (state wiped) this many rounds later;
    /// `None` means crashes are permanent.
    pub restart_after: Option<u64>,
    /// Fraction of nodes that corrupt their outgoing payloads.
    pub corrupt_frac: f64,
    /// Per-message garbling probability for corruptor nodes.
    pub corrupt_prob: f64,
    /// Base fault seed (xor-ed with the trial seed).
    pub seed: u64,
}

impl ChaosSpec {
    /// Builds the concrete fault plan for one trial.
    fn plan(&self, salt: u64) -> NodeFaultPlan {
        let mut plan = NodeFaultPlan::new(self.seed ^ salt)
            .with_crashes(self.crash_frac, self.crash_window)
            .expect("registry chaos fractions are valid")
            .with_corruption(self.corrupt_frac, self.corrupt_prob)
            .expect("registry chaos fractions are valid");
        if let Some(after) = self.restart_after {
            plan = plan.with_restarts(after);
        }
        plan
    }
}

/// What a scenario measures per grid point (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measurement {
    /// Median required queries (incremental greedy simulation).
    RequiredQueries,
    /// Exact-recovery rate at the Theorem-1 budget.
    SuccessRate,
    /// Mean overlap at the Theorem-1 budget.
    Overlap,
    /// End-to-end distributed-protocol cost at the Theorem-1 budget:
    /// rounds and messages (total and per phase), adaptive probes, stale
    /// arrivals, missing assignments, and the recovery rate — on a
    /// power-of-two `n`-grid, optionally under fault injection.
    ProtocolCost,
    /// Prior-blind vs prior-aware overlap on a structured population at a
    /// scarce query budget (workload scenarios).
    WorkloadOverlap,
    /// Per-epoch tracking overlap on the temporal SIR workload.
    Tracking,
    /// Categorical (d-ary) reconstruction with matrix-AMP on a
    /// multi-strain population: per-agent label accuracy, strain recall on
    /// the affected sub-population, and the decoder's final per-iteration
    /// MSE.
    Categorical,
}

/// One named, fully specified experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Unique CLI name (`repro scenarios run <name>`).
    pub name: &'static str,
    /// One-line description for `scenarios list` and the README catalog.
    pub summary: &'static str,
    /// Pooling design.
    pub design: DesignSpec,
    /// Noise model.
    pub noise: NoiseModel,
    /// Decoder.
    pub decoder: DecoderKind,
    /// What to measure (required queries, success rate, overlap, or
    /// protocol cost).
    pub measurement: Measurement,
    /// Message faults injected into protocol scenarios (`None` elsewhere
    /// and for fault-free protocol runs).
    pub faults: Option<FaultConfig>,
    /// Agent-level chaos — crashes, restarts, payload corruption —
    /// injected into protocol scenarios (`None` elsewhere). Corrupting
    /// specs also switch the protocol's winsorized fold on.
    pub chaos: Option<ChaosSpec>,
    /// Population model (`None` means the paper's uniform `k`-subset,
    /// sampled by [`Instance::sample`] itself). Workload scenarios
    /// ([`Measurement::WorkloadOverlap`], [`Measurement::Tracking`]) carry
    /// `Some`.
    pub workload: Option<WorkloadSpec>,
    /// Sparsity exponent θ (`k = n^θ`).
    pub theta: f64,
    /// Query size as a divisor of `n` (`Γ = n / gamma_div`).
    pub gamma_div: usize,
    /// Largest grid exponent in quick mode: `n` up to `10^max_exp10`, or
    /// up to `2^max_exp10` for [`Measurement::ProtocolCost`] scenarios
    /// (the protocol grids are powers of two).
    pub quick_max_exp10: u32,
    /// Largest grid exponent with `--full`.
    pub full_max_exp10: u32,
}

impl Scenario {
    /// The scenario's n-grid for the given mode.
    pub fn grid(&self, mode: Mode) -> Vec<usize> {
        let max_exp = match mode {
            Mode::Quick => self.quick_max_exp10,
            Mode::Full => self.full_max_exp10,
        };
        let on_protocol_grid = self.measurement == Measurement::ProtocolCost
            || (self.measurement == Measurement::Tracking
                && matches!(self.decoder, DecoderKind::Distributed(_)));
        if on_protocol_grid {
            // Power-of-two grid 2^8, 2^10, …: the natural sizes for the
            // sorting network and the butterfly aggregation alike.
            return (8..=max_exp).step_by(2).map(|e| 1usize << e).collect();
        }
        sweep::n_grid(max_exp)
    }

    /// The command reproducing this scenario (shown in the README catalog).
    pub fn command(&self) -> String {
        format!(
            "cargo run --release -p npd-experiments --bin repro -- scenarios run {}",
            self.name
        )
    }
}

/// The registry: every named scenario, in presentation order.
///
/// The first entries reproduce the paper's own operating points; the rest
/// exercise the structured designs and the wider decoder field on the same
/// grids so query counts are directly comparable.
pub fn registry() -> Vec<Scenario> {
    let base = |name, summary, design, noise, decoder: DecoderKind| Scenario {
        name,
        summary,
        design,
        noise,
        decoder,
        measurement: if decoder == DecoderKind::Greedy {
            Measurement::RequiredQueries
        } else {
            Measurement::SuccessRate
        },
        faults: None,
        chaos: None,
        workload: None,
        theta: crate::figures::THETA,
        gamma_div: 2,
        quick_max_exp10: 3,
        full_max_exp10: 5,
    };
    // Workload scenarios: structured populations at θ = 0.5 (enough
    // one-agents for block/cluster structure to exist at quick-grid sizes)
    // measured where the prior matters — a scarce query budget — plus the
    // temporal SIR tracking pair.
    let workload = |name, summary, spec, noise| Scenario {
        measurement: Measurement::WorkloadOverlap,
        workload: Some(spec),
        theta: 0.5,
        full_max_exp10: 4,
        ..base(name, summary, DesignSpec::Iid, noise, DecoderKind::Greedy)
    };
    // Distributed-protocol scenarios: strategy × faults on power-of-two
    // grids (see `Measurement::ProtocolCost`). The topology is the
    // protocol's own (complete: query → member broadcast plus the agent
    // id line); the fault axis is what varies.
    let protocol = |name, summary, strategy, faults, full_exp: u32| Scenario {
        measurement: Measurement::ProtocolCost,
        faults,
        quick_max_exp10: 10,
        full_max_exp10: full_exp,
        ..base(
            name,
            summary,
            DesignSpec::Iid,
            NoiseModel::z_channel(0.1),
            DecoderKind::Distributed(strategy),
        )
    };
    // Chaos scenarios: the protocol grid under *agent-level* faults —
    // fail-stop crashes (optionally restarting with wiped state) and
    // payload corruptors — measuring graceful degradation: achieved
    // quorum and surviving overlap instead of all-or-nothing recovery.
    let chaos = |name, summary, strategy, spec: ChaosSpec| Scenario {
        chaos: Some(spec),
        full_max_exp10: 12,
        ..protocol(name, summary, strategy, None, 12)
    };
    // Categorical scenarios: a multi-strain population decoded by
    // matrix-AMP. θ = 0.5 so the quick grid has enough affected agents to
    // split across strains.
    let categorical = |name, summary, strains, noise| Scenario {
        measurement: Measurement::Categorical,
        workload: Some(WorkloadSpec::MultiStrain {
            strains,
            theta: 0.5,
        }),
        theta: 0.5,
        quick_max_exp10: 3,
        full_max_exp10: 4,
        ..base(
            name,
            summary,
            DesignSpec::Iid,
            noise,
            DecoderKind::MatrixAmp,
        )
    };
    vec![
        base(
            "paper-z01",
            "the paper's Figure-2 operating point: i.i.d. design, Z-channel p=0.1",
            DesignSpec::Iid,
            NoiseModel::z_channel(0.1),
            DecoderKind::Greedy,
        ),
        base(
            "paper-gauss",
            "the paper's Figure-3 operating point: i.i.d. design, query noise λ=1",
            DesignSpec::Iid,
            NoiseModel::gaussian(1.0),
            DecoderKind::Greedy,
        ),
        base(
            "subset-z01",
            "uniform Γ-subset queries: the no-duplicate-slots ablation",
            DesignSpec::GammaSubset,
            NoiseModel::z_channel(0.1),
            DecoderKind::Greedy,
        ),
        base(
            "doubly-regular-z01",
            "doubly regular allocation (anytime deck analogue) under Z-channel noise",
            DesignSpec::DoublyRegular,
            NoiseModel::z_channel(0.1),
            DecoderKind::Greedy,
        ),
        Scenario {
            gamma_div: 8,
            ..base(
                "sparse-column-z01",
                "constant-column design at Γ=n/8 via its anytime Bernoulli-pool \
                 analogue (the θ<1/2 regime's design)",
                DesignSpec::SparseColumn,
                NoiseModel::z_channel(0.1),
                DecoderKind::Greedy,
            )
        },
        Scenario {
            measurement: Measurement::Overlap,
            quick_max_exp10: 3,
            full_max_exp10: 4,
            ..base(
                "coupled-z01",
                "banded design vs the global greedy rule: banding breaks exchangeability, \
                 so the honest yardstick is surviving overlap",
                DesignSpec::spatially_coupled(),
                NoiseModel::z_channel(0.1),
                DecoderKind::Greedy,
            )
        },
        Scenario {
            quick_max_exp10: 3,
            full_max_exp10: 4,
            ..base(
                "amp-z01",
                "AMP at the Theorem-1 budget on the paper's design",
                DesignSpec::Iid,
                NoiseModel::z_channel(0.1),
                DecoderKind::Amp,
            )
        },
        Scenario {
            measurement: Measurement::Overlap,
            quick_max_exp10: 3,
            full_max_exp10: 4,
            ..base(
                "amp-coupled",
                "vanilla AMP on a weakly coupled banded design: the gap a block-aware \
                 SC-AMP would have to close",
                DesignSpec::SpatiallyCoupled { bands: 3 },
                NoiseModel::z_channel(0.1),
                DecoderKind::Amp,
            )
        },
        Scenario {
            quick_max_exp10: 3,
            full_max_exp10: 4,
            ..base(
                "twostep-channel",
                "two-step residual refinement under the general channel p=q=0.1",
                DesignSpec::Iid,
                NoiseModel::channel(0.1, 0.1),
                DecoderKind::TwoStep,
            )
        },
        Scenario {
            quick_max_exp10: 3,
            full_max_exp10: 4,
            ..base(
                "bp-z01",
                "belief propagation at the Theorem-1 budget on the paper's design",
                DesignSpec::Iid,
                NoiseModel::z_channel(0.1),
                DecoderKind::Bp,
            )
        },
        protocol(
            "distributed-batcher",
            "the paper's full protocol: Batcher sorting network, fault-free network",
            SelectionStrategy::BatcherSort,
            None,
            14,
        ),
        protocol(
            "distributed-gossip",
            "phase II via the adaptive gossip threshold bisection: no sorting network, \
             agents decide locally",
            SelectionStrategy::gossip(),
            None,
            16,
        ),
        protocol(
            "distributed-batcher-delay",
            "Batcher protocol under bounded message delay (max 6 rounds): stale tokens \
             filtered by layer, budget stretched by the delay bound",
            SelectionStrategy::BatcherSort,
            Some(FaultConfig::new(0.0, 0.0, 71).unwrap().with_max_delay(6)),
            12,
        ),
        protocol(
            "distributed-gossip-faults",
            "gossip protocol under 1% loss + duplication + delay: out-of-phase arrivals \
             counted and ignored, every agent still decides",
            SelectionStrategy::gossip(),
            Some(FaultConfig::new(0.01, 0.05, 72).unwrap().with_max_delay(2)),
            12,
        ),
        chaos(
            "chaos-crash-batcher",
            "10% of nodes fail-stop mid-protocol: the sorting network degrades to \
             the surviving quorum instead of hanging to the round budget",
            SelectionStrategy::BatcherSort,
            ChaosSpec {
                crash_frac: 0.10,
                crash_window: (1, 8),
                restart_after: None,
                corrupt_frac: 0.0,
                corrupt_prob: 0.0,
                seed: 81,
            },
        ),
        chaos(
            "chaos-restart-gossip",
            "20% of nodes crash and rejoin three rounds later with wiped state: \
             restarted agents turn passive, the quorum reports who decided",
            SelectionStrategy::gossip(),
            ChaosSpec {
                crash_frac: 0.20,
                crash_window: (1, 6),
                restart_after: Some(3),
                corrupt_frac: 0.0,
                corrupt_prob: 0.0,
                seed: 82,
            },
        ),
        chaos(
            "chaos-corrupt-gossip",
            "5% of nodes garble every payload they send: the winsorized fold \
             bounds their leverage and overlap degrades smoothly",
            SelectionStrategy::gossip(),
            ChaosSpec {
                crash_frac: 0.0,
                crash_window: (0, 0),
                restart_after: None,
                corrupt_frac: 0.05,
                corrupt_prob: 1.0,
                seed: 83,
            },
        ),
        chaos(
            "chaos-full-batcher",
            "10% crashes plus 5% corruptors at once: both fault axes together, \
             protocol still completes and reports its achieved quorum",
            SelectionStrategy::BatcherSort,
            ChaosSpec {
                crash_frac: 0.10,
                crash_window: (1, 8),
                restart_after: None,
                corrupt_frac: 0.05,
                corrupt_prob: 1.0,
                seed: 84,
            },
        ),
        categorical(
            "categorical-z01",
            "binary pooled data rerun through the categorical layer (d=2, one strain): \
             matrix-AMP under Z-channel noise on the bit-compatible d-ary pipeline",
            1,
            NoiseModel::z_channel(0.1),
        ),
        categorical(
            "categorical-strains",
            "three-strain surveillance (d=4): matrix-AMP with the Bayes simplex denoiser \
             under query noise, per-iteration MSE tracked by matrix state evolution",
            3,
            NoiseModel::gaussian(1.0),
        ),
        workload(
            "workload-community",
            "SBM-style community blocks (2 hot of 8): prior-aware posterior ranking vs \
             the prior-blind rule at a scarce query budget",
            WorkloadSpec::Community { theta: 0.5 },
            NoiseModel::z_channel(0.1),
        ),
        workload(
            "workload-households",
            "household-burst infections (clusters of 4, secondary attack 0.7): correlated \
             ones under the exchangeable pooling design",
            WorkloadSpec::Households { theta: 0.5 },
            NoiseModel::z_channel(0.1),
        ),
        workload(
            "workload-hubs",
            "heavy-tailed Zipf hub marginals (heavy-hitter detection): a strong prior on \
             few agents, a weak one on the tail",
            WorkloadSpec::Hubs { theta: 0.5 },
            NoiseModel::z_channel(0.1),
        ),
        Scenario {
            measurement: Measurement::Tracking,
            ..workload(
                "workload-sir-track",
                "temporal SIR drift, streaming greedy tracker: stale pooled evidence \
                 accumulates across epochs and the per-epoch overlap measures its cost",
                WorkloadSpec::Sir,
                NoiseModel::z_channel(0.1),
            )
        },
        Scenario {
            measurement: Measurement::Tracking,
            decoder: DecoderKind::Distributed(SelectionStrategy::gossip()),
            quick_max_exp10: 10,
            full_max_exp10: 12,
            ..workload(
                "workload-sir-protocol",
                "temporal SIR drift, full distributed protocol re-run each epoch on fresh \
                 pools: tracking overlap plus per-epoch communication cost",
                WorkloadSpec::Sir,
                NoiseModel::z_channel(0.1),
            )
        },
    ]
}

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

/// The `scenarios list` rendering: one line per scenario.
pub fn list_rendered() -> String {
    let rows: Vec<Vec<String>> = registry()
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                s.design.to_string(),
                workload_label(s),
                noise_label(&s.noise),
                s.decoder.name().to_string(),
                format!("n/{}", s.gamma_div),
                s.summary.to_string(),
            ]
        })
        .collect();
    format!(
        "Scenario registry — run one with `repro scenarios run <name>` \
         (or all with `repro scenarios run --all`)\n{}",
        table(
            &[
                "name",
                "design",
                "population",
                "noise",
                "decoder",
                "Γ",
                "summary"
            ],
            &rows
        )
    )
}

/// The README's scenario catalog, generated from the registry (the
/// `readme_catalog` test pins the README section to this output).
pub fn catalog_markdown() -> String {
    let mut out = String::from(
        "| scenario | design | population | noise | decoder | reproduce |\n\
         |---|---|---|---|---|---|\n",
    );
    for s in registry() {
        out.push_str(&format!(
            "| `{}` | {} | {} | {} | {} | `{}` |\n",
            s.name,
            s.design,
            workload_label(&s),
            noise_label(&s.noise),
            s.decoder.name(),
            s.command()
        ));
    }
    out
}

/// Compact human label for a scenario's population model.
fn workload_label(s: &Scenario) -> String {
    match s.workload {
        None => "uniform".into(),
        Some(spec) => spec.to_string(),
    }
}

/// Compact human label for a noise model.
fn noise_label(noise: &NoiseModel) -> String {
    match *noise {
        NoiseModel::Noiseless => "noiseless".into(),
        NoiseModel::Channel { p, q: 0.0 } => format!("Z-channel p={p}"),
        NoiseModel::Channel { p, q } => format!("channel p={p} q={q}"),
        NoiseModel::Query { lambda } => format!("query noise λ={lambda}"),
    }
}

/// Runs a scenario, producing the same report shape as the figures.
pub fn run(scenario: &Scenario, opts: &RunOptions) -> FigureReport {
    match scenario.measurement {
        Measurement::RequiredQueries => run_required_queries(scenario, opts),
        Measurement::SuccessRate | Measurement::Overlap => run_batch(scenario, opts),
        Measurement::ProtocolCost => run_protocol_cost(scenario, opts),
        Measurement::WorkloadOverlap => run_workload_overlap(scenario, opts),
        Measurement::Tracking => run_tracking(scenario, opts),
        Measurement::Categorical => run_categorical(scenario, opts),
    }
}

/// Runs one *representative traced execution* of a scenario into `sink`
/// and returns a short label describing what was traced.
///
/// The normal scenario run ([`run`]) stays untraced — its pinned CSV
/// outputs are untouched — and a single extra execution at the
/// scenario's smallest grid point (trial-0 seed) is performed with
/// telemetry attached. The deterministic event stream this produces is
/// bit-identical across shard and thread counts (contract rule 11): the
/// CI determinism matrix compares the resulting `.jsonl` files with
/// `cmp`.
///
/// Dispatch mirrors the measurement kinds: distributed scenarios run the
/// full protocol through
/// [`distributed::run_protocol_chaos_traced`] (phase events, netsim
/// round spans, counter dump), categorical scenarios run
/// [`npd_amp::matrix_amp::run_matrix_amp_traced`], and batch scenarios
/// attach the sink to the decoder's workspace (AMP iterations, BP
/// passes, greedy score margins).
///
/// # Panics
///
/// Panics if a distributed scenario exceeds its round budget — the same
/// condition the untraced run treats as fatal.
pub fn run_traced(
    scenario: &Scenario,
    opts: &RunOptions,
    sink: &npd_telemetry::TelemetrySink,
) -> String {
    use npd_amp::AmpWorkspace;
    use npd_core::GreedyWorkspace;
    use npd_decoders::BpWorkspace;

    let n = scenario.grid(opts.mode)[0];
    let gamma = (n / scenario.gamma_div).max(1);
    let seed = mix_seed(
        0x5CE8_0000 ^ hash_name(scenario.name),
        (n as u64) << 8, // trial 0
    );

    if let DecoderKind::Distributed(strategy) = scenario.decoder {
        let m = (sweep::default_budget(n, scenario.theta, &scenario.noise) / 2).max(400);
        let instance = Instance::builder(n)
            .regime(Regime::sublinear(scenario.theta))
            .queries(m)
            .query_size(gamma)
            .noise(scenario.noise)
            .design(scenario.design)
            .build()
            .expect("registry scenarios are valid configurations");
        let run = instance.sample(&mut StdRng::seed_from_u64(seed));
        let faults = scenario.faults.map(|f| {
            FaultConfig::new(f.drop_prob(), f.dup_prob(), f.seed() ^ seed)
                .expect("probabilities already validated")
                .with_max_delay(f.max_delay())
        });
        let options = distributed::ProtocolOptions {
            strategy,
            faults,
            node_faults: scenario.chaos.map(|c| c.plan(seed)),
            winsorize: scenario.chaos.is_some_and(|c| c.corrupt_frac > 0.0),
            ..distributed::ProtocolOptions::default()
        };
        let outcome = distributed::run_protocol_chaos_traced(&run, options, sink)
            .expect("protocol terminates within its budget");
        return format!(
            "{} n={n} m={m} rounds={} messages={}",
            scenario.decoder.name(),
            outcome.rounds,
            outcome.metrics.messages_sent
        );
    }

    if scenario.measurement == Measurement::Categorical {
        let model = scenario
            .workload
            .and_then(|spec| spec.multi_strain())
            .expect("Categorical scenarios use the multi-strain workload");
        let m = (sweep::default_budget(n, scenario.theta, &scenario.noise) / 4).max(200);
        let instance = CategoricalInstance::new(n, model.strain_counts(n), m)
            .expect("registry scenarios are valid configurations")
            .with_gamma(gamma)
            .with_noise(scenario.noise)
            .with_design(scenario.design);
        let run = instance.sample(&mut StdRng::seed_from_u64(seed));
        let prep = prepare_categorical(&run);
        let out = npd_amp::matrix_amp::run_matrix_amp_traced(
            &prep,
            &MatrixAmpConfig::default(),
            Some(run.ground_truth().labels()),
            sink,
        );
        return format!(
            "matrix-amp n={n} d={} m={m} iterations={}",
            instance.d(),
            out.iterations
        );
    }

    // Batch scenarios: one decode at the Theorem-1 budget with the sink
    // attached to the decoder's workspace.
    let m = (sweep::default_budget(n, scenario.theta, &scenario.noise) / 4).max(200);
    let instance = Instance::builder(n)
        .regime(Regime::sublinear(scenario.theta))
        .queries(m)
        .query_size(gamma)
        .noise(scenario.noise)
        .design(scenario.design)
        .build()
        .expect("registry scenarios are valid configurations");
    let run = instance.sample(&mut StdRng::seed_from_u64(seed));
    match scenario.decoder {
        DecoderKind::Amp => {
            let mut ws = AmpWorkspace::new();
            ws.set_telemetry(sink.clone());
            let (_, out) = AmpDecoder::default().decode_with_trace_using(&run, &mut ws);
            format!("amp n={n} m={m} iterations={}", out.iterations)
        }
        DecoderKind::Bp => {
            let mut ws = BpWorkspace::new();
            ws.set_telemetry(sink.clone());
            let out = BpDecoder::default().solve_with(&run, &mut ws);
            format!("bp n={n} m={m} rounds={}", out.rounds)
        }
        // Greedy, two-step, and the workload scenarios all score through
        // the greedy engine; the traced quantity is its score margin.
        _ => {
            let mut ws = GreedyWorkspace::new();
            ws.set_telemetry(sink.clone());
            let scores = GreedyDecoder::new().scores_using(&run, &mut ws);
            format!("greedy n={n} m={m} scored={}", scores.len())
        }
    }
}

/// Categorical measurement: matrix-AMP label reconstruction on the
/// multi-strain workload at the Theorem-1 budget, per grid point. Reports
/// overall per-agent label accuracy, strain recall restricted to the
/// truly affected agents (the hard part — the background dominates the
/// overall number), and the decoder's final per-iteration MSE.
fn run_categorical(scenario: &Scenario, opts: &RunOptions) -> FigureReport {
    let spec = scenario
        .workload
        .expect("Categorical scenarios carry a workload");
    let model = spec
        .multi_strain()
        .expect("Categorical scenarios use the multi-strain workload");
    let trials = opts.resolve_trials(3, 10);
    let grid = scenario.grid(opts.mode);
    let config = MatrixAmpConfig::default();

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &n in &grid {
        // The Theorem-1 sufficient count (default_budget is 4× it).
        let m = (sweep::default_budget(n, scenario.theta, &scenario.noise) / 4).max(200);
        let gamma = (n / scenario.gamma_div).max(1);
        let counts = model.strain_counts(n);
        let k_total: usize = counts.iter().sum();
        let instance = CategoricalInstance::new(n, counts, m)
            .expect("registry scenarios are valid configurations")
            .with_gamma(gamma)
            .with_noise(scenario.noise)
            .with_design(scenario.design);
        let d = instance.d();
        let seeds: Vec<u64> = (0..trials as u64)
            .map(|t| mix_seed(0x5CE7_0000 ^ hash_name(scenario.name), (n as u64) << 8 | t))
            .collect();
        let per_trial = runner::parallel_map(&seeds, opts.threads, |&seed| {
            let run = instance.sample(&mut StdRng::seed_from_u64(seed));
            let prep = prepare_categorical(&run);
            let out = run_matrix_amp_tracking(&prep, &config, Some(run.ground_truth().labels()));
            let truth = run.ground_truth();
            let accuracy = label_accuracy(&out.labels, truth);
            let affected: Vec<usize> = (0..truth.n()).filter(|&i| truth.label(i) != 0).collect();
            let recall = if affected.is_empty() {
                1.0
            } else {
                affected
                    .iter()
                    .filter(|&&i| out.labels[i] == truth.label(i))
                    .count() as f64
                    / affected.len() as f64
            };
            let final_mse = out.mse_trajectory.last().copied().unwrap_or(f64::NAN);
            (accuracy, recall, final_mse, out.iterations as f64)
        });
        let per = trials as f64;
        let accuracy = per_trial.iter().map(|t| t.0).sum::<f64>() / per;
        let recall = per_trial.iter().map(|t| t.1).sum::<f64>() / per;
        let final_mse = per_trial.iter().map(|t| t.2).sum::<f64>() / per;
        let iterations = per_trial.iter().map(|t| t.3).sum::<f64>() / per;
        rows.push(vec![
            n.to_string(),
            d.to_string(),
            k_total.to_string(),
            m.to_string(),
            format!("{accuracy:.3}"),
            format!("{recall:.2}"),
            format!("{final_mse:.4}"),
            format!("{iterations:.0}"),
        ]);
        csv_rows.push(vec![
            n.to_string(),
            d.to_string(),
            k_total.to_string(),
            gamma.to_string(),
            m.to_string(),
            format!("{accuracy:.4}"),
            format!("{recall:.3}"),
            format!("{final_mse:.6}"),
            format!("{iterations:.1}"),
            trials.to_string(),
        ]);
    }
    let rendered = format!(
        "Scenario {} — matrix-AMP categorical reconstruction ({} workload, {} design, \
         {} trials)\n{}",
        scenario.name,
        spec,
        scenario.design,
        trials,
        table(
            &[
                "n",
                "d",
                "k",
                "m",
                "accuracy",
                "recall",
                "final MSE",
                "iters"
            ],
            &rows
        )
    );
    FigureReport {
        name: format!("scenario-{}", scenario.name),
        rendered,
        csv_headers: vec![
            "n".into(),
            "d".into(),
            "k_total".into(),
            "gamma".into(),
            "m".into(),
            "label_accuracy".into(),
            "affected_recall".into(),
            "final_mse".into(),
            "iterations".into(),
            "trials".into(),
        ],
        csv_rows,
        notes: vec![scenario.summary.to_string()],
    }
}

/// The scarce query budget of the workload comparisons: an eighth of
/// [`sweep::default_budget`], floored at 120 — the regime where knowing
/// *where* the ones concentrate is worth queries.
pub(crate) fn scarce_budget(n: usize, theta: f64, noise: &NoiseModel) -> usize {
    (sweep::default_budget(n, theta, noise) / 8).max(120)
}

/// One prior-blind-vs-prior-aware workload trial: samples a truth from
/// `model`, pools and measures it under `(m, gamma, noise, design)`, and
/// decodes both rankings from a single score accumulation
/// ([`GreedyDecoder::scores_with_posterior`]). Returns
/// `(k, blind overlap, prior-aware overlap)`; a `k = 0` draw is trivially
/// right for both rules. Shared by the `workload-*` scenarios and the
/// `workloads` figure so the two report the same experiment.
#[allow(clippy::too_many_arguments)]
pub(crate) fn workload_trial(
    model: &dyn PopulationModel,
    prior: &[f64],
    n: usize,
    m: usize,
    gamma: usize,
    noise: NoiseModel,
    design: DesignSpec,
    seed: u64,
) -> (usize, f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let truth = model.sample(n, &mut rng);
    let k = truth.k();
    if k == 0 {
        return (0, 1.0, 1.0);
    }
    let instance = Instance::builder(n)
        .k(k)
        .queries(m)
        .query_size(gamma)
        .noise(noise)
        .design(design)
        .build()
        .expect("workload trial configurations are valid");
    let graph = design.sample(n, m, gamma, &mut rng);
    let results = graph.measure(&truth, &noise, &mut rng);
    let run = instance
        .assemble(truth, graph, results)
        .expect("assembled parts match the instance");
    let (scores, posterior) = GreedyDecoder::new().scores_with_posterior(&run, prior);
    let blind = Estimate::from_scores(scores, k);
    let aware = Estimate::from_scores(posterior, k);
    (
        k,
        overlap(&blind, run.ground_truth()),
        overlap(&aware, run.ground_truth()),
    )
}

/// Workload-overlap measurement: prior-blind vs prior-aware greedy overlap
/// on a structured population, at the scarce [`scarce_budget`].
fn run_workload_overlap(scenario: &Scenario, opts: &RunOptions) -> FigureReport {
    let spec = scenario
        .workload
        .expect("WorkloadOverlap scenarios carry a workload");
    let model = spec.model();
    let trials = opts.resolve_trials(5, 25);
    let grid = scenario.grid(opts.mode);

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &n in &grid {
        let m = scarce_budget(n, scenario.theta, &scenario.noise);
        let gamma = (n / scenario.gamma_div).max(1);
        let prior = model.prior(n);
        let seeds: Vec<u64> = (0..trials as u64)
            .map(|t| mix_seed(0x5CE5_0000 ^ hash_name(scenario.name), (n as u64) << 8 | t))
            .collect();
        let per_trial = runner::parallel_map(&seeds, opts.threads, |&seed| {
            workload_trial(
                model.as_ref(),
                &prior,
                n,
                m,
                gamma,
                scenario.noise,
                scenario.design,
                seed,
            )
        });
        let mean_k = per_trial.iter().map(|(k, _, _)| *k as f64).sum::<f64>() / trials as f64;
        let blind = per_trial.iter().map(|(_, b, _)| b).sum::<f64>() / trials as f64;
        let aware = per_trial.iter().map(|(_, _, a)| a).sum::<f64>() / trials as f64;
        rows.push(vec![
            n.to_string(),
            format!("{mean_k:.1}"),
            m.to_string(),
            format!("{blind:.2}"),
            format!("{aware:.2}"),
        ]);
        csv_rows.push(vec![
            n.to_string(),
            format!("{mean_k:.2}"),
            gamma.to_string(),
            m.to_string(),
            format!("{blind:.3}"),
            format!("{aware:.3}"),
            trials.to_string(),
        ]);
    }
    let rendered = format!(
        "Scenario {} — prior-blind vs prior-aware overlap ({} workload, {} design, \
         scarce budget, {} trials)\n{}",
        scenario.name,
        spec,
        scenario.design,
        trials,
        table(&["n", "k̄", "m", "blind", "prior-aware"], &rows)
    );
    FigureReport {
        name: format!("scenario-{}", scenario.name),
        rendered,
        csv_headers: vec![
            "n".into(),
            "mean_k".into(),
            "gamma".into(),
            "m".into(),
            "overlap_blind".into(),
            "overlap_prior_aware".into(),
            "trials".into(),
        ],
        csv_rows,
        notes: vec![scenario.summary.to_string()],
    }
}

/// Number of epochs every tracking scenario simulates.
const TRACKING_EPOCHS: usize = 6;

/// Tracking measurement: the temporal SIR workload drifts over
/// [`TRACKING_EPOCHS`] epochs; one row per `(n, epoch)` reports the mean
/// tracking overlap (and, for distributed tracking, the per-epoch
/// communication cost).
fn run_tracking(scenario: &Scenario, opts: &RunOptions) -> FigureReport {
    let spec = scenario
        .workload
        .expect("Tracking scenarios carry a workload");
    let model = spec.sir().expect("Tracking scenarios use the SIR workload");
    let trials = opts.resolve_trials(3, 10);
    let grid = scenario.grid(opts.mode);
    let strategy = match scenario.decoder {
        DecoderKind::Distributed(s) => Some(s),
        _ => None,
    };

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &n in &grid {
        let cfg = TrackingConfig {
            gamma: (n / scenario.gamma_div).max(1),
            queries_per_epoch: (sweep::default_budget(n, scenario.theta, &scenario.noise) / 4)
                .max(200),
            epochs: TRACKING_EPOCHS,
            noise: scenario.noise,
            design: scenario.design,
        };
        let seeds: Vec<u64> = (0..trials as u64)
            .map(|t| mix_seed(0x5CE6_0000 ^ hash_name(scenario.name), (n as u64) << 8 | t))
            .collect();
        let per_trial = runner::parallel_map(&seeds, opts.threads, |&seed| match strategy {
            None => track_greedy(&model, n, &cfg, seed),
            Some(s) => track_protocol(&model, n, &cfg, s, seed),
        });
        for epoch in 0..cfg.epochs {
            let at = |f: &dyn Fn(&npd_workloads::EpochReport) -> f64| -> f64 {
                per_trial.iter().map(|r| f(&r[epoch])).sum::<f64>() / trials as f64
            };
            let k = at(&|r| r.k as f64);
            let ov = at(&|r| r.overlap);
            let exact = at(&|r| f64::from(r.exact));
            let messages = at(&|r| r.messages as f64);
            rows.push(vec![
                n.to_string(),
                epoch.to_string(),
                format!("{k:.1}"),
                format!("{ov:.2}"),
                format!("{exact:.2}"),
                format!("{messages:.0}"),
            ]);
            csv_rows.push(vec![
                n.to_string(),
                epoch.to_string(),
                format!("{k:.2}"),
                cfg.queries_per_epoch.to_string(),
                format!("{ov:.3}"),
                format!("{exact:.3}"),
                format!("{messages:.1}"),
                trials.to_string(),
            ]);
        }
    }
    let mode_label = match strategy {
        None => "streaming greedy re-decode".to_string(),
        Some(s) => format!("distributed protocol per epoch, {s} selection"),
    };
    let rendered = format!(
        "Scenario {} — SIR tracking overlap over {TRACKING_EPOCHS} epochs ({mode_label}, \
         {} trials)\n{}",
        scenario.name,
        trials,
        table(&["n", "epoch", "k̄", "overlap", "exact", "messages"], &rows)
    );
    FigureReport {
        name: format!("scenario-{}", scenario.name),
        rendered,
        csv_headers: vec![
            "n".into(),
            "epoch".into(),
            "mean_k".into(),
            "queries_per_epoch".into(),
            "mean_overlap".into(),
            "exact_rate".into(),
            "mean_messages".into(),
            "trials".into(),
        ],
        csv_rows,
        notes: vec![scenario.summary.to_string()],
    }
}

/// Protocol-cost measurement: one full distributed-protocol execution per
/// `(n, trial)` at the Theorem-1 query budget, reporting rounds, messages
/// (total and phase II), adaptive probes, stale arrivals, missing
/// assignments and recovery.
fn run_protocol_cost(scenario: &Scenario, opts: &RunOptions) -> FigureReport {
    let DecoderKind::Distributed(strategy) = scenario.decoder else {
        unreachable!("ProtocolCost scenarios carry a Distributed decoder kind");
    };
    let trials = opts.resolve_trials(2, 4);
    let grid = scenario.grid(opts.mode);
    let regime = Regime::sublinear(scenario.theta);

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &n in &grid {
        // Twice the Theorem-1 sufficient count: the fault-free protocol
        // rows should recover exactly, so the fault rows read as graceful
        // degradation against a working baseline.
        let m = (sweep::default_budget(n, scenario.theta, &scenario.noise) / 2).max(400);
        let gamma = (n / scenario.gamma_div).max(1);
        let instance = Instance::builder(n)
            .regime(regime)
            .queries(m)
            .query_size(gamma)
            .noise(scenario.noise)
            .design(scenario.design)
            .build()
            .expect("registry scenarios are valid configurations");
        let seeds: Vec<u64> = (0..trials as u64)
            .map(|t| mix_seed(0x5CE4_0000 ^ hash_name(scenario.name), (n as u64) << 8 | t))
            .collect();
        let outcomes = runner::parallel_map(&seeds, opts.threads, |&seed| {
            let run = instance.sample(&mut StdRng::seed_from_u64(seed));
            // Vary the fault seed with the trial so fault realizations are
            // independent across trials but reproducible.
            let faults = scenario.faults.map(|f| {
                FaultConfig::new(f.drop_prob(), f.dup_prob(), f.seed() ^ seed)
                    .expect("probabilities already validated")
                    .with_max_delay(f.max_delay())
            });
            let options = distributed::ProtocolOptions {
                strategy,
                faults,
                node_faults: scenario.chaos.map(|c| c.plan(seed)),
                winsorize: scenario.chaos.is_some_and(|c| c.corrupt_frac > 0.0),
                ..distributed::ProtocolOptions::default()
            };
            let outcome = distributed::run_protocol_chaos(&run, options)
                .expect("protocol terminates within its budget");
            let exact = f64::from(exact_recovery(&outcome.estimate, run.ground_truth()));
            let ov = overlap(&outcome.estimate, run.ground_truth());
            (outcome, exact, ov)
        });
        let mean = |f: &dyn Fn(&npd_core::distributed::ProtocolOutcome) -> f64| -> f64 {
            outcomes.iter().map(|(o, _, _)| f(o)).sum::<f64>() / trials as f64
        };
        let rounds = mean(&|o| o.rounds as f64);
        let messages = mean(&|o| o.metrics.messages_sent as f64);
        let sel_rounds = mean(&|o| o.selection_rounds as f64);
        let sel_messages = mean(&|o| o.selection_messages as f64);
        let probes = mean(&|o| o.probes as f64);
        let stale = mean(&|o| o.stale_messages as f64);
        let missing = mean(&|o| o.missing_assignments as f64);
        let quorum = mean(&|o| o.achieved_quorum as f64);
        let crashes = mean(&|o| o.metrics.node_crashes as f64);
        let corrupted = mean(&|o| o.metrics.messages_corrupted as f64);
        let recovery = outcomes.iter().map(|(_, e, _)| e).sum::<f64>() / trials as f64;
        let mean_overlap = outcomes.iter().map(|(_, _, v)| v).sum::<f64>() / trials as f64;
        rows.push(vec![
            n.to_string(),
            instance.k().to_string(),
            m.to_string(),
            format!("{rounds:.0}"),
            format!("{messages:.0}"),
            format!("{sel_rounds:.0}"),
            format!("{sel_messages:.0}"),
            format!("{probes:.1}"),
            format!("{quorum:.0}"),
            format!("{mean_overlap:.2}"),
            format!("{recovery:.2}"),
        ]);
        csv_rows.push(vec![
            n.to_string(),
            instance.k().to_string(),
            m.to_string(),
            format!("{rounds:.1}"),
            format!("{messages:.1}"),
            format!("{sel_rounds:.1}"),
            format!("{sel_messages:.1}"),
            format!("{probes:.1}"),
            format!("{stale:.1}"),
            format!("{missing:.1}"),
            format!("{quorum:.1}"),
            format!("{crashes:.1}"),
            format!("{corrupted:.1}"),
            format!("{mean_overlap:.3}"),
            format!("{recovery:.3}"),
            trials.to_string(),
        ]);
    }
    let mut fault_label = match scenario.faults {
        None => "fault-free".to_string(),
        Some(f) => format!(
            "drop={} dup={} delay≤{}",
            f.drop_prob(),
            f.dup_prob(),
            f.max_delay()
        ),
    };
    if let Some(c) = scenario.chaos {
        let restart = match c.restart_after {
            None => String::new(),
            Some(after) => format!(" restart+{after}"),
        };
        fault_label = format!(
            "{fault_label}, chaos: crash={}{restart} corrupt={}×{}",
            c.crash_frac, c.corrupt_frac, c.corrupt_prob
        );
    }
    let rendered = format!(
        "Scenario {} — distributed protocol cost ({} selection, {fault_label}, \
         {trials} trials)\n{}",
        scenario.name,
        strategy,
        table(
            &[
                "n", "k", "m", "rounds", "messages", "selᵣ", "selₘ", "probes", "quorum", "overlap",
                "recovery",
            ],
            &rows
        )
    );
    FigureReport {
        name: format!("scenario-{}", scenario.name),
        rendered,
        csv_headers: vec![
            "n".into(),
            "k".into(),
            "m".into(),
            "rounds".into(),
            "messages".into(),
            "selection_rounds".into(),
            "selection_messages".into(),
            "probes".into(),
            "stale_messages".into(),
            "missing_assignments".into(),
            "achieved_quorum".into(),
            "node_crashes".into(),
            "messages_corrupted".into(),
            "mean_overlap".into(),
            "recovery_rate".into(),
            "trials".into(),
        ],
        csv_rows,
        notes: vec![scenario.summary.to_string()],
    }
}

/// Required-queries measurement (greedy scenarios): median over trials of
/// the first query count with exact reconstruction, per grid point.
fn run_required_queries(scenario: &Scenario, opts: &RunOptions) -> FigureReport {
    let trials = opts.resolve_trials(5, 25);
    let grid = scenario.grid(opts.mode);
    let regime = Regime::sublinear(scenario.theta);
    let cells: Vec<SweepCell> = grid
        .iter()
        .map(|&n| {
            let mut cell = SweepCell::paper(
                n,
                regime,
                scenario.noise,
                sweep::default_budget(n, scenario.theta, &scenario.noise),
                mix_seed(0x5CE2_0000, hash_name(scenario.name).wrapping_add(n as u64)),
            );
            cell.design = scenario.design;
            cell.gamma = Some((n / scenario.gamma_div).max(1));
            cell
        })
        .collect();
    let samples = sweep::required_queries_grid(&cells, trials, opts.threads);

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (cell, sample) in cells.iter().zip(&samples) {
        let med = sample.median().map_or("NA".into(), |m| format!("{m:.0}"));
        rows.push(vec![
            cell.n.to_string(),
            sample.k.to_string(),
            cell.gamma_or_default().to_string(),
            med.clone(),
            sample.failures.to_string(),
        ]);
        csv_rows.push(vec![
            cell.n.to_string(),
            sample.k.to_string(),
            cell.gamma_or_default().to_string(),
            med,
            sample.failures.to_string(),
            trials.to_string(),
        ]);
    }
    let rendered = format!(
        "Scenario {} — median required queries ({} design, {} trials)\n{}",
        scenario.name,
        scenario.design,
        trials,
        table(&["n", "k", "Γ", "median m", "failures"], &rows)
    );
    FigureReport {
        name: format!("scenario-{}", scenario.name),
        rendered,
        csv_headers: vec![
            "n".into(),
            "k".into(),
            "gamma".into(),
            "median_required_queries".into(),
            "failures".into(),
            "trials".into(),
        ],
        csv_rows,
        notes: vec![scenario.summary.to_string()],
    }
}

/// Batch measurement (success rate or overlap) at the Theorem-1 query
/// budget, per grid point.
fn run_batch(scenario: &Scenario, opts: &RunOptions) -> FigureReport {
    let trials = opts.resolve_trials(5, 25);
    let grid = scenario.grid(opts.mode);
    let regime = Regime::sublinear(scenario.theta);

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &n in &grid {
        // The Theorem-1 sufficient count (default_budget is 4× it).
        let m = (sweep::default_budget(n, scenario.theta, &scenario.noise) / 4).max(200);
        let gamma = (n / scenario.gamma_div).max(1);
        let instance = Instance::builder(n)
            .regime(regime)
            .queries(m)
            .query_size(gamma)
            .noise(scenario.noise)
            .design(scenario.design)
            .build()
            .expect("registry scenarios are valid configurations");
        let seeds: Vec<u64> = (0..trials as u64)
            .map(|t| mix_seed(0x5CE3_0000 ^ hash_name(scenario.name), (n as u64) << 8 | t))
            .collect();
        let per_trial = runner::parallel_map(&seeds, opts.threads, |&seed| {
            let run = instance.sample(&mut StdRng::seed_from_u64(seed));
            let decoder = scenario.decoder.build();
            let est = decoder.decode(&run);
            match scenario.measurement {
                Measurement::SuccessRate => f64::from(exact_recovery(&est, run.ground_truth())),
                _ => overlap(&est, run.ground_truth()),
            }
        });
        let rate = per_trial.iter().sum::<f64>() / trials as f64;
        rows.push(vec![
            n.to_string(),
            instance.k().to_string(),
            gamma.to_string(),
            m.to_string(),
            format!("{rate:.2}"),
        ]);
        csv_rows.push(vec![
            n.to_string(),
            instance.k().to_string(),
            gamma.to_string(),
            m.to_string(),
            format!("{rate:.3}"),
            trials.to_string(),
        ]);
    }
    let (metric_col, metric_label) = match scenario.measurement {
        Measurement::Overlap => ("mean_overlap", "mean overlap"),
        _ => ("success_rate", "exact-recovery rate"),
    };
    let rendered = format!(
        "Scenario {} — {metric_label} at the Theorem-1 budget ({} design, {} decoder, \
         {} trials)\n{}",
        scenario.name,
        scenario.design,
        scenario.decoder.name(),
        trials,
        table(&["n", "k", "Γ", "m", metric_label], &rows)
    );
    FigureReport {
        name: format!("scenario-{}", scenario.name),
        rendered,
        csv_headers: vec![
            "n".into(),
            "k".into(),
            "gamma".into(),
            "m".into(),
            metric_col.into(),
            "trials".into(),
        ],
        csv_rows,
        notes: vec![scenario.summary.to_string()],
    }
}

/// Stable per-scenario seed salt (FNV-1a of the name).
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use npd_core::PoolingDesign;

    #[test]
    fn registry_names_are_unique_and_parseable() {
        let reg = registry();
        let mut names: Vec<&str> = reg.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len());
        for s in &reg {
            assert!(find(s.name).is_some());
            assert!(!s.summary.is_empty());
            assert!(s.gamma_div >= 1);
            assert!(s.quick_max_exp10 <= s.full_max_exp10);
        }
        assert!(find("nonexistent").is_none());
    }

    #[test]
    fn registry_covers_all_four_structured_designs() {
        let designs: Vec<DesignSpec> = registry().iter().map(|s| s.design).collect();
        for required in [
            DesignSpec::Iid,
            DesignSpec::GammaSubset,
            DesignSpec::DoublyRegular,
            DesignSpec::SparseColumn,
            DesignSpec::spatially_coupled(),
        ] {
            assert!(designs.contains(&required), "{} missing", required.name());
        }
    }

    #[test]
    fn list_and_catalog_render_every_scenario() {
        let listing = list_rendered();
        let markdown = catalog_markdown();
        for s in registry() {
            assert!(listing.contains(s.name), "list missing {}", s.name);
            assert!(markdown.contains(s.name), "catalog missing {}", s.name);
            assert!(
                markdown.contains(&s.command()),
                "catalog missing command for {}",
                s.name
            );
        }
    }

    #[test]
    fn greedy_scenario_runs_end_to_end() {
        let mut scenario = find("doubly-regular-z01").expect("registered");
        scenario.quick_max_exp10 = 2; // n = 100 only: seconds
        let opts = RunOptions {
            mode: Mode::Quick,
            trials: Some(2),
            threads: 2,
        };
        let report = run(&scenario, &opts);
        assert_eq!(report.name, "scenario-doubly-regular-z01");
        assert_eq!(report.csv_rows.len(), 1);
        assert_eq!(report.csv_rows[0].len(), report.csv_headers.len());
        assert!(report.rendered.contains("doubly-regular"));
    }

    #[test]
    fn batch_scenario_runs_end_to_end() {
        let mut scenario = find("amp-coupled").expect("registered");
        scenario.quick_max_exp10 = 2;
        let opts = RunOptions {
            mode: Mode::Quick,
            trials: Some(2),
            threads: 2,
        };
        let report = run(&scenario, &opts);
        assert_eq!(report.csv_rows.len(), 1);
        // Success-rate CSV: last column is the trial count.
        assert_eq!(report.csv_rows[0].last().unwrap(), "2");
    }

    #[test]
    fn chaos_scenario_runs_end_to_end_and_reports_quorum() {
        let mut scenario = find("chaos-full-batcher").expect("registered");
        scenario.quick_max_exp10 = 8; // n = 256 only: seconds
        let opts = RunOptions {
            mode: Mode::Quick,
            trials: Some(2),
            threads: 2,
        };
        let report = run(&scenario, &opts);
        assert_eq!(report.csv_rows.len(), 1);
        assert_eq!(report.csv_rows[0].len(), report.csv_headers.len());
        let col = |name: &str| -> f64 {
            let idx = report
                .csv_headers
                .iter()
                .position(|h| h == name)
                .unwrap_or_else(|| panic!("missing column {name}"));
            report.csv_rows[0][idx].parse().unwrap()
        };
        // Crashes bit, corruption bit, and the protocol still completed
        // with a degraded — but majority — quorum.
        assert!(col("node_crashes") > 0.0);
        assert!(col("messages_corrupted") > 0.0);
        let quorum = col("achieved_quorum");
        assert!(
            quorum > 128.0 && quorum < 256.0,
            "quorum {quorum} out of the degraded-majority band"
        );
        assert!(col("mean_overlap") > 0.0);
        // Chaos schedules replay bit-identically.
        assert_eq!(run(&scenario, &opts).csv_rows, report.csv_rows);
    }

    #[test]
    fn registry_has_at_least_four_workload_scenarios() {
        let workload_names: Vec<&str> = registry()
            .iter()
            .filter(|s| s.workload.is_some() && s.measurement != Measurement::Categorical)
            .map(|s| s.name)
            .collect();
        assert!(
            workload_names.len() >= 4,
            "only {workload_names:?} workload scenarios registered"
        );
        assert!(workload_names.iter().all(|n| n.starts_with("workload-")));
        // And they show up in the CLI listing.
        let listing = list_rendered();
        for name in workload_names {
            assert!(listing.contains(name), "list missing {name}");
        }
    }

    #[test]
    fn categorical_scenario_runs_end_to_end() {
        let mut scenario = find("categorical-strains").expect("registered");
        scenario.quick_max_exp10 = 2; // n = 100 only
        let opts = RunOptions {
            mode: Mode::Quick,
            trials: Some(2),
            threads: 2,
        };
        let report = run(&scenario, &opts);
        assert_eq!(report.name, "scenario-categorical-strains");
        assert_eq!(report.csv_rows.len(), 1);
        assert_eq!(report.csv_rows[0].len(), report.csv_headers.len());
        // d = strains + 1 made it into the report.
        let d_idx = report.csv_headers.iter().position(|h| h == "d").unwrap();
        assert_eq!(report.csv_rows[0][d_idx], "4");
        let acc_idx = report
            .csv_headers
            .iter()
            .position(|h| h == "label_accuracy")
            .unwrap();
        let accuracy: f64 = report.csv_rows[0][acc_idx].parse().unwrap();
        assert!(accuracy > 0.8, "accuracy {accuracy}");
        // Deterministic re-run.
        assert_eq!(run(&scenario, &opts).csv_rows, report.csv_rows);
    }

    #[test]
    fn categorical_d2_scenario_is_registered_with_one_strain() {
        let scenario = find("categorical-z01").expect("registered");
        assert_eq!(scenario.decoder.name(), "matrix-amp");
        assert_eq!(
            scenario.workload,
            Some(WorkloadSpec::MultiStrain {
                strains: 1,
                theta: 0.5
            })
        );
    }

    #[test]
    fn workload_overlap_scenario_runs_end_to_end() {
        let mut scenario = find("workload-community").expect("registered");
        scenario.quick_max_exp10 = 2; // n = 100 only
        let opts = RunOptions {
            mode: Mode::Quick,
            trials: Some(2),
            threads: 2,
        };
        let report = run(&scenario, &opts);
        assert_eq!(report.name, "scenario-workload-community");
        assert_eq!(report.csv_rows.len(), 1);
        assert_eq!(report.csv_rows[0].len(), report.csv_headers.len());
        assert!(report.rendered.contains("prior-aware"));
        // Deterministic re-run.
        assert_eq!(run(&scenario, &opts).csv_rows, report.csv_rows);
    }

    #[test]
    fn tracking_scenario_runs_end_to_end() {
        let mut scenario = find("workload-sir-track").expect("registered");
        scenario.quick_max_exp10 = 2; // n = 100 only
        let opts = RunOptions {
            mode: Mode::Quick,
            trials: Some(2),
            threads: 2,
        };
        let report = run(&scenario, &opts);
        // One row per epoch at the single grid point.
        assert_eq!(report.csv_rows.len(), TRACKING_EPOCHS);
        for row in &report.csv_rows {
            assert_eq!(row.len(), report.csv_headers.len());
        }
        assert!(report.rendered.contains("epoch"));
    }

    #[test]
    fn scenario_seeds_are_deterministic() {
        let scenario = find("paper-z01").expect("registered");
        let mut s = scenario;
        s.quick_max_exp10 = 2;
        let opts = RunOptions {
            mode: Mode::Quick,
            trials: Some(2),
            threads: 2,
        };
        assert_eq!(run(&s, &opts).csv_rows, run(&s, &opts).csv_rows);
    }
}
