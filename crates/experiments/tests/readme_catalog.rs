//! The README's scenario catalog is *generated* from the registry; this
//! test pins the two together so docs and code cannot drift.

use npd_experiments::scenarios;

#[test]
fn readme_scenario_catalog_matches_registry() {
    let readme_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    let readme = std::fs::read_to_string(readme_path).expect("README.md at the workspace root");
    let generated = scenarios::catalog_markdown();
    assert!(
        readme.contains(&generated),
        "README scenario catalog is out of date.\n\
         Replace the catalog table in README.md (section \"Reproducing a result\") \
         with the following, freshly generated from scenarios::registry():\n\n{generated}"
    );
}
