//! Figure 2 workload: incremental required-queries search under the
//! Z-channel at θ = 0.25.
//!
//! Times one full required-queries trial per `(n, p)` — the unit of work
//! behind every data point of Figure 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use npd_core::{IncrementalSim, NoiseModel};
use std::hint::black_box;

fn bench_required_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_required_queries");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        let k = (n as f64).powf(0.25).round() as usize;
        for &p in &[0.1, 0.3] {
            group.bench_with_input(
                BenchmarkId::new(format!("p={p}"), n),
                &(n, k, p),
                |b, &(n, k, p)| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        let mut sim = IncrementalSim::new(n, k, NoiseModel::z_channel(p), seed);
                        black_box(sim.required_queries(100_000).expect("separates"))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_required_queries);
criterion_main!(benches);
