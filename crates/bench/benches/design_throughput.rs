//! Sampling cost of each pooling design in the [`npd_core::PoolingDesign`]
//! catalog.
//!
//! The design layer is the extension point every workload plugs into, so
//! BENCH tracks what a full graph sample costs per design at a mid-size
//! operating point (`n = 4096`, `m = 2048`, sparse `Γ = n/8`) plus the
//! paper's dense `Γ = n/2` for the i.i.d. baseline. The sparse point is
//! the interesting one for the structured designs: the doubly regular
//! construction's switch-repair workload scales with the number of
//! within-pool collisions, which the dense regime inflates quadratically
//! (`~n·d²/m`) — at `Γ = n/8` the repair stays a small fraction of the
//! dealing cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use npd_core::{DesignSpec, PoolingDesign};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const N: usize = 4096;
const M: usize = 2048;

fn bench_design_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("design_throughput");
    group.sample_size(10);

    let sparse = N / 8;
    let cases: Vec<(DesignSpec, usize, &str)> = vec![
        (DesignSpec::Iid, N / 2, "iid/dense"),
        (DesignSpec::Iid, sparse, "iid/sparse"),
        (DesignSpec::GammaSubset, sparse, "gamma-subset/sparse"),
        (DesignSpec::DoublyRegular, sparse, "doubly-regular/sparse"),
        (DesignSpec::SparseColumn, sparse, "sparse-column/sparse"),
        (
            DesignSpec::spatially_coupled(),
            sparse,
            "spatially-coupled/sparse",
        ),
    ];

    for (design, gamma, label) in cases {
        group.bench_with_input(
            BenchmarkId::new("sample", label),
            &(design, gamma),
            |b, &(design, gamma)| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(0x000D_51BE);
                    black_box(design.sample(N, M, gamma, &mut rng))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_design_throughput);
criterion_main!(benches);
