//! Substrate micro-benchmarks: the samplers and linear algebra everything
//! else is built on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use npd_numerics::rng::{binomial, GaussianSampler};
use npd_numerics::CsrMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_binomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("binomial_sampler");
    // Small n·p exercises BINV; large exercises the beta-split path.
    for &(n, p) in &[(100u64, 0.1f64), (50_000, 0.5), (100_000, 1e-3)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n={n},p={p}")),
            &(n, p),
            |b, &(n, p)| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| black_box(binomial(&mut rng, n, p)));
            },
        );
    }
    group.finish();
}

fn bench_gaussian(c: &mut Criterion) {
    c.bench_function("gaussian_sampler", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = GaussianSampler::new();
        b.iter(|| black_box(g.sample(&mut rng)));
    });
}

fn bench_csr_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr_matvec");
    let (rows, cols) = (600usize, 1_000usize);
    let mut rng = StdRng::seed_from_u64(3);
    let triplets: Vec<(usize, usize, f64)> = (0..rows * 400)
        .map(|_| (rng.gen_range(0..rows), rng.gen_range(0..cols), 1.0))
        .collect();
    let m = CsrMatrix::from_triplets(rows, cols, &triplets);
    let x: Vec<f64> = (0..cols).map(|i| (i as f64).sin()).collect();
    let z: Vec<f64> = (0..rows).map(|i| (i as f64).cos()).collect();
    group.throughput(Throughput::Elements(m.nnz() as u64));
    group.bench_function("forward", |b| b.iter(|| black_box(m.matvec(&x))));
    group.bench_function("transpose", |b| b.iter(|| black_box(m.matvec_t(&z))));
    group.finish();
}

fn bench_sortnet_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("sortnet_apply");
    for &n in &[1_024usize, 8_192] {
        let net = npd_sortnet::SortingNetwork::batcher_odd_even(n);
        let mut rng = StdRng::seed_from_u64(4);
        let data: Vec<i64> = (0..n).map(|_| rng.gen_range(-1_000..1_000)).collect();
        group.throughput(Throughput::Elements(net.comparator_count() as u64));
        group.bench_with_input(BenchmarkId::new("batcher", n), &data, |b, data| {
            b.iter(|| {
                let mut copy = data.clone();
                net.apply(&mut copy);
                black_box(copy)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_binomial,
    bench_gaussian,
    bench_csr_matvec,
    bench_sortnet_apply
);
criterion_main!(benches);
