//! Telemetry overhead on the hottest instrumented path: AMP decoding at
//! `n = 16384`.
//!
//! Three variants of the identical workload:
//!
//! * `off` — workspace as constructed, sink disabled (the default every
//!   library call site gets). This is the cost the contract's "<5%
//!   disabled-path overhead" pin in `BENCH_baseline.json` compares
//!   against `baseline`;
//! * `baseline` — a workspace that has never seen a sink, i.e. the
//!   pre-telemetry code path (the `Option<Arc<Recorder>>` is `None`
//!   either way, so any gap between `baseline` and `off` is pure noise —
//!   which is exactly the claim);
//! * `recording` — deterministic event plane enabled: one `amp.iter`
//!   event plus two counter bumps per iteration, quantifying what
//!   `repro scenarios run <name> --trace` actually pays.
//!
//! Single-threaded pool, like `decoder_throughput`, so the numbers
//! isolate instrumentation cost from parallel speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use npd_amp::{AmpConfig, AmpDecoder, AmpWorkspace};
use npd_bench::sample_run;
use npd_core::NoiseModel;
use npd_telemetry::TelemetrySink;
use std::hint::black_box;

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead/amp");
    group.sample_size(10);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool construction cannot fail");
    // The decoder_throughput n=16384 configuration, verbatim, so the
    // `baseline` row here is directly comparable to its `reuse` row.
    let (n, k, m, seed) = (16_384usize, 11, 600, 12);
    let run = sample_run(n, k, m, NoiseModel::z_channel(0.1), seed);
    let decoder = AmpDecoder::new(AmpConfig::default());

    let mut baseline_ws = AmpWorkspace::new();
    group.bench_function(BenchmarkId::new("baseline", format!("n={n}")), |b| {
        b.iter(|| {
            pool.install(|| black_box(decoder.decode_with_trace_using(&run, &mut baseline_ws)))
        })
    });

    let mut off_ws = AmpWorkspace::new();
    off_ws.set_telemetry(TelemetrySink::off());
    group.bench_function(BenchmarkId::new("off", format!("n={n}")), |b| {
        b.iter(|| pool.install(|| black_box(decoder.decode_with_trace_using(&run, &mut off_ws))))
    });

    let mut rec_ws = AmpWorkspace::new();
    rec_ws.set_telemetry(TelemetrySink::recording());
    group.bench_function(BenchmarkId::new("recording", format!("n={n}")), |b| {
        b.iter(|| pool.install(|| black_box(decoder.decode_with_trace_using(&run, &mut rec_ws))))
    });

    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
