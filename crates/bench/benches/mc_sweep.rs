//! Monte-Carlo sweep throughput: the workload behind Figures 2–5.
//!
//! Benchmarks `required_queries_grid` — the flattened `(cell, trial)`
//! fan-out — at `threads = 1` versus the default rayon pool. On a
//! multicore machine the parallel run should approach a core-count
//! speedup (trials are embarrassingly parallel and results are
//! bit-identical by the determinism contract); on a single-core container
//! the two coincide. The measured medians are snapshotted into
//! `BENCH_baseline.json` (see that file for the machine context).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use npd_core::{NoiseModel, Regime};
use npd_experiments::runner;
use npd_experiments::sweep::{required_queries_grid, SweepCell};
use std::hint::black_box;

fn grid_cells() -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for (ci, &(n, p)) in [
        (316usize, 0.0f64),
        (316, 0.1),
        (1_000, 0.0),
        (1_000, 0.1),
        (1_000, 0.3),
        (3_162, 0.1),
    ]
    .iter()
    .enumerate()
    {
        cells.push(SweepCell::paper(
            n,
            Regime::sublinear(0.25),
            if p == 0.0 {
                NoiseModel::Noiseless
            } else {
                NoiseModel::z_channel(p)
            },
            50_000,
            0xBE7C_0000 + ci as u64,
        ));
    }
    cells
}

fn bench_mc_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc_sweep");
    group.sample_size(10);
    let cells = grid_cells();
    let trials = 6;

    let mut thread_counts = vec![1usize];
    let default = runner::default_threads();
    if default > 1 {
        thread_counts.push(default);
    }
    for threads in thread_counts {
        group.bench_with_input(
            BenchmarkId::new("required_queries_grid", format!("threads={threads}")),
            &threads,
            |b, &t| b.iter(|| black_box(required_queries_grid(&cells, trials, t))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mc_sweep);
criterion_main!(benches);
