//! Decoder throughput: greedy / BP / AMP at `n ∈ {1k, 16k}`.
//!
//! Three variants per decoder where they differ:
//!
//! * `naive` — the pre-optimization implementation (fresh allocations per
//!   call/iteration, scatter-based transposed product, no cached
//!   transpose), reproduced here verbatim as the baseline the
//!   `BENCH_baseline.json` snapshot tracks;
//! * `oneshot` — the current public one-shot entry points (cached
//!   transpose for AMP, but fresh workspace buffers per call);
//! * `reuse` — the workspace-reuse paths (`scores_using`, `solve_with`,
//!   `decode_with_trace_using`).
//!
//! Every variant is pinned to a single-threaded rayon pool so the numbers
//! isolate the allocation/layout work from parallel speedup (which
//! `mc_sweep` measures separately).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use npd_amp::{AmpConfig, AmpDecoder, AmpWorkspace, BayesBernoulli, Denoiser};
use npd_bench::sample_run;
use npd_core::{Estimate, GreedyDecoder, GreedyWorkspace, NoiseModel, Run};
use npd_decoders::{BpDecoder, BpWorkspace};
use npd_numerics::vector;
use std::hint::black_box;

/// The seed's AMP implementation: per-iteration allocations and the
/// sequential scatter `Aᵀz`, with the centering applied around a raw CSR
/// (no cached transpose). Kept as the pre-optimization baseline.
fn naive_amp_decode(run: &Run, config: &AmpConfig) -> Estimate {
    let instance = run.instance();
    // The seed built its CSR through the generic triplet path; keep that
    // here so the baseline stays frozen as the repo's hot paths improve.
    let a = {
        let graph = run.graph();
        let mut triplets = Vec::new();
        for (j, q) in graph.queries().iter().enumerate() {
            for (agent, count) in q.iter() {
                triplets.push((j, agent as usize, count as f64));
            }
        }
        npd_numerics::CsrMatrix::from_triplets(graph.queries().len(), instance.n(), &triplets)
    };
    let (m, n) = (a.rows(), a.cols());
    let gamma = instance.gamma();
    let c = gamma as f64 / n as f64;
    let var = gamma as f64 * (1.0 / n as f64) * (1.0 - 1.0 / n as f64);
    let s = (m as f64 * var).sqrt();
    let k = instance.k() as f64;
    let (scale, shift) = match *instance.noise() {
        NoiseModel::Channel { p, q } => {
            let denom = 1.0 - p - q;
            (1.0 / denom, q * gamma as f64 / denom)
        }
        NoiseModel::Noiseless | NoiseModel::Query { .. } => (1.0, 0.0),
    };
    let y: Vec<f64> = run
        .results()
        .iter()
        .map(|&yv| ((yv * scale - shift) - c * k) / s)
        .collect();
    let prior = (k / n as f64).clamp(1e-9, 1.0 - 1e-9);
    let denoiser = BayesBernoulli::new(prior);

    let centered_matvec = |x: &[f64]| -> Vec<f64> {
        let sum_x: f64 = x.iter().sum();
        let mut out = a.matvec(x);
        for o in &mut out {
            *o = (*o - c * sum_x) / s;
        }
        out
    };
    let centered_matvec_t = |z: &[f64]| -> Vec<f64> {
        let sum_z: f64 = z.iter().sum();
        let mut out = a.matvec_t(z);
        for o in &mut out {
            *o = (*o - c * sum_z) / s;
        }
        out
    };

    let mut x = vec![0.0f64; n];
    let mut z = y.clone();
    for _ in 0..config.max_iterations {
        let mut v = centered_matvec_t(&z);
        vector::axpy(1.0, &x, &mut v);
        let tau2 = vector::norm2_sq(&z) / m as f64;

        let mut x_new = vec![0.0f64; n];
        let mut deriv_sum = 0.0;
        for (xn, &vi) in x_new.iter_mut().zip(&v) {
            *xn = denoiser.eta(vi, tau2);
            deriv_sum += denoiser.eta_prime(vi, tau2);
        }
        let onsager = if config.onsager {
            deriv_sum / m as f64
        } else {
            0.0
        };

        let bx = centered_matvec(&x_new);
        let mut z_new = y.clone();
        vector::axpy(-1.0, &bx, &mut z_new);
        vector::axpy(onsager, &z, &mut z_new);

        let delta = vector::max_abs_diff(&x_new, &x);
        x = x_new;
        z = z_new;
        if delta < config.tolerance {
            break;
        }
    }
    Estimate::from_scores(x, instance.k())
}

fn configs() -> Vec<(usize, usize, usize, u64)> {
    // (n, k ≈ n^0.25, m, seed)
    vec![(1_000, 6, 300, 11), (16_384, 11, 600, 12)]
}

fn single_thread_pool() -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool construction cannot fail")
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("decoder_throughput/greedy");
    group.sample_size(10);
    let pool = single_thread_pool();
    for (n, k, m, seed) in configs() {
        let run = sample_run(n, k, m, NoiseModel::z_channel(0.1), seed);
        let decoder = GreedyDecoder::new();
        group.bench_function(BenchmarkId::new("oneshot", format!("n={n}")), |b| {
            b.iter(|| pool.install(|| black_box(decoder.scores(&run))))
        });
        let mut ws = GreedyWorkspace::new();
        group.bench_function(BenchmarkId::new("reuse", format!("n={n}")), |b| {
            b.iter(|| pool.install(|| black_box(decoder.scores_using(&run, &mut ws))))
        });
    }
    group.finish();
}

fn bench_bp(c: &mut Criterion) {
    let mut group = c.benchmark_group("decoder_throughput/bp");
    group.sample_size(10);
    let pool = single_thread_pool();
    for (n, k, m, seed) in configs() {
        let run = sample_run(n, k, m, NoiseModel::z_channel(0.1), seed);
        let decoder = BpDecoder::new();
        group.bench_function(BenchmarkId::new("oneshot", format!("n={n}")), |b| {
            b.iter(|| pool.install(|| black_box(decoder.solve(&run))))
        });
        let mut ws = BpWorkspace::new();
        group.bench_function(BenchmarkId::new("reuse", format!("n={n}")), |b| {
            b.iter(|| pool.install(|| black_box(decoder.solve_with(&run, &mut ws))))
        });
    }
    group.finish();
}

fn bench_amp(c: &mut Criterion) {
    let mut group = c.benchmark_group("decoder_throughput/amp");
    group.sample_size(10);
    let pool = single_thread_pool();
    for (n, k, m, seed) in configs() {
        let run = sample_run(n, k, m, NoiseModel::z_channel(0.1), seed);
        let config = AmpConfig::default();
        let decoder = AmpDecoder::new(config);
        group.bench_function(BenchmarkId::new("naive", format!("n={n}")), |b| {
            b.iter(|| pool.install(|| black_box(naive_amp_decode(&run, &config))))
        });
        group.bench_function(BenchmarkId::new("oneshot", format!("n={n}")), |b| {
            b.iter(|| pool.install(|| black_box(decoder.decode_with_trace(&run))))
        });
        let mut ws = AmpWorkspace::new();
        group.bench_function(BenchmarkId::new("reuse", format!("n={n}")), |b| {
            b.iter(|| pool.install(|| black_box(decoder.decode_with_trace_using(&run, &mut ws))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_greedy, bench_bp, bench_amp);
criterion_main!(benches);
