//! Ablation benches for the design decisions called out in DESIGN.md:
//!
//! * score centering (noise-aware vs the printed plain score) under false
//!   positives — quality ablation timed on equal workloads;
//! * query size Γ ∈ {n/4, n/2, 3n/4} — the paper fixes Γ = n/2;
//! * two-step refinement on top of greedy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use npd_core::{
    Centering, Decoder, GreedyDecoder, IncrementalSim, Instance, NoiseModel, TwoStepDecoder,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_centering(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_centering");
    group.sample_size(20);
    let run = Instance::builder(1_000)
        .k(6)
        .queries(400)
        .noise(NoiseModel::channel(0.05, 0.05))
        .build()
        .unwrap()
        .sample(&mut StdRng::seed_from_u64(1));
    for (label, centering) in [
        ("noise-aware", Centering::NoiseAware),
        ("plain", Centering::Plain),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &centering,
            |b, &centering| {
                let decoder = GreedyDecoder::with_centering(centering);
                b.iter(|| black_box(decoder.decode(&run)));
            },
        );
    }
    group.finish();
}

fn bench_query_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_query_size");
    group.sample_size(10);
    let n = 1_000usize;
    for &frac in &[4usize, 2] {
        let gamma = n / frac;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("gamma=n/{frac}")),
            &gamma,
            |b, &gamma| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut sim = IncrementalSim::with_query_size(
                        n,
                        6,
                        gamma,
                        NoiseModel::z_channel(0.1),
                        seed,
                    );
                    black_box(sim.required_queries(50_000).expect("separates"))
                });
            },
        );
    }
    group.finish();
}

fn bench_two_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_two_step");
    group.sample_size(20);
    let run = Instance::builder(1_000)
        .k(6)
        .queries(300)
        .noise(NoiseModel::z_channel(0.2))
        .build()
        .unwrap()
        .sample(&mut StdRng::seed_from_u64(2));
    group.bench_function("greedy", |b| {
        let d = GreedyDecoder::new();
        b.iter(|| black_box(d.decode(&run)));
    });
    group.bench_function("two-step", |b| {
        let d = TwoStepDecoder::new();
        b.iter(|| black_box(d.decode(&run)));
    });
    group.finish();
}

criterion_group!(benches, bench_centering, bench_query_size, bench_two_step);
criterion_main!(benches);
