//! Figure 4 workload: required-queries search under the general noisy
//! channel `p = q`, spanning the regime crossover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use npd_core::{IncrementalSim, NoiseModel};
use std::hint::black_box;

fn bench_general_channel(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_general_channel");
    group.sample_size(10);
    let n = 1_000usize;
    let k = 6;
    for &q in &[1e-2, 1e-3, 1e-5] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("q={q:e}")),
            &q,
            |b, &q| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut sim = IncrementalSim::new(n, k, NoiseModel::channel(q, q), seed);
                    black_box(sim.required_queries(100_000).expect("separates"))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_general_channel);
criterion_main!(benches);
