//! Figure 5 workload: the per-trial cost of one box-plot sample across the
//! figure's noise configurations at n = 10³ (the paper's smallest panel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use npd_core::{IncrementalSim, NoiseModel};
use std::hint::black_box;

fn bench_boxplot_configs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_boxplot_trial");
    group.sample_size(10);
    let n = 1_000usize;
    let k = 6;
    let configs: Vec<(&str, NoiseModel)> = vec![
        ("p=0.1", NoiseModel::z_channel(0.1)),
        ("p=0.5", NoiseModel::z_channel(0.5)),
        ("lambda=0", NoiseModel::Noiseless),
        ("lambda=3", NoiseModel::gaussian(3.0)),
    ];
    for (label, noise) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(label), &noise, |b, &noise| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sim = IncrementalSim::new(n, k, noise, seed);
                black_box(sim.required_queries(50_000).expect("separates"))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_boxplot_configs);
criterion_main!(benches);
