//! Baseline-zoo workload: decode one `n = 500` Z-channel run with every
//! polynomial-time algorithm in the workspace, plus the adaptive
//! strategies and the gossip selection protocol. The spread — greedy in
//! microseconds, message-passing solvers in milliseconds — is the
//! computational argument for Algorithm 1 that complements its statistical
//! comparison in the decoder-zoo experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use npd_adaptive::{Dorfman, IndividualTesting, Oracle, RecursiveSplitting, Strategy};
use npd_amp::AmpDecoder;
use npd_bench::sample_run;
use npd_core::{Decoder, GreedyDecoder, GroundTruth, NoiseModel};
use npd_decoders::{BpDecoder, FistaDecoder, LmmseDecoder, McmcDecoder};
use npd_netsim::gossip::select_top_k;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_decoder_zoo(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_decode");
    group.sample_size(10);
    let run = sample_run(500, 5, 300, NoiseModel::z_channel(0.1), 1);

    let field: Vec<Box<dyn Decoder>> = vec![
        Box::new(GreedyDecoder::new()),
        Box::new(AmpDecoder::default()),
        Box::new(BpDecoder::default()),
        Box::new(FistaDecoder::default()),
        Box::new(LmmseDecoder::default()),
        Box::new(McmcDecoder::default()),
    ];
    for decoder in field {
        group.bench_function(BenchmarkId::new(decoder.name(), "n=500,m=300"), |b| {
            b.iter(|| black_box(decoder.decode(&run)))
        });
    }
    group.finish();
}

fn bench_adaptive_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_reconstruct");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(2);
    let truth = GroundTruth::sample(512, 5, &mut rng);

    let strategies: Vec<(Box<dyn Strategy>, &str)> = vec![
        (Box::new(RecursiveSplitting::new(1)), "splitting"),
        (Box::new(Dorfman::new(10, 1)), "dorfman"),
        (Box::new(IndividualTesting::new(1)), "individual"),
    ];
    for (strategy, name) in strategies {
        group.bench_function(BenchmarkId::new(name, "n=512,noiseless"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut trial_rng = StdRng::seed_from_u64(seed);
                let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut trial_rng);
                black_box(strategy.reconstruct(5, &mut oracle))
            })
        });
    }
    group.finish();
}

fn bench_gossip_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("gossip_topk");
    group.sample_size(10);
    let run = sample_run(256, 4, 200, NoiseModel::z_channel(0.1), 3);
    let scores = GreedyDecoder::new().scores(&run);
    group.bench_function(BenchmarkId::new("select_top_k", "n=256,adaptive"), |b| {
        b.iter(|| black_box(select_top_k(&scores, 4)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_decoder_zoo,
    bench_adaptive_strategies,
    bench_gossip_selection
);
criterion_main!(benches);
