//! Million-agent round-loop throughput of the sharded network simulator.
//!
//! The paper's protocol is one-shot, but its communication skeleton — every
//! agent pushes its current best (score, id) token to a neighbor each round
//! and folds arrivals by max — is the round loop any large-scale greedy
//! deployment sits in. This bench drives that loop at `n = 2²⁰ > 10⁶`
//! agents on a sparse random-regular overlay and reports the median *round*
//! time (one `b.iter` call executes exactly one synchronous round, so the
//! reported median is the per-round latency; divide by `n` for the
//! per-agent-step throughput).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use npd_core::distributed::{self, SelectionStrategy};
use npd_core::{Instance, NoiseModel};
use npd_netsim::{Activity, Context, Network, Node, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Greedy score-diffusion agent: holds its greedy score, pushes its best
/// known (score, id) token to its neighbors round-robin, folds arrivals by
/// (score, smaller-id) max — the tie rule of the workspace's rank-k
/// decoders.
struct ScoreNode {
    best: (f64, u32),
    cursor: u32,
}

impl Node<(f64, u32)> for ScoreNode {
    fn on_round(&mut self, ctx: &mut Context<'_, (f64, u32)>) -> Activity {
        for env in ctx.inbox() {
            let (s, id) = env.payload;
            if s > self.best.0 || (s == self.best.0 && id < self.best.1) {
                self.best = (s, id);
            }
        }
        let degree = ctx.degree();
        let peer = ctx.neighbor(self.cursor as usize % degree);
        self.cursor = self.cursor.wrapping_add(1);
        ctx.send(peer, self.best);
        Activity::Active
    }
}

/// Deterministic pseudo-score for agent `i` (no RNG state needed).
fn score_of(i: u64) -> f64 {
    let mut x = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (x ^ (x >> 31)) as f64 / u64::MAX as f64
}

fn diffusion_net(n: usize, shards: usize) -> Network<(f64, u32), ScoreNode> {
    let topology = Topology::random_regular(n, 4, 7);
    let nodes: Vec<ScoreNode> = (0..n)
        .map(|i| ScoreNode {
            best: (score_of(i as u64), i as u32),
            cursor: (i % 4) as u32,
        })
        .collect();
    Network::new(nodes)
        .with_topology(topology)
        .with_shards(shards)
}

fn bench_round_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_scale");
    group.sample_size(10);
    // 2¹⁶ for the trend line, 2²⁰ (> 10⁶ agents) as the headline, at one
    // shard and at eight (bit-identical outputs; the shard axis shows the
    // parallel speedup on multicore hosts and the sharding overhead here).
    for &(n, shards) in &[(1usize << 16, 1usize), (1 << 20, 1), (1 << 20, 8)] {
        let mut net = diffusion_net(n, shards);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("greedy_round", format!("n={n}/shards={shards}")),
            &n,
            |b, _| {
                // One iteration = one synchronous round: n sends, n
                // deliveries through the CSR arena.
                b.iter(|| black_box(net.step_parallel()));
            },
        );
    }
    group.finish();
}

fn bench_selection_at_scale(c: &mut Criterion) {
    // The full decentralized top-k selection at a square-root scale point,
    // as the bridge between the unit-test sizes and the round-loop above.
    // The adaptive termination decides as soon as a probe isolates the
    // k-th score; the pre-adaptive fixed timetable burned 2 379 rounds
    // (189 ms) here regardless of the data.
    let mut group = c.benchmark_group("netsim_scale_topk");
    group.sample_size(10);
    let n = 4_096usize;
    let scores: Vec<f64> = (0..n).map(|i| score_of(i as u64)).collect();
    group.bench_with_input(BenchmarkId::new("select_top_k", n), &scores, |b, scores| {
        b.iter(|| black_box(npd_netsim::gossip::select_top_k(scores, 64)));
    });
    group.finish();
}

/// Samples a pooled-data run sized for the end-to-end protocol bench: the
/// query load is kept modest (the bench measures protocol scaling, not
/// recovery) and the Gaussian query noise makes scores generically
/// distinct, which is the regime the adaptive bisection is built for.
fn e2e_run(n: usize, k: usize, m: usize, gamma: usize) -> npd_core::Run {
    Instance::builder(n)
        .k(k)
        .queries(m)
        .query_size(gamma)
        .noise(NoiseModel::gaussian(1.0))
        .build()
        .expect("bench instance is valid")
        .sample(&mut StdRng::seed_from_u64(11))
}

fn bench_protocol_e2e(c: &mut Criterion) {
    // The headline enabled by the GossipThreshold strategy: the *entire*
    // distributed protocol — measurement broadcast, score accumulation,
    // adaptive top-k selection — at the million-agent scale of the round
    // loop above. The Batcher path cannot run here: its comparator
    // schedule alone is O(n log² n) ≈ 2·10⁸ entries at n = 2²⁰.
    //
    // One iteration = one full protocol execution (hundreds of synchronous
    // rounds), so the n = 2²⁰ row takes minutes per sample; it only runs
    // when NETSIM_SCALE_FULL is set (the recorded median lives in
    // BENCH_baseline.json). The n = 2¹⁶ row always runs and keeps the CI
    // smoke pass fast.
    let mut group = c.benchmark_group("netsim_scale_protocol");
    group.sample_size(2);
    let mut points = vec![(1usize << 16, 256usize, 256usize, 2048usize)];
    if std::env::var("NETSIM_SCALE_FULL").is_ok() {
        points.push((1 << 20, 1024, 256, 4096));
    }
    for (n, k, m, gamma) in points {
        let run = e2e_run(n, k, m, gamma);
        group.bench_with_input(
            BenchmarkId::new("gossip_protocol", format!("n={n}")),
            &run,
            |b, run| {
                b.iter(|| {
                    let outcome = distributed::run_protocol_with(run, SelectionStrategy::gossip())
                        .expect("protocol quiesces");
                    assert_eq!(outcome.missing_assignments, 0);
                    black_box(outcome.rounds)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_round_loop,
    bench_selection_at_scale,
    bench_protocol_e2e
);
criterion_main!(benches);
