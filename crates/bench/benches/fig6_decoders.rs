//! Figure 6 workload: one success-rate trial — sample a run at `n = 1000`
//! and decode it — for both algorithms. The greedy-vs-AMP time ratio here
//! is the computational side of the comparison whose statistical side is
//! Figure 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use npd_amp::AmpDecoder;
use npd_bench::sample_run;
use npd_core::{Decoder, GreedyDecoder, NoiseModel};
use std::hint::black_box;

fn bench_decoders(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_decode");
    group.sample_size(20);
    let runs: Vec<_> = (0..4)
        .map(|seed| sample_run(1_000, 6, 300, NoiseModel::z_channel(0.1), seed))
        .collect();

    group.bench_function(BenchmarkId::new("greedy", "n=1000,m=300"), |b| {
        let decoder = GreedyDecoder::new();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % runs.len();
            black_box(decoder.decode(&runs[i]))
        });
    });
    group.bench_function(BenchmarkId::new("amp", "n=1000,m=300"), |b| {
        let decoder = AmpDecoder::default();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % runs.len();
            black_box(decoder.decode(&runs[i]))
        });
    });
    group.bench_function(BenchmarkId::new("sample+greedy", "n=1000,m=300"), |b| {
        // Full trial cost including instance sampling.
        let decoder = GreedyDecoder::new();
        let mut seed = 100u64;
        b.iter(|| {
            seed += 1;
            let run = sample_run(1_000, 6, 300, NoiseModel::z_channel(0.1), seed);
            black_box(decoder.decode(&run))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_decoders);
criterion_main!(benches);
