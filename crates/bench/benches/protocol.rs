//! The distributed protocol end to end: message-passing simulation
//! including the Batcher sorting phase, versus the sequential decoder on
//! the same run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use npd_bench::sample_run;
use npd_core::{distributed, Decoder, GreedyDecoder, NoiseModel};
use std::hint::black_box;

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_protocol");
    group.sample_size(10);
    for &n in &[256usize, 1_024] {
        let run = sample_run(n, 4, n / 2, NoiseModel::z_channel(0.1), 7);
        group.bench_with_input(BenchmarkId::new("netsim", n), &run, |b, run| {
            b.iter(|| black_box(distributed::run_protocol(run).expect("quiesces")));
        });
        group.bench_with_input(BenchmarkId::new("sequential", n), &run, |b, run| {
            let decoder = GreedyDecoder::new();
            b.iter(|| black_box(decoder.decode(run)));
        });
    }
    group.finish();
}

fn bench_sorting_network_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("sorting_network_build");
    group.sample_size(20);
    for &n in &[1_024usize, 16_384] {
        group.bench_with_input(BenchmarkId::new("batcher", n), &n, |b, &n| {
            b.iter(|| black_box(npd_sortnet::SortingNetwork::batcher_odd_even(n)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocol, bench_sorting_network_construction);
criterion_main!(benches);
