//! Figure 3 workload: required-queries search under Gaussian query noise,
//! compared with the noiseless baseline at the same sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use npd_core::{IncrementalSim, NoiseModel};
use std::hint::black_box;

fn bench_noisy_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_noisy_query");
    group.sample_size(10);
    let n = 2_000usize;
    let k = (n as f64).powf(0.25).round() as usize;
    for &lambda in &[0.0, 1.0, 2.0] {
        let noise = if lambda == 0.0 {
            NoiseModel::Noiseless
        } else {
            NoiseModel::gaussian(lambda)
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("lambda={lambda}")),
            &noise,
            |b, &noise| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut sim = IncrementalSim::new(n, k, noise, seed);
                    black_box(sim.required_queries(50_000).expect("separates"))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_noisy_query);
criterion_main!(benches);
