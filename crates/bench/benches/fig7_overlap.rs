//! Figure 7 workload: overlap evaluation of the greedy reconstruction over
//! the `m` grid of the figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use npd_bench::sample_run;
use npd_core::{overlap, Decoder, GreedyDecoder, NoiseModel};
use std::hint::black_box;

fn bench_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_overlap_trial");
    group.sample_size(20);
    for &m in &[100usize, 300, 600] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let decoder = GreedyDecoder::new();
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let run = sample_run(1_000, 6, m, NoiseModel::z_channel(0.3), seed);
                let est = decoder.decode(&run);
                black_box(overlap(&est, run.ground_truth()))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overlap);
criterion_main!(benches);
