//! Population-generation and streaming re-decode throughput of the
//! workload layer at `n = 2¹⁸` agents.
//!
//! Two question marks hang over a production deployment of the workload
//! layer: what does *generating* a structured population cost (every
//! Monte-Carlo trial pays it), and what does *tracking* one cost — the
//! per-epoch loop of streaming `IncrementalSim` queries against a drifting
//! SIR truth plus a top-`k` re-decode. Both are measured here at
//! `n = 2¹⁸ = 262 144` agents; `BENCH_baseline.json` tracks the medians.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use npd_core::{DesignSpec, NoiseModel};
use npd_workloads::{track_greedy, SirDynamics, TrackingConfig, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// `n = 2^18`: large enough that per-agent overheads dominate constants,
/// small enough for the CI smoke run.
const N: usize = 1 << 18;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));

    let specs = [
        WorkloadSpec::Uniform { theta: 0.5 },
        WorkloadSpec::Community { theta: 0.5 },
        WorkloadSpec::Households { theta: 0.5 },
        WorkloadSpec::Hubs { theta: 0.5 },
        WorkloadSpec::Sir,
    ];
    for spec in specs {
        let model = spec.model();
        group.bench_with_input(
            BenchmarkId::new("generate", model.name()),
            &spec,
            |b, spec| {
                let model = spec.model();
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(0x0070_71E5);
                    black_box(model.sample(N, &mut rng))
                })
            },
        );
    }
    group.finish();
}

fn bench_streaming_redecode(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_throughput");
    group.sample_size(10);

    // One full tracking run: 3 epochs × 64 queries of Γ = n/64 slots,
    // streamed into the accumulators, with a top-k re-decode (O(n)) and an
    // SIR step (O(n)) per epoch — the steady-state cost of following a
    // drifting population.
    let cfg = TrackingConfig {
        gamma: N / 64,
        queries_per_epoch: 64,
        epochs: 3,
        noise: NoiseModel::z_channel(0.1),
        design: DesignSpec::Iid,
    };
    let model = SirDynamics::catalog();
    group.bench_function(
        BenchmarkId::new("track", format!("sir/n={N}/epochs={}", cfg.epochs)),
        |b| b.iter(|| black_box(track_greedy(&model, N, &cfg, 0x7AC4))),
    );
    group.finish();
}

criterion_group!(benches, bench_generation, bench_streaming_redecode);
criterion_main!(benches);
