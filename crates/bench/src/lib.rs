//! Shared helpers for the criterion benchmarks.
//!
//! Each bench target under `benches/` times the workload behind one figure
//! of the paper (the *data* for the figures is produced by the `repro`
//! binary in `npd-experiments`; these benches answer "how fast is the
//! implementation on that workload"). Two targets track infrastructure
//! rather than figures: `netsim_scale` (the sharded simulator's round loop
//! at `n > 10⁶`) and `design_throughput` (sampling cost of every pooling
//! design in the `npd_core::PoolingDesign` catalog).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use npd_core::{Instance, NoiseModel, Run};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Samples a run with the standard `Γ = n/2` design.
///
/// # Panics
///
/// Panics on invalid parameters (delegates to [`Instance::builder`]).
pub fn sample_run(n: usize, k: usize, m: usize, noise: NoiseModel, seed: u64) -> Run {
    Instance::builder(n)
        .k(k)
        .queries(m)
        .noise(noise)
        .build()
        .expect("benchmark configuration is valid")
        .sample(&mut StdRng::seed_from_u64(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_run_shapes() {
        let run = sample_run(100, 3, 20, NoiseModel::Noiseless, 1);
        assert_eq!(run.instance().n(), 100);
        assert_eq!(run.results().len(), 20);
    }
}
