//! Substrate validation: a classic multi-round protocol (leader election on
//! a ring) runs correctly on the simulator.
//!
//! The pooled-data protocol only exercises short broadcast/exchange
//! patterns; this test drives the simulator through `Θ(n)` rounds of
//! neighbor-to-neighbor forwarding to validate round semantics, quiescence
//! detection and metric accounting under a long-running protocol.

use npd_netsim::{Activity, Context, Network, Node, NodeId};

/// Chang–Roberts-style maximum finding on a unidirectional ring: everyone
/// floods the largest id seen to the next node; after `n` rounds all nodes
/// know the maximum.
struct RingNode {
    my_value: u64,
    best_seen: u64,
    n: usize,
    decided: Option<u64>,
}

impl Node<u64> for RingNode {
    fn on_round(&mut self, ctx: &mut Context<'_, u64>) -> Activity {
        let round = ctx.round();
        if round == 0 {
            let next = NodeId((ctx.id().0 + 1) % self.n);
            ctx.send(next, self.my_value);
            return Activity::Idle;
        }
        let mut improved = false;
        for env in ctx.inbox() {
            if env.payload > self.best_seen {
                self.best_seen = env.payload;
                improved = true;
            }
        }
        if round < self.n as u64 {
            if improved {
                let next = NodeId((ctx.id().0 + 1) % self.n);
                ctx.send(next, self.best_seen);
            }
        } else if self.decided.is_none() {
            self.decided = Some(self.best_seen);
        }
        // Stay active until the decision round so the network cannot
        // quiesce early on quiet rings.
        if self.decided.is_none() {
            Activity::Active
        } else {
            Activity::Idle
        }
    }
}

fn ring(values: &[u64]) -> Network<u64, RingNode> {
    let n = values.len();
    Network::new(
        values
            .iter()
            .map(|&v| RingNode {
                my_value: v,
                best_seen: v,
                n,
                decided: None,
            })
            .collect(),
    )
}

#[test]
fn all_nodes_agree_on_the_maximum() {
    let values = [3u64, 141, 59, 26, 535, 89, 79, 323];
    let mut net = ring(&values);
    net.run_until_quiescent(values.len() as u64 + 3).unwrap();
    for (i, node) in net.nodes().iter().enumerate() {
        assert_eq!(node.decided, Some(535), "node {i}");
    }
}

#[test]
fn rounds_scale_linearly_with_ring_size() {
    for n in [4usize, 16, 64] {
        let values: Vec<u64> = (0..n as u64).collect();
        let mut net = ring(&values);
        let report = net.run_until_quiescent(n as u64 + 3).unwrap();
        assert!(
            report.rounds >= n as u64,
            "n={n}: finished in {} rounds",
            report.rounds
        );
        for node in net.nodes() {
            assert_eq!(node.decided, Some(n as u64 - 1));
        }
    }
}

#[test]
fn message_count_depends_on_the_arrangement() {
    // Ascending ring: only the maximum's wave propagates (everyone else's
    // neighbor already holds a larger value), so traffic is Θ(n). The
    // descending ring is the Θ(n²) worst case — every node improves every
    // round until the maximum arrives. Both are classic facts about
    // improving-flood maximum finding; verifying them exercises the metric
    // accounting over very different traffic patterns.
    let n = 32usize;

    let ascending: Vec<u64> = (0..n as u64).collect();
    let mut net = ring(&ascending);
    net.run_until_quiescent(n as u64 + 3).unwrap();
    let cheap = net.metrics().messages_sent;
    assert!(cheap <= 3 * n as u64, "ascending ring sent {cheap}");

    let descending: Vec<u64> = (0..n as u64).rev().collect();
    let mut net = ring(&descending);
    net.run_until_quiescent(n as u64 + 3).unwrap();
    let expensive = net.metrics().messages_sent;
    assert!(
        expensive > (n * n) as u64 / 4,
        "descending ring sent only {expensive}"
    );
    // Per-node accounting: nobody exceeds one message per round.
    for t in net.traffic() {
        assert!(t.sent <= n as u64 + 1);
    }
}
