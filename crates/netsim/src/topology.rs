//! Network topologies and the per-link fault model.
//!
//! The paper's protocol assumes a complete communication graph (any query
//! node can reach any agent), but the simulator also serves scenario
//! studies — doubly regular pooling schemes, gossip on sparse overlays —
//! that need structured topologies and heterogeneous link quality. A
//! [`Topology`] describes *who may talk to whom* and, optionally, *how
//! well each link behaves*:
//!
//! * [`Topology::complete`] — every pair of nodes is connected (the
//!   default; implicit, no adjacency is materialized even at `n = 10⁶`).
//! * [`Topology::ring`] — bidirectional cycle.
//! * [`Topology::grid`] — 4-neighbor rows × cols lattice (no wraparound).
//! * [`Topology::random_regular`] — random `d`-regular graph via the
//!   pairing model with deterministic switch repair.
//! * [`Topology::small_world`] — Watts–Strogatz ring lattice with random
//!   rewiring.
//!
//! Per-link overrides ([`Topology::with_link_faults`]) attach a
//! [`LinkFaults`] profile to individual directed links; the network-wide
//! [`crate::FaultConfig`] is then just the *default* profile every other
//! link uses — one instance of the general link model.
//!
//! Loopback (`u → u`) is always permitted regardless of topology: a node
//! may address a message to itself (e.g. the canonical push-sum self-push)
//! without the topology declaring a self-loop.

use crate::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Fault profile of one (directed) link: the general link model of which
/// the network-wide [`crate::FaultConfig`] is the uniform default.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFaults {
    /// Probability that a message on this link is silently dropped.
    pub drop_prob: f64,
    /// Probability that a message on this link is duplicated (one extra
    /// copy, which then passes the drop/delay gates independently).
    pub dup_prob: f64,
    /// Maximum extra delivery delay in rounds (`0` disables delay).
    pub max_delay: u64,
}

impl LinkFaults {
    /// A perfectly reliable link: nothing dropped, duplicated or delayed.
    pub const RELIABLE: Self = Self {
        drop_prob: 0.0,
        dup_prob: 0.0,
        max_delay: 0,
    };

    /// Whether this profile can ever alter a message.
    pub fn is_reliable(&self) -> bool {
        self.drop_prob <= 0.0 && self.dup_prob <= 0.0 && self.max_delay == 0
    }
}

/// Adjacency representation.
#[derive(Debug, Clone)]
enum Repr {
    /// Every distinct pair is connected; nothing is materialized.
    Complete,
    /// CSR adjacency: `targets[offsets[v]..offsets[v + 1]]` are `v`'s
    /// neighbors in ascending id order.
    Sparse {
        offsets: Vec<usize>,
        targets: Vec<u32>,
    },
}

/// A communication topology over `n` nodes with optional per-link fault
/// overrides.
///
/// # Examples
///
/// ```
/// use npd_netsim::{NodeId, Topology};
///
/// let ring = Topology::ring(5);
/// assert_eq!(ring.degree(NodeId(0)), 2);
/// assert!(ring.contains_edge(NodeId(0), NodeId(4)));
/// assert!(!ring.contains_edge(NodeId(0), NodeId(2)));
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    n: usize,
    repr: Repr,
    /// Per-directed-link fault overrides, sorted by `(from, to)` for
    /// binary search.
    overrides: Vec<((u32, u32), LinkFaults)>,
}

impl Topology {
    /// The complete graph on `n` nodes (the classic synchronous model the
    /// paper's protocol assumes). No adjacency is materialized.
    pub fn complete(n: usize) -> Self {
        Self {
            n,
            repr: Repr::Complete,
            overrides: Vec::new(),
        }
    }

    /// Bidirectional ring: node `v` is connected to `v ± 1 (mod n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 2, "Topology::ring: n={n} must be at least 2");
        let edges = (0..n).flat_map(|v| {
            let prev = (v + n - 1) % n;
            let next = (v + 1) % n;
            [(v, prev), (v, next)]
        });
        Self::from_directed_edges(n, edges)
    }

    /// 4-neighbor `rows × cols` grid without wraparound.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the grid has fewer than two
    /// nodes.
    pub fn grid(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "Topology::grid: empty grid");
        let n = rows * cols;
        assert!(n >= 2, "Topology::grid: need at least two nodes");
        let mut edges = Vec::with_capacity(4 * n);
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if r + 1 < rows {
                    edges.push((v, v + cols));
                    edges.push((v + cols, v));
                }
                if c + 1 < cols {
                    edges.push((v, v + 1));
                    edges.push((v + 1, v));
                }
            }
        }
        Self::from_directed_edges(n, edges)
    }

    /// Random `d`-regular graph sampled from the pairing (configuration)
    /// model, with self-loops and parallel edges repaired by deterministic
    /// edge switches. Fully determined by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n·d` is odd, `d == 0`, or `d >= n`.
    pub fn random_regular(n: usize, d: usize, seed: u64) -> Self {
        assert!(d > 0, "Topology::random_regular: d must be positive");
        assert!(d < n, "Topology::random_regular: d={d} must be below n={n}");
        assert!(
            (n * d).is_multiple_of(2),
            "Topology::random_regular: n·d = {n}·{d} must be even"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // Stub list: node v appears d times. A shuffle pairs consecutive
        // stubs; edge switches then repair self-loops and duplicates (their
        // expected count is O(d²), independent of n).
        let mut stubs: Vec<u32> = (0..n as u32)
            .flat_map(|v| std::iter::repeat_n(v, d))
            .collect();
        for i in (1..stubs.len()).rev() {
            let j = rng.gen_range(0..=i);
            stubs.swap(i, j);
        }
        let mut pairs: Vec<(u32, u32)> = stubs.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        let edge_key = |a: u32, b: u32| ((a.min(b) as u64) << 32) | a.max(b) as u64;
        // Iteration-order invariant: `seen` is a pure membership probe
        // (insert/contains/remove by edge key). The repair loop walks
        // `pairs`/`bad` — indexable Vecs — so the sampled graph can never
        // observe the per-process hash seed. Any future use that *walks*
        // this set must switch to a sorted structure first.
        // xtask:allow(hash-iteration): duplicate-edge membership probe; repair loop iterates `pairs`, never this set
        let mut seen = std::collections::HashSet::with_capacity(pairs.len());
        let mut bad: Vec<usize> = Vec::new();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            if a == b || !seen.insert(edge_key(a, b)) {
                bad.push(i);
            }
        }
        let mut attempts = 0usize;
        while let Some(i) = bad.pop() {
            loop {
                attempts += 1;
                assert!(
                    attempts < 1000 * (bad.len() + 1) * (d * d + 1) + 10_000,
                    "Topology::random_regular: switch repair did not converge \
                     (n={n}, d={d}, seed={seed})"
                );
                let j = rng.gen_range(0..pairs.len());
                if j == i || bad.contains(&j) {
                    continue;
                }
                let (a, b) = pairs[i];
                let (c, e) = pairs[j];
                // Propose the switch (a,b),(c,e) → (a,e),(c,b); accept only
                // if both resulting pairs are valid simple edges.
                if a == e || c == b {
                    continue;
                }
                let (k1, k2) = (edge_key(a, e), edge_key(c, b));
                if k1 == k2 {
                    continue;
                }
                seen.remove(&edge_key(c, e));
                if seen.contains(&k1) || seen.contains(&k2) {
                    seen.insert(edge_key(c, e));
                    continue;
                }
                seen.insert(k1);
                seen.insert(k2);
                pairs[i] = (a, e);
                pairs[j] = (c, b);
                break;
            }
        }
        let edges = pairs
            .iter()
            .flat_map(|&(a, b)| [(a as usize, b as usize), (b as usize, a as usize)]);
        Self::from_directed_edges(n, edges)
    }

    /// Watts–Strogatz small world: a ring lattice where each node connects
    /// to its `k` nearest neighbors (`k/2` per side, `k` even), each edge
    /// rewired to a uniform random endpoint with probability `beta`.
    /// Fully determined by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is odd or zero, `k >= n`, or `beta ∉ [0, 1]`.
    pub fn small_world(n: usize, k: usize, beta: f64, seed: u64) -> Self {
        assert!(
            k > 0 && k.is_multiple_of(2),
            "Topology::small_world: k={k} must be positive and even"
        );
        assert!(k < n, "Topology::small_world: k={k} must be below n={n}");
        assert!(
            (0.0..=1.0).contains(&beta),
            "Topology::small_world: beta={beta} is not a probability"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // Iteration-order invariant: membership probe only — rewiring walks
        // the `undirected` Vec in ring order and asks `seen` about single
        // keys; the set is never iterated, so hash-seed order cannot leak
        // into the rewired edges. Keep it that way.
        // xtask:allow(hash-iteration): rewiring-collision membership probe; the loop iterates `undirected`, never this set
        let mut seen = std::collections::HashSet::with_capacity(n * k / 2);
        let edge_key = |a: usize, b: usize| ((a.min(b) as u64) << 32) | a.max(b) as u64;
        let mut undirected: Vec<(usize, usize)> = Vec::with_capacity(n * k / 2);
        for v in 0..n {
            for step in 1..=k / 2 {
                let u = (v + step) % n;
                seen.insert(edge_key(v, u));
                undirected.push((v, u));
            }
        }
        for edge in undirected.iter_mut() {
            if rng.gen::<f64>() >= beta {
                continue;
            }
            let (v, old) = *edge;
            // Rewire the far endpoint to a fresh uniform target; skip when
            // the node is saturated (no valid target after a few tries).
            for _ in 0..32 {
                let u = rng.gen_range(0..n);
                if u != v && !seen.contains(&edge_key(v, u)) {
                    seen.remove(&edge_key(v, old));
                    seen.insert(edge_key(v, u));
                    *edge = (v, u);
                    break;
                }
            }
        }
        let edges = undirected.iter().flat_map(|&(a, b)| [(a, b), (b, a)]);
        Self::from_directed_edges(n, edges)
    }

    /// Builds a sparse topology from directed edges (deduplicated).
    fn from_directed_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut adj: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(a, b)| {
                assert!(a < n && b < n, "topology edge ({a}, {b}) out of range");
                (a as u32, b as u32)
            })
            .collect();
        adj.sort_unstable();
        adj.dedup();
        let mut offsets = vec![0usize; n + 1];
        for &(a, _) in &adj {
            offsets[a as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let targets = adj.into_iter().map(|(_, b)| b).collect();
        Self {
            n,
            repr: Repr::Sparse { offsets, targets },
            overrides: Vec::new(),
        }
    }

    /// Overrides the fault profile of the directed link `from → to`.
    ///
    /// Overrides only take effect on networks constructed with
    /// [`crate::Network::with_faults`] (or
    /// [`crate::Network::with_link_model`]), whose [`crate::FaultConfig`]
    /// supplies the fault RNG seed and the default profile of every
    /// non-overridden link.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    #[must_use]
    pub fn with_link_faults(mut self, from: NodeId, to: NodeId, faults: LinkFaults) -> Self {
        assert!(
            from.0 < self.n && to.0 < self.n,
            "with_link_faults: link {from} → {to} out of range (n = {})",
            self.n
        );
        let key = (from.0 as u32, to.0 as u32);
        match self.overrides.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => self.overrides[i].1 = faults,
            Err(i) => self.overrides.insert(i, (key, faults)),
        }
        self
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether this is the (implicit) complete graph.
    pub fn is_complete(&self) -> bool {
        matches!(self.repr, Repr::Complete)
    }

    /// Out-degree of `v` (excluding the always-available loopback).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        assert!(v.0 < self.n, "Topology::degree: {v} out of range");
        match &self.repr {
            Repr::Complete => self.n - 1,
            Repr::Sparse { offsets, .. } => offsets[v.0 + 1] - offsets[v.0],
        }
    }

    /// The `i`-th neighbor of `v`, in ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `i >= degree(v)`.
    pub fn neighbor(&self, v: NodeId, i: usize) -> NodeId {
        match &self.repr {
            Repr::Complete => {
                assert!(i < self.n - 1, "Topology::neighbor: index {i} out of range");
                NodeId(if i < v.0 { i } else { i + 1 })
            }
            Repr::Sparse { offsets, targets } => {
                let lo = offsets[v.0];
                assert!(
                    i < offsets[v.0 + 1] - lo,
                    "Topology::neighbor: index {i} out of range for {v}"
                );
                NodeId(targets[lo + i] as usize)
            }
        }
    }

    /// Neighbors of `v` in ascending id order (sparse topologies only).
    ///
    /// Returns `None` for the complete topology, whose adjacency is
    /// implicit; use [`degree`](Self::degree)/[`neighbor`](Self::neighbor)
    /// there.
    pub fn neighbors(&self, v: NodeId) -> Option<&[u32]> {
        match &self.repr {
            Repr::Complete => None,
            Repr::Sparse { offsets, targets } => Some(&targets[offsets[v.0]..offsets[v.0 + 1]]),
        }
    }

    /// Whether the directed link `from → to` exists. Loopback (`from ==
    /// to`) is always considered present.
    pub fn contains_edge(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return from.0 < self.n;
        }
        match &self.repr {
            Repr::Complete => from.0 < self.n && to.0 < self.n,
            Repr::Sparse { offsets, targets } => {
                from.0 < self.n
                    && to.0 < self.n
                    && targets[offsets[from.0]..offsets[from.0 + 1]]
                        .binary_search(&(to.0 as u32))
                        .is_ok()
            }
        }
    }

    /// The fault override of the link `from → to`, if any.
    pub fn link_faults(&self, from: NodeId, to: NodeId) -> Option<&LinkFaults> {
        if self.overrides.is_empty() {
            return None;
        }
        let key = (from.0 as u32, to.0 as u32);
        self.overrides
            .binary_search_by_key(&key, |&(k, _)| k)
            .ok()
            .map(|i| &self.overrides[i].1)
    }

    /// Whether any link carries a fault override.
    pub fn has_link_faults(&self) -> bool {
        !self.overrides.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_is_implicit() {
        let t = Topology::complete(1000);
        assert!(t.is_complete());
        assert_eq!(t.degree(NodeId(7)), 999);
        assert_eq!(t.neighbor(NodeId(3), 2), NodeId(2));
        assert_eq!(t.neighbor(NodeId(3), 3), NodeId(4));
        assert!(t.contains_edge(NodeId(0), NodeId(999)));
        assert!(t.neighbors(NodeId(0)).is_none());
    }

    #[test]
    fn ring_has_degree_two() {
        let t = Topology::ring(6);
        for v in 0..6 {
            assert_eq!(t.degree(NodeId(v)), 2, "node {v}");
        }
        assert_eq!(t.neighbors(NodeId(0)).unwrap(), &[1, 5]);
        assert!(t.contains_edge(NodeId(5), NodeId(0)));
        assert!(!t.contains_edge(NodeId(0), NodeId(3)));
    }

    #[test]
    fn tiny_ring_dedups_parallel_edges() {
        // n = 2: prev and next coincide; the edge must appear once.
        let t = Topology::ring(2);
        assert_eq!(t.degree(NodeId(0)), 1);
        assert_eq!(t.neighbors(NodeId(1)).unwrap(), &[0]);
    }

    #[test]
    fn grid_corner_and_interior_degrees() {
        let t = Topology::grid(3, 4);
        assert_eq!(t.n(), 12);
        assert_eq!(t.degree(NodeId(0)), 2); // corner
        assert_eq!(t.degree(NodeId(1)), 3); // edge
        assert_eq!(t.degree(NodeId(5)), 4); // interior
        assert!(t.contains_edge(NodeId(0), NodeId(4)));
        assert!(!t.contains_edge(NodeId(3), NodeId(4))); // row wrap absent
    }

    #[test]
    fn random_regular_is_simple_and_regular() {
        for &(n, d, seed) in &[(16usize, 3usize, 1u64), (50, 4, 2), (101, 6, 3)] {
            let t = Topology::random_regular(n, d, seed);
            for v in 0..n {
                assert_eq!(t.degree(NodeId(v)), d, "n={n} d={d} node {v}");
                let nbrs = t.neighbors(NodeId(v)).unwrap();
                for w in nbrs.windows(2) {
                    assert!(w[0] < w[1], "duplicate or unsorted neighbor");
                }
                assert!(!nbrs.contains(&(v as u32)), "self-loop at {v}");
                // Symmetry.
                for &u in nbrs {
                    assert!(t.contains_edge(NodeId(u as usize), NodeId(v)));
                }
            }
        }
    }

    #[test]
    fn random_regular_is_deterministic() {
        let a = Topology::random_regular(40, 4, 9);
        let b = Topology::random_regular(40, 4, 9);
        for v in 0..40 {
            assert_eq!(a.neighbors(NodeId(v)), b.neighbors(NodeId(v)));
        }
    }

    #[test]
    fn small_world_preserves_edge_count() {
        let n = 60;
        let k = 4;
        for beta in [0.0, 0.3, 1.0] {
            let t = Topology::small_world(n, k, beta, 5);
            let total: usize = (0..n).map(|v| t.degree(NodeId(v))).sum();
            assert_eq!(total, n * k, "beta={beta}");
        }
        // beta = 0 is the pristine lattice.
        let lattice = Topology::small_world(n, k, 0.0, 5);
        assert_eq!(lattice.neighbors(NodeId(0)).unwrap(), &[1, 2, 58, 59]);
    }

    #[test]
    fn link_fault_overrides_are_point_lookups() {
        let bad = LinkFaults {
            drop_prob: 1.0,
            dup_prob: 0.0,
            max_delay: 0,
        };
        let t = Topology::complete(4)
            .with_link_faults(NodeId(0), NodeId(1), bad)
            .with_link_faults(NodeId(2), NodeId(3), LinkFaults::RELIABLE);
        assert!(t.has_link_faults());
        assert_eq!(t.link_faults(NodeId(0), NodeId(1)), Some(&bad));
        assert_eq!(t.link_faults(NodeId(1), NodeId(0)), None);
        assert!(t.link_faults(NodeId(2), NodeId(3)).unwrap().is_reliable());
    }

    #[test]
    fn loopback_is_always_an_edge() {
        assert!(Topology::ring(4).contains_edge(NodeId(2), NodeId(2)));
        assert!(Topology::complete(4).contains_edge(NodeId(0), NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn random_regular_rejects_odd_stub_count() {
        Topology::random_regular(5, 3, 0);
    }
}
