//! Fault injection: message-level faults, agent-level (node) faults, and
//! the reliable-delivery layer that pushes back against both.
//!
//! Three orthogonal fault surfaces compose freely:
//!
//! 1. **Message faults** ([`FaultConfig`], [`crate::LinkFaults`]): each
//!    message copy is independently dropped, duplicated, or delayed.
//! 2. **Node faults** ([`NodeFaultPlan`]): whole agents fail-stop crash
//!    (optionally restarting later with wiped state), persistently lag
//!    (*stragglers*), or garble a fraction of their outgoing payloads
//!    (*corruptors*).
//! 3. **Reliable delivery** ([`crate::ReliableConfig`]): opt-in
//!    per-message ack/timeout/retry that turns one-shot sends into
//!    at-least-once delivery with a bounded retransmission budget and
//!    exponential backoff in rounds.
//!
//! Every fault decision — message-level and node-level alike — is a pure
//! hash of the plan's seed and the *identity* of the thing being decided
//! (a node id, or a message's `(sender, send-seq, copy)` triple), never a
//! draw from a shared RNG stream. That is the crate's determinism
//! contract: fault schedules replay bit-identically at any shard or
//! thread count, so chaos experiments are exactly reproducible.
//!
//! Crash semantics are fail-stop: a crashed node is not stepped, sends
//! nothing, and every message that would be delivered to it while down is
//! discarded and counted in
//! [`Metrics::messages_lost_to_crash`](crate::Metrics::messages_lost_to_crash)
//! (the conservation identity gains that term). A restarting node rejoins
//! with its protocol state wiped ([`crate::Node::on_restart`]) but keeps
//! its send-sequence counter, so message identities stay unique across
//! incarnations.

use crate::topology::LinkFaults;
use serde::{Deserialize, Serialize};

/// Splitmix64 finalizer: the mixing primitive behind every per-identity
/// fault decision in this crate.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A hash in `[0, 1)` derived from the top 53 bits of `h`.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Pure per-node draw: mixes the plan seed, a salt for the decision kind,
/// and the node id.
fn node_hash(seed: u64, salt: u64, node: u64) -> u64 {
    splitmix64(seed ^ splitmix64(salt) ^ splitmix64(node ^ (salt << 1)))
}

/// Configuration for randomized message faults: the *uniform* instance of
/// the general per-link fault model (see [`crate::LinkFaults`] and
/// [`crate::Topology::with_link_faults`] for per-link overrides).
///
/// Each message sent through the network is independently duplicated (one
/// extra copy) with probability [`dup_prob`](Self::dup_prob); every copy —
/// original or duplicate — then independently passes the drop gate
/// (probability [`drop_prob`](Self::drop_prob)) and the delay draw.
/// Decisions are pure functions of [`seed`](Self::seed) and the message
/// identity `(sender, send-seq, copy)`, so runs replay bit-identically at
/// any shard or thread count.
///
/// The pooled-data protocol is *one-shot* (a query's measurement is sent
/// exactly once), so dropped messages model sensor/readout loss and
/// duplicates model at-least-once delivery; the failure-injection tests in
/// `npd-core` quantify how the decoder degrades under both.
///
/// # Examples
///
/// ```
/// let faults = npd_netsim::FaultConfig::new(0.05, 0.0, 99).unwrap();
/// assert_eq!(faults.drop_prob(), 0.05);
/// ```
/// In addition to loss and duplication, messages can be *delayed*: with
/// [`with_max_delay`](Self::with_max_delay) each surviving message is held
/// back a uniform number of extra rounds in `0..=max_delay`. Delay models
/// the bounded-asynchrony middle ground between the synchronous model the
/// protocols are written for and a fully asynchronous network. Protocols
/// that react to *arrivals* (measurement accumulation, push-sum) tolerate
/// it outright. Schedule-driven phases (the sorting network, the gossip
/// selection) require the synchronous model, and an out-of-schedule
/// arrival is *not* harmless to them: a delayed sort token consumed as the
/// current layer's partner silently corrupts the compare-exchange, and an
/// out-of-phase aggregation message used to crash the selection outright.
/// Both protocols therefore tag their messages (comparator layer, phase
/// index) and count-and-ignore stale arrivals — that is what turns bounded
/// asynchrony into *graceful degradation* (missing partners, partial
/// aggregates) instead of corruption or panics; see
/// `ProtocolOutcome::stale_messages` and `TopKReport::stale_messages`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    drop_prob: f64,
    dup_prob: f64,
    seed: u64,
    #[serde(default)]
    max_delay: u64,
}

impl FaultConfig {
    /// Creates a fault configuration.
    ///
    /// # Errors
    ///
    /// Returns an error message if either probability lies outside `[0, 1]`.
    pub fn new(drop_prob: f64, dup_prob: f64, seed: u64) -> Result<Self, InvalidFaultConfig> {
        if !(0.0..=1.0).contains(&drop_prob) {
            return Err(InvalidFaultConfig {
                field: "drop_prob",
                value: drop_prob,
            });
        }
        if !(0.0..=1.0).contains(&dup_prob) {
            return Err(InvalidFaultConfig {
                field: "dup_prob",
                value: dup_prob,
            });
        }
        Ok(Self {
            drop_prob,
            dup_prob,
            seed,
            max_delay: 0,
        })
    }

    /// A configuration that never alters messages: useful as the default
    /// profile when only per-link overrides should inject faults (the
    /// `seed` still drives those overrides' decisions).
    pub fn reliable(seed: u64) -> Self {
        Self {
            drop_prob: 0.0,
            dup_prob: 0.0,
            seed,
            max_delay: 0,
        }
    }

    /// Adds random message delay: each surviving message is held back an
    /// extra `0..=rounds` rounds (uniform, independent per message).
    #[must_use]
    pub fn with_max_delay(mut self, rounds: u64) -> Self {
        self.max_delay = rounds;
        self
    }

    /// This configuration viewed as the default per-link fault profile.
    pub fn link_faults(&self) -> LinkFaults {
        LinkFaults {
            drop_prob: self.drop_prob,
            dup_prob: self.dup_prob,
            max_delay: self.max_delay,
        }
    }

    /// Probability that a sent message is silently dropped.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// Probability that a delivered message arrives twice.
    pub fn dup_prob(&self) -> f64 {
        self.dup_prob
    }

    /// Seed of the fault RNG.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Maximum extra delivery delay in rounds (`0` disables delays).
    pub fn max_delay(&self) -> u64 {
        self.max_delay
    }
}

/// Salt for the "is this node a crasher" draw.
const SALT_CRASH_SELECT: u64 = 0x5EED_C0DE_0000_0001;
/// Salt for a crasher's crash-round draw inside the window.
const SALT_CRASH_ROUND: u64 = 0x5EED_C0DE_0000_0002;
/// Salt for the "is this node a straggler" draw.
const SALT_STRAGGLER: u64 = 0x5EED_C0DE_0000_0003;
/// Salt for the "is this node a corruptor" draw.
const SALT_CORRUPTOR: u64 = 0x5EED_C0DE_0000_0004;
/// Salt for a corruptor's per-message garble draw.
const SALT_CORRUPT_MSG: u64 = 0x5EED_C0DE_0000_0005;
/// Salt for the garble entropy handed to the payload corruptor.
const SALT_CORRUPT_BITS: u64 = 0x5EED_C0DE_0000_0006;

/// Agent-level fault schedule: fail-stop crashes (with optional restart),
/// stragglers, and payload corruptors.
///
/// Like [`FaultConfig`], the plan is *declarative*: which nodes crash (and
/// when), which lag, and which garble their payloads are pure functions of
/// [`seed`](Self::seed) and the node id — there is no RNG stream to
/// advance, so the same plan replays bit-identically at any shard or
/// thread count. Attach a plan to a network with
/// [`crate::Network::with_node_faults`].
///
/// # Fault kinds
///
/// - **Crashes** ([`with_crashes`](Self::with_crashes)): a `frac` fraction
///   of nodes fail-stop at a round drawn uniformly from the crash window.
///   With [`with_restarts`](Self::with_restarts) each crashed node rejoins
///   `after` rounds later with wiped protocol state
///   ([`crate::Node::on_restart`]); without it the crash is permanent.
/// - **Stragglers** ([`with_stragglers`](Self::with_stragglers)): a
///   fraction of nodes whose every outgoing message takes `extra_delay`
///   additional rounds — persistent slowness, unlike the per-message delay
///   jitter of [`FaultConfig::with_max_delay`].
/// - **Corruptors** ([`with_corruption`](Self::with_corruption)): a
///   fraction of nodes that garble each outgoing payload independently
///   with probability `per_message`. Corrupted messages are *delivered*
///   (garbled), so robustness must come from the receiver — see the
///   trimmed accumulation path in `npd-core`.
///
/// # Examples
///
/// ```
/// let plan = npd_netsim::NodeFaultPlan::new(7)
///     .with_crashes(0.1, (2, 6)).unwrap()
///     .with_restarts(4)
///     .with_corruption(0.05, 1.0).unwrap();
/// // Decisions are pure: asking twice gives the same answer.
/// assert_eq!(plan.crash_span(3), plan.crash_span(3));
/// assert_eq!(plan.is_corruptor(9), plan.is_corruptor(9));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeFaultPlan {
    seed: u64,
    crash_frac: f64,
    crash_from: u64,
    crash_until: u64,
    restart_after: Option<u64>,
    straggler_frac: f64,
    straggler_delay: u64,
    corruptor_frac: f64,
    corrupt_prob: f64,
}

impl NodeFaultPlan {
    /// A plan with no faults; add fault kinds with the builder methods.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            crash_frac: 0.0,
            crash_from: 0,
            crash_until: 0,
            restart_after: None,
            straggler_frac: 0.0,
            straggler_delay: 0,
            corruptor_frac: 0.0,
            corrupt_prob: 0.0,
        }
    }

    /// Makes a `frac` fraction of nodes fail-stop crash at a round drawn
    /// uniformly from the inclusive `window`.
    ///
    /// # Errors
    ///
    /// Returns an error if `frac` is not a probability or the window is
    /// inverted.
    pub fn with_crashes(
        mut self,
        frac: f64,
        window: (u64, u64),
    ) -> Result<Self, InvalidFaultConfig> {
        if !(0.0..=1.0).contains(&frac) {
            return Err(InvalidFaultConfig {
                field: "crash_frac",
                value: frac,
            });
        }
        if window.0 > window.1 {
            return Err(InvalidFaultConfig {
                field: "crash_window",
                value: window.0 as f64 - window.1 as f64,
            });
        }
        self.crash_frac = frac;
        self.crash_from = window.0;
        self.crash_until = window.1;
        Ok(self)
    }

    /// Crashed nodes restart `after` rounds later (minimum 1) with wiped
    /// state; without this call crashes are permanent.
    #[must_use]
    pub fn with_restarts(mut self, after: u64) -> Self {
        self.restart_after = Some(after.max(1));
        self
    }

    /// Makes a `frac` fraction of nodes stragglers: every message they
    /// send takes `extra_delay` additional rounds to arrive.
    ///
    /// # Errors
    ///
    /// Returns an error if `frac` is not a probability.
    pub fn with_stragglers(
        mut self,
        frac: f64,
        extra_delay: u64,
    ) -> Result<Self, InvalidFaultConfig> {
        if !(0.0..=1.0).contains(&frac) {
            return Err(InvalidFaultConfig {
                field: "straggler_frac",
                value: frac,
            });
        }
        self.straggler_frac = frac;
        self.straggler_delay = extra_delay;
        Ok(self)
    }

    /// Makes a `frac` fraction of nodes corruptors, each garbling an
    /// outgoing payload independently with probability `per_message`.
    ///
    /// # Errors
    ///
    /// Returns an error if either argument is not a probability.
    pub fn with_corruption(
        mut self,
        frac: f64,
        per_message: f64,
    ) -> Result<Self, InvalidFaultConfig> {
        if !(0.0..=1.0).contains(&frac) {
            return Err(InvalidFaultConfig {
                field: "corruptor_frac",
                value: frac,
            });
        }
        if !(0.0..=1.0).contains(&per_message) {
            return Err(InvalidFaultConfig {
                field: "corrupt_prob",
                value: per_message,
            });
        }
        self.corruptor_frac = frac;
        self.corrupt_prob = per_message;
        Ok(self)
    }

    /// Seed of the per-identity fault hashes.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fraction of nodes that crash.
    pub fn crash_frac(&self) -> f64 {
        self.crash_frac
    }

    /// Fraction of nodes that corrupt payloads.
    pub fn corruptor_frac(&self) -> f64 {
        self.corruptor_frac
    }

    /// Per-message garble probability of a corruptor node.
    pub fn corrupt_prob(&self) -> f64 {
        self.corrupt_prob
    }

    /// Whether the plan schedules any corruption at all.
    pub fn has_corruption(&self) -> bool {
        self.corruptor_frac > 0.0 && self.corrupt_prob > 0.0
    }

    /// This node's crash schedule: `Some((crash_round, restart_round))`
    /// if it crashes, where `restart_round` is `None` for a permanent
    /// crash. Pure in `(seed, node)`.
    pub fn crash_span(&self, node: usize) -> Option<(u64, Option<u64>)> {
        if self.crash_frac <= 0.0 {
            return None;
        }
        let select = node_hash(self.seed, SALT_CRASH_SELECT, node as u64);
        if unit_f64(select) >= self.crash_frac {
            return None;
        }
        let width = self.crash_until - self.crash_from + 1;
        let round = self.crash_from + node_hash(self.seed, SALT_CRASH_ROUND, node as u64) % width;
        let restart = self.restart_after.map(|d| round + d);
        Some((round, restart))
    }

    /// Whether `node` is down (crashed and not yet restarted) at `round`.
    pub fn is_down(&self, node: usize, round: u64) -> bool {
        match self.crash_span(node) {
            Some((crash, restart)) => round >= crash && restart.is_none_or(|r| round < r),
            None => false,
        }
    }

    /// Extra delivery delay of every message `node` sends (0 for
    /// non-stragglers).
    pub fn straggler_delay(&self, node: usize) -> u64 {
        if self.straggler_frac <= 0.0 || self.straggler_delay == 0 {
            return 0;
        }
        let select = node_hash(self.seed, SALT_STRAGGLER, node as u64);
        if unit_f64(select) < self.straggler_frac {
            self.straggler_delay
        } else {
            0
        }
    }

    /// Whether `node` garbles (some of) its outgoing payloads.
    pub fn is_corruptor(&self, node: usize) -> bool {
        if self.corruptor_frac <= 0.0 || self.corrupt_prob <= 0.0 {
            return false;
        }
        unit_f64(node_hash(self.seed, SALT_CORRUPTOR, node as u64)) < self.corruptor_frac
    }

    /// Whether the message `(from, seq)` is garbled: true only for
    /// corruptor senders, independently per message.
    pub fn corrupts_message(&self, from: u32, seq: u64) -> bool {
        if !self.is_corruptor(from as usize) {
            return false;
        }
        let h = node_hash(self.seed, SALT_CORRUPT_MSG, (from as u64) ^ splitmix64(seq));
        unit_f64(h) < self.corrupt_prob
    }

    /// Deterministic garble entropy for the message `(from, seq)`, handed
    /// to the payload corruptor so garbling itself replays exactly.
    pub fn corruption_entropy(&self, from: u32, seq: u64) -> u64 {
        node_hash(
            self.seed,
            SALT_CORRUPT_BITS,
            (from as u64) ^ splitmix64(seq),
        )
    }
}

/// Configuration of the opt-in reliable-delivery (at-least-once) layer;
/// attach with [`crate::Network::with_reliability`].
///
/// Messages sent through [`crate::Context::send_reliable`] are tracked by
/// the engine: if such a message is lost — dropped by a link fault, or
/// discarded because its destination was crashed at delivery time — it is
/// retransmitted after a backoff of `timeout × 2^attempt` rounds, up to
/// `max_retries` retransmissions. The engine stands in for the receiver's
/// acknowledgement (it knows delivery outcomes), so `timeout` models the
/// sender's loss-detection latency rather than putting ack messages on
/// the wire. Duplicate-fault copies are bonus traffic and never
/// retransmitted; the existing duplication tolerance of the protocols is
/// exactly what makes at-least-once delivery safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReliableConfig {
    timeout: u64,
    max_retries: u16,
}

impl Default for ReliableConfig {
    /// Two-round detection timeout, three retransmissions.
    fn default() -> Self {
        Self {
            timeout: 2,
            max_retries: 3,
        }
    }
}

impl ReliableConfig {
    /// Creates a reliability configuration; `timeout` is clamped to at
    /// least 1 round.
    pub fn new(timeout: u64, max_retries: u16) -> Self {
        Self {
            timeout: timeout.max(1),
            max_retries,
        }
    }

    /// Base loss-detection timeout in rounds.
    pub fn timeout(&self) -> u64 {
        self.timeout
    }

    /// Maximum number of retransmissions per reliable message.
    pub fn max_retries(&self) -> u16 {
        self.max_retries
    }

    /// Backoff before retransmission number `attempt + 1`:
    /// `timeout × 2^attempt`, saturating.
    pub(crate) fn backoff(&self, attempt: u16) -> u64 {
        self.timeout.saturating_mul(1u64 << attempt.min(16))
    }

    /// Worst-case extra rounds the retry chain can stretch a delivery:
    /// the sum of every backoff wait plus one delivery round per attempt.
    /// Round budgets of protocols running over the reliable layer must
    /// include this slack, or a fully exercised retry chain turns into a
    /// spurious `MaxRoundsExceeded`.
    pub fn worst_case_rounds(&self) -> u64 {
        (0..self.max_retries)
            .map(|a| self.backoff(a).saturating_add(1))
            .fold(0u64, u64::saturating_add)
    }
}

/// Error for out-of-range fault probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidFaultConfig {
    /// Which field was invalid.
    pub field: &'static str,
    /// The offending value.
    pub value: f64,
}

impl std::fmt::Display for InvalidFaultConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid fault configuration: {}={} is not a probability",
            self.field, self.value
        )
    }
}

impl std::error::Error for InvalidFaultConfig {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_probabilities() {
        assert!(FaultConfig::new(0.0, 1.0, 0).is_ok());
        assert!(FaultConfig::new(0.5, 0.5, 1).is_ok());
    }

    #[test]
    fn delay_builder_sets_bound() {
        let f = FaultConfig::new(0.0, 0.0, 7).unwrap().with_max_delay(3);
        assert_eq!(f.max_delay(), 3);
        assert_eq!(FaultConfig::new(0.0, 0.0, 7).unwrap().max_delay(), 0);
    }

    #[test]
    fn rejects_out_of_range() {
        let err = FaultConfig::new(1.5, 0.0, 0).unwrap_err();
        assert_eq!(err.field, "drop_prob");
        assert!(err.to_string().contains("drop_prob"));
        assert!(FaultConfig::new(0.0, -0.1, 0).is_err());
    }

    #[test]
    fn node_plan_validates_inputs() {
        assert!(NodeFaultPlan::new(1).with_crashes(1.5, (0, 4)).is_err());
        assert!(NodeFaultPlan::new(1).with_crashes(0.5, (4, 2)).is_err());
        assert!(NodeFaultPlan::new(1).with_stragglers(-0.1, 2).is_err());
        assert!(NodeFaultPlan::new(1).with_corruption(0.5, 2.0).is_err());
        assert!(NodeFaultPlan::new(1).with_corruption(0.5, 0.5).is_ok());
    }

    #[test]
    fn crash_spans_are_pure_and_in_window() {
        let plan = NodeFaultPlan::new(9)
            .with_crashes(0.5, (3, 7))
            .unwrap()
            .with_restarts(2);
        let mut crashed = 0usize;
        for node in 0..200 {
            let span = plan.crash_span(node);
            assert_eq!(span, plan.crash_span(node), "node {node} not pure");
            if let Some((crash, restart)) = span {
                crashed += 1;
                assert!((3..=7).contains(&crash), "crash round {crash}");
                assert_eq!(restart, Some(crash + 2));
                assert!(plan.is_down(node, crash));
                assert!(plan.is_down(node, crash + 1));
                assert!(!plan.is_down(node, crash + 2), "restarted");
                assert!(!plan.is_down(node, crash.saturating_sub(1)));
            }
        }
        assert!(
            (60..=140).contains(&crashed),
            "≈50% of 200 nodes should crash, got {crashed}"
        );
    }

    #[test]
    fn permanent_crash_without_restart() {
        let plan = NodeFaultPlan::new(4).with_crashes(1.0, (2, 2)).unwrap();
        for node in 0..20 {
            assert_eq!(plan.crash_span(node), Some((2, None)));
            assert!(plan.is_down(node, 1_000_000));
        }
    }

    #[test]
    fn stragglers_and_corruptors_select_fractions() {
        let plan = NodeFaultPlan::new(11)
            .with_stragglers(0.25, 3)
            .unwrap()
            .with_corruption(0.25, 0.5)
            .unwrap();
        let stragglers = (0..400).filter(|&v| plan.straggler_delay(v) == 3).count();
        let corruptors = (0..400).filter(|&v| plan.is_corruptor(v)).count();
        assert!((60..=140).contains(&stragglers), "{stragglers}");
        assert!((60..=140).contains(&corruptors), "{corruptors}");
        // Straggler and corruptor draws are independent salts: the two
        // sets must not coincide.
        let both = (0..400)
            .filter(|&v| plan.straggler_delay(v) == 3 && plan.is_corruptor(v))
            .count();
        assert!(both < stragglers.min(corruptors), "sets coincide");
    }

    #[test]
    fn corruption_is_per_message_and_only_for_corruptors() {
        let plan = NodeFaultPlan::new(21).with_corruption(0.5, 0.5).unwrap();
        let corruptor = (0..100)
            .find(|&v| plan.is_corruptor(v))
            .expect("some corruptor");
        let clean = (0..100)
            .find(|&v| !plan.is_corruptor(v))
            .expect("some clean node");
        assert!((0..200).all(|s| !plan.corrupts_message(clean as u32, s)));
        let garbled = (0..200)
            .filter(|&s| plan.corrupts_message(corruptor as u32, s))
            .count();
        assert!((50..=150).contains(&garbled), "{garbled}");
        assert_ne!(
            plan.corruption_entropy(corruptor as u32, 0),
            plan.corruption_entropy(corruptor as u32, 1)
        );
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = NodeFaultPlan::new(77);
        assert!(!plan.has_corruption());
        for node in 0..50 {
            assert_eq!(plan.crash_span(node), None);
            assert_eq!(plan.straggler_delay(node), 0);
            assert!(!plan.is_corruptor(node));
            assert!(!plan.corrupts_message(node as u32, 0));
        }
    }
}
