//! Message-level fault injection.

use crate::topology::LinkFaults;
use serde::{Deserialize, Serialize};

/// Configuration for randomized message faults: the *uniform* instance of
/// the general per-link fault model (see [`crate::LinkFaults`] and
/// [`crate::Topology::with_link_faults`] for per-link overrides).
///
/// Each message sent through the network is independently duplicated (one
/// extra copy) with probability [`dup_prob`](Self::dup_prob); every copy —
/// original or duplicate — then independently passes the drop gate
/// (probability [`drop_prob`](Self::drop_prob)) and the delay draw.
/// Decisions are pure functions of [`seed`](Self::seed) and the message
/// identity `(sender, send-seq, copy)`, so runs replay bit-identically at
/// any shard or thread count.
///
/// The pooled-data protocol is *one-shot* (a query's measurement is sent
/// exactly once), so dropped messages model sensor/readout loss and
/// duplicates model at-least-once delivery; the failure-injection tests in
/// `npd-core` quantify how the decoder degrades under both.
///
/// # Examples
///
/// ```
/// let faults = npd_netsim::FaultConfig::new(0.05, 0.0, 99).unwrap();
/// assert_eq!(faults.drop_prob(), 0.05);
/// ```
/// In addition to loss and duplication, messages can be *delayed*: with
/// [`with_max_delay`](Self::with_max_delay) each surviving message is held
/// back a uniform number of extra rounds in `0..=max_delay`. Delay models
/// the bounded-asynchrony middle ground between the synchronous model the
/// protocols are written for and a fully asynchronous network. Protocols
/// that react to *arrivals* (measurement accumulation, push-sum) tolerate
/// it outright. Schedule-driven phases (the sorting network, the gossip
/// selection) require the synchronous model, and an out-of-schedule
/// arrival is *not* harmless to them: a delayed sort token consumed as the
/// current layer's partner silently corrupts the compare-exchange, and an
/// out-of-phase aggregation message used to crash the selection outright.
/// Both protocols therefore tag their messages (comparator layer, phase
/// index) and count-and-ignore stale arrivals — that is what turns bounded
/// asynchrony into *graceful degradation* (missing partners, partial
/// aggregates) instead of corruption or panics; see
/// `ProtocolOutcome::stale_messages` and `TopKReport::stale_messages`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    drop_prob: f64,
    dup_prob: f64,
    seed: u64,
    #[serde(default)]
    max_delay: u64,
}

impl FaultConfig {
    /// Creates a fault configuration.
    ///
    /// # Errors
    ///
    /// Returns an error message if either probability lies outside `[0, 1]`.
    pub fn new(drop_prob: f64, dup_prob: f64, seed: u64) -> Result<Self, InvalidFaultConfig> {
        if !(0.0..=1.0).contains(&drop_prob) {
            return Err(InvalidFaultConfig {
                field: "drop_prob",
                value: drop_prob,
            });
        }
        if !(0.0..=1.0).contains(&dup_prob) {
            return Err(InvalidFaultConfig {
                field: "dup_prob",
                value: dup_prob,
            });
        }
        Ok(Self {
            drop_prob,
            dup_prob,
            seed,
            max_delay: 0,
        })
    }

    /// A configuration that never alters messages: useful as the default
    /// profile when only per-link overrides should inject faults (the
    /// `seed` still drives those overrides' decisions).
    pub fn reliable(seed: u64) -> Self {
        Self {
            drop_prob: 0.0,
            dup_prob: 0.0,
            seed,
            max_delay: 0,
        }
    }

    /// Adds random message delay: each surviving message is held back an
    /// extra `0..=rounds` rounds (uniform, independent per message).
    #[must_use]
    pub fn with_max_delay(mut self, rounds: u64) -> Self {
        self.max_delay = rounds;
        self
    }

    /// This configuration viewed as the default per-link fault profile.
    pub fn link_faults(&self) -> LinkFaults {
        LinkFaults {
            drop_prob: self.drop_prob,
            dup_prob: self.dup_prob,
            max_delay: self.max_delay,
        }
    }

    /// Probability that a sent message is silently dropped.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// Probability that a delivered message arrives twice.
    pub fn dup_prob(&self) -> f64 {
        self.dup_prob
    }

    /// Seed of the fault RNG.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Maximum extra delivery delay in rounds (`0` disables delays).
    pub fn max_delay(&self) -> u64 {
        self.max_delay
    }
}

/// Error for out-of-range fault probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidFaultConfig {
    /// Which field was invalid.
    pub field: &'static str,
    /// The offending value.
    pub value: f64,
}

impl std::fmt::Display for InvalidFaultConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid fault configuration: {}={} is not a probability",
            self.field, self.value
        )
    }
}

impl std::error::Error for InvalidFaultConfig {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_probabilities() {
        assert!(FaultConfig::new(0.0, 1.0, 0).is_ok());
        assert!(FaultConfig::new(0.5, 0.5, 1).is_ok());
    }

    #[test]
    fn delay_builder_sets_bound() {
        let f = FaultConfig::new(0.0, 0.0, 7).unwrap().with_max_delay(3);
        assert_eq!(f.max_delay(), 3);
        assert_eq!(FaultConfig::new(0.0, 0.0, 7).unwrap().max_delay(), 0);
    }

    #[test]
    fn rejects_out_of_range() {
        let err = FaultConfig::new(1.5, 0.0, 0).unwrap_err();
        assert_eq!(err.field, "drop_prob");
        assert!(err.to_string().contains("drop_prob"));
        assert!(FaultConfig::new(0.0, -0.1, 0).is_err());
    }
}
