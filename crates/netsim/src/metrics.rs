//! Communication accounting.

use serde::{Deserialize, Serialize};

/// Cumulative communication metrics of a [`crate::Network`] run.
///
/// The paper's conclusion contrasts the greedy protocol (“requires only one
/// information exchange per network node”) with AMP's per-iteration message
/// flow; these counters make that comparison concrete.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Rounds executed so far.
    pub rounds: u64,
    /// Messages handed to the network by nodes.
    pub messages_sent: u64,
    /// Messages actually delivered (after faults).
    pub messages_delivered: u64,
    /// Messages dropped by fault injection.
    pub messages_dropped: u64,
    /// Extra copies created by duplication fault injection.
    pub messages_duplicated: u64,
    /// Messages held back by delay fault injection.
    pub messages_delayed: u64,
    /// Estimated payload bytes sent (`messages_sent × size_of::<M>()`).
    ///
    /// This is a stack-size estimate: heap-owning payloads count their
    /// header only. The protocols in this workspace use plain-old-data
    /// messages, for which the estimate is exact.
    pub payload_bytes_sent: u64,
    /// Largest number of messages in flight at any round boundary.
    pub peak_in_flight: u64,
    /// Messages discarded because their destination was crashed at
    /// delivery time (see [`crate::NodeFaultPlan`]).
    #[serde(default)]
    pub messages_lost_to_crash: u64,
    /// Delivered messages whose payload was garbled by a corruptor node
    /// (these still count as delivered; corruption is a payload fault,
    /// not a transport fault).
    #[serde(default)]
    pub messages_corrupted: u64,
    /// Extra send attempts made by the reliable-delivery layer
    /// (see [`crate::ReliableConfig`]). Each retransmission also counts
    /// as a normal send in [`messages_sent`](Self::messages_sent).
    #[serde(default)]
    pub messages_retransmitted: u64,
    /// Fail-stop crash events executed so far.
    #[serde(default)]
    pub node_crashes: u64,
    /// Restart events (crashed node rejoining with wiped state).
    #[serde(default)]
    pub node_restarts: u64,
}

impl Metrics {
    /// Mean messages sent per executed round (`0.0` before the first round).
    pub fn messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages_sent as f64 / self.rounds as f64
        }
    }

    /// Every counter as a `(name, value)` row, in declaration order.
    ///
    /// This is the single enumeration of the struct's fields: the
    /// telemetry exporter dumps these rows into its counter registry,
    /// [`conserves`](Self::conserves) evaluates its identity over them,
    /// and tests reconcile protocol-level accounting against them —
    /// instead of each site plumbing fields by hand (and silently going
    /// stale when a counter is added).
    pub fn as_rows(&self) -> impl Iterator<Item = (&'static str, u64)> {
        [
            ("rounds", self.rounds),
            ("messages_sent", self.messages_sent),
            ("messages_delivered", self.messages_delivered),
            ("messages_dropped", self.messages_dropped),
            ("messages_duplicated", self.messages_duplicated),
            ("messages_delayed", self.messages_delayed),
            ("payload_bytes_sent", self.payload_bytes_sent),
            ("peak_in_flight", self.peak_in_flight),
            ("messages_lost_to_crash", self.messages_lost_to_crash),
            ("messages_corrupted", self.messages_corrupted),
            ("messages_retransmitted", self.messages_retransmitted),
            ("node_crashes", self.node_crashes),
            ("node_restarts", self.node_restarts),
        ]
        .into_iter()
    }

    /// Sum of the named rows from [`as_rows`](Self::as_rows).
    fn row_total(&self, names: &[&str]) -> u64 {
        let mut total = 0u64;
        for (name, value) in self.as_rows() {
            if names.contains(&name) {
                total += value;
            }
        }
        total
    }

    /// The fault pipeline's conservation identity: every copy the network
    /// ever accepted (sends plus duplication copies) is accounted for
    /// exactly once —
    /// `sent + duplicated ==
    ///  delivered + dropped + in_flight + delayed + lost_to_crash`,
    /// where `in_flight`/`delayed` are the *currently pending* counts from
    /// [`crate::Network::in_flight`] and [`crate::Network::delayed`]. This
    /// holds at every round boundary, fault-injected or not; the
    /// workspace-root failure-injection proptests assert it. Corrupted
    /// messages are delivered (garbled), so they need no extra term;
    /// retransmissions enter through `messages_sent` like any other send.
    pub fn conserves(&self, in_flight: usize, delayed: usize) -> bool {
        let accepted = self.row_total(&["messages_sent", "messages_duplicated"]);
        let accounted = self.row_total(&[
            "messages_delivered",
            "messages_dropped",
            "messages_lost_to_crash",
        ]);
        accepted == accounted + in_flight as u64 + delayed as u64
    }
}

/// Per-node cumulative traffic counters.
///
/// The paper's headline comparison (“our greedy approach … requires only
/// one information exchange per network node”) is a *per-node* statement;
/// these counters let tests and experiments verify it node by node rather
/// than only in aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeTraffic {
    /// Messages this node handed to the network.
    pub sent: u64,
    /// Messages delivered to this node.
    pub received: u64,
    /// Rounds in which this node sent at least one message.
    pub active_send_rounds: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let m = Metrics::default();
        assert_eq!(m.rounds, 0);
        assert_eq!(m.messages_sent, 0);
        assert_eq!(m.messages_per_round(), 0.0);
    }

    #[test]
    fn messages_per_round_divides() {
        let m = Metrics {
            rounds: 4,
            messages_sent: 10,
            ..Metrics::default()
        };
        assert_eq!(m.messages_per_round(), 2.5);
    }

    #[test]
    fn rows_cover_every_counter_in_declaration_order() {
        let mut m = Metrics::default();
        // Give every field a distinct value so a swapped or missing row
        // cannot cancel out.
        for (i, slot) in [
            &mut m.rounds,
            &mut m.messages_sent,
            &mut m.messages_delivered,
            &mut m.messages_dropped,
            &mut m.messages_duplicated,
            &mut m.messages_delayed,
            &mut m.payload_bytes_sent,
            &mut m.peak_in_flight,
            &mut m.messages_lost_to_crash,
            &mut m.messages_corrupted,
            &mut m.messages_retransmitted,
            &mut m.node_crashes,
            &mut m.node_restarts,
        ]
        .into_iter()
        .enumerate()
        {
            *slot = i as u64 + 1;
        }
        let rows: Vec<(&str, u64)> = m.as_rows().collect();
        assert_eq!(rows.len(), 13, "as_rows must enumerate every field");
        assert_eq!(rows[0], ("rounds", 1));
        assert_eq!(rows[1], ("messages_sent", 2));
        assert_eq!(rows[12], ("node_restarts", 13));
        let values: Vec<u64> = rows.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, (1..=13).collect::<Vec<u64>>());
    }

    #[test]
    fn conservation_accounts_for_crash_losses() {
        let m = Metrics {
            messages_sent: 10,
            messages_duplicated: 2,
            messages_delivered: 6,
            messages_dropped: 1,
            messages_lost_to_crash: 3,
            ..Metrics::default()
        };
        assert!(m.conserves(1, 1));
        assert!(!m.conserves(2, 1));
    }
}
