//! Doubling aggregation schedules on the id line.
//!
//! The deterministic gossip protocols in this workspace are built from
//! rounds of *doubling* message patterns over node ids `0..n`: at step `s`
//! a node talks to the peer `2^s` positions away. This module captures
//! these patterns as one reusable schedule object so the bounds, count and
//! tie phases of the top-`k` selection (and any future aggregation
//! protocol) share a single, tested wiring:
//!
//! * **Prefix scan** — node `i` sends its accumulator to `i + 2^s`; after
//!   `⌈log₂ n⌉` steps node `i` holds the aggregate of ids `0..=i`. Used by
//!   the tie-break phase, whose per-node *rank* is inherently a prefix.
//! * **All-reduce** — a hypercube/butterfly exchange (`i ↔ i ⊕ 2^s`) over
//!   the largest power-of-two core, with one fold-in and one fold-out round
//!   for the remainder ids. Every node ends with the *total* aggregate in
//!   `log₂ n + O(1)` rounds — half the latency of the classic scan followed
//!   by a top-down broadcast, which is why the bounds and count phases of
//!   the adaptive top-`k` selection use it.
//!
//! Both patterns assume an *order-insensitive, exact* merge operation
//! (`u64` sums, `f64` min/max), so any arrival order produces bit-identical
//! aggregates.

/// Send action of one node at one step of an all-reduce phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllReduceSend {
    /// Send the accumulator to the destination and reset the accumulator to
    /// the merge identity (the destination now owns this node's mass; the
    /// total comes back in the fold-out round).
    FoldIn(usize),
    /// Exchange: send the accumulator to the butterfly partner and keep it.
    Exchange(usize),
    /// Send the (now complete) total to a remainder node.
    FoldOut(usize),
}

/// The doubling schedule for an id line of `n` nodes.
///
/// # Examples
///
/// ```
/// use npd_netsim::schedule::IdLine;
///
/// let line = IdLine::new(6);
/// assert_eq!(line.scan_rounds(), 4);      // ⌈log₂ 6⌉ + 1
/// assert_eq!(line.allreduce_rounds(), 5); // fold-in, 2 exchanges, fold-out, final merge
/// assert_eq!(line.scan_target(1, 0), Some(2));
/// assert_eq!(line.scan_target(5, 0), None); // falls off the line
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdLine {
    n: usize,
    /// Largest power of two `≤ n` (the butterfly core).
    core: usize,
    /// `log₂ core`.
    butterfly_steps: u32,
    /// `⌈log₂ n⌉`.
    scan_steps: u32,
}

impl IdLine {
    /// Creates the schedule for `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "IdLine: n must be positive");
        let scan_steps = if n <= 1 {
            0
        } else {
            usize::BITS - (n - 1).leading_zeros()
        };
        let core = if n.is_power_of_two() {
            n
        } else {
            1 << (usize::BITS - 1 - n.leading_zeros())
        };
        Self {
            n,
            core,
            butterfly_steps: core.trailing_zeros(),
            scan_steps,
        }
    }

    /// Number of nodes on the line.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rounds of a prefix-scan phase: `⌈log₂ n⌉` send steps plus the final
    /// merge-only step.
    pub fn scan_rounds(&self) -> u64 {
        self.scan_steps as u64 + 1
    }

    /// The destination of node `id`'s scan send at `step`, if any.
    pub fn scan_target(&self, id: usize, step: u64) -> Option<usize> {
        if step >= self.scan_steps as u64 {
            return None;
        }
        let dst = id + (1usize << step);
        (dst < self.n).then_some(dst)
    }

    /// Rounds of an all-reduce phase. Power-of-two lines run a pure
    /// butterfly (`log₂ n` exchanges + final merge); other lines add a
    /// fold-in round before and a fold-out round after.
    pub fn allreduce_rounds(&self) -> u64 {
        if self.n == self.core {
            self.butterfly_steps as u64 + 1
        } else {
            self.butterfly_steps as u64 + 3
        }
    }

    /// The send action of node `id` at `step` of an all-reduce phase, if
    /// any. Steps at or beyond [`allreduce_rounds`](Self::allreduce_rounds)
    /// `- 1` are merge-only for every node.
    pub fn allreduce_send(&self, id: usize, step: u64) -> Option<AllReduceSend> {
        if self.n == self.core {
            if step < self.butterfly_steps as u64 {
                return Some(AllReduceSend::Exchange(id ^ (1usize << step)));
            }
            return None;
        }
        // Folded line: remainder ids park their mass on the core first.
        if step == 0 {
            return (id >= self.core).then(|| AllReduceSend::FoldIn(id - self.core));
        }
        let bfly = self.butterfly_steps as u64;
        if step <= bfly {
            if id < self.core {
                return Some(AllReduceSend::Exchange(id ^ (1usize << (step - 1))));
            }
            return None;
        }
        if step == bfly + 1 && id < self.core && id + self.core < self.n {
            return Some(AllReduceSend::FoldOut(id + self.core));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulates one all-reduce phase of `u64` sums with synchronous
    /// message delivery and returns every node's final accumulator.
    fn simulate_allreduce_sum(values: &[u64]) -> Vec<u64> {
        let n = values.len();
        let line = IdLine::new(n);
        let mut acc = values.to_vec();
        let mut in_flight: Vec<(usize, u64)> = Vec::new();
        for step in 0..line.allreduce_rounds() {
            // Deliver last round's sends.
            for (dst, v) in std::mem::take(&mut in_flight) {
                acc[dst] += v;
            }
            for (id, a) in acc.iter_mut().enumerate() {
                match line.allreduce_send(id, step) {
                    Some(AllReduceSend::FoldIn(dst)) => {
                        in_flight.push((dst, *a));
                        *a = 0; // reset to the merge identity
                    }
                    Some(AllReduceSend::Exchange(dst)) | Some(AllReduceSend::FoldOut(dst)) => {
                        in_flight.push((dst, *a));
                    }
                    None => {}
                }
            }
        }
        for (dst, v) in in_flight {
            acc[dst] += v;
        }
        acc
    }

    /// Simulates one prefix-scan phase of `u64` sums.
    fn simulate_scan_sum(values: &[u64]) -> Vec<u64> {
        let n = values.len();
        let line = IdLine::new(n);
        let mut acc = values.to_vec();
        let mut in_flight: Vec<(usize, u64)> = Vec::new();
        for step in 0..line.scan_rounds() {
            for (dst, v) in std::mem::take(&mut in_flight) {
                acc[dst] += v;
            }
            for (id, &a) in acc.iter().enumerate() {
                if let Some(dst) = line.scan_target(id, step) {
                    in_flight.push((dst, a));
                }
            }
        }
        for (dst, v) in in_flight {
            acc[dst] += v;
        }
        acc
    }

    #[test]
    fn allreduce_totals_every_node_every_size() {
        for n in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 33, 100] {
            let values: Vec<u64> = (0..n as u64).map(|i| i * i + 1).collect();
            let total: u64 = values.iter().sum();
            let acc = simulate_allreduce_sum(&values);
            for (id, &a) in acc.iter().enumerate() {
                assert_eq!(a, total, "n={n} id={id}");
            }
        }
    }

    #[test]
    fn scan_gives_inclusive_prefixes() {
        for n in [1usize, 2, 3, 5, 8, 13, 16, 33] {
            let values: Vec<u64> = (0..n as u64).map(|i| i + 1).collect();
            let acc = simulate_scan_sum(&values);
            let mut prefix = 0;
            for (id, &a) in acc.iter().enumerate() {
                prefix += values[id];
                assert_eq!(a, prefix, "n={n} id={id}");
            }
        }
    }

    #[test]
    fn allreduce_rounds_are_logarithmic() {
        assert_eq!(IdLine::new(1).allreduce_rounds(), 1);
        assert_eq!(IdLine::new(2).allreduce_rounds(), 2);
        assert_eq!(IdLine::new(4).allreduce_rounds(), 3);
        assert_eq!(IdLine::new(4096).allreduce_rounds(), 13);
        assert_eq!(IdLine::new(3).allreduce_rounds(), 4);
        assert_eq!(IdLine::new(4097).allreduce_rounds(), 15);
        // Versus 2·(⌈log₂ n⌉ + 1) for scan + broadcast.
        assert!(IdLine::new(4096).allreduce_rounds() < 2 * IdLine::new(4096).scan_rounds());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_line_is_rejected() {
        IdLine::new(0);
    }
}
