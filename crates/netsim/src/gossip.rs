//! Gossip and aggregation protocols: push-sum averaging and a fully
//! decentralized top-`k` selection.
//!
//! Algorithm 1 step II has the agents sort themselves through a sorting
//! network, which needs `Θ(log² n)` rounds of pairwise compare-exchanges in
//! a fixed wiring. This module provides the two standard alternatives a
//! deployment could swap in:
//!
//! * [`PushSumNode`] — the classic randomized push-sum protocol
//!   (Kempe–Dobra–Gehrke 2003) for averaging; `O(log n)` rounds to
//!   `ε`-accuracy, fully topology-free.
//! * [`TopKNode`] — an *exact, deterministic* decentralized selection of
//!   the `k` highest-scoring agents, built from two primitives on the id
//!   line: a doubling **prefix scan** (node `i` aggregates everything in
//!   `[0, i]` in `⌈log₂ n⌉` rounds) and a doubling **broadcast** from the
//!   last node. A global bisection over the score threshold — one
//!   scan+broadcast per probe — shrinks the candidate interval until only
//!   exact ties remain, which a final prefix scan breaks toward smaller
//!   ids, matching the tie rule of the workspace's rank-`k` decoders.
//!
//! Both protocols run on the plain [`Network`] engine and
//! are exercised end-to-end (greedy scores in, reconstruction bits out) in
//! the workspace integration tests.

use crate::{recommended_shards, Activity, Context, Metrics, Network, Node, NodeId, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `⌈log₂ n⌉` (0 for `n ≤ 1`): the number of doubling steps that cover the
/// id line.
fn doubling_steps(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

// ---------------------------------------------------------------------------
// Push-sum averaging
// ---------------------------------------------------------------------------

/// Message of the push-sum protocol: a (value-mass, weight-mass) share.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PushSumMsg {
    /// Value mass.
    pub s: f64,
    /// Weight mass.
    pub w: f64,
}

/// One participant of the push-sum averaging protocol.
///
/// Every round the node keeps half of its `(s, w)` mass and pushes the
/// other half to a uniformly random peer; `s/w` converges to the global
/// average geometrically. Mass is conserved exactly, so the average of all
/// estimates is correct at every round — only the spread shrinks.
#[derive(Debug, Clone)]
pub struct PushSumNode {
    s: f64,
    w: f64,
    rounds_left: usize,
    rng: SmallRng,
}

impl PushSumNode {
    /// Creates a node holding `value`, gossiping for `rounds` rounds.
    ///
    /// The per-node RNG is seeded from `(seed, id)` so whole-network runs
    /// are reproducible.
    pub fn new(value: f64, rounds: usize, seed: u64, id: usize) -> Self {
        Self {
            s: value,
            w: 1.0,
            rounds_left: rounds,
            rng: SmallRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Current estimate `s/w` of the global average.
    pub fn estimate(&self) -> f64 {
        self.s / self.w
    }
}

impl Node<PushSumMsg> for PushSumNode {
    fn on_round(&mut self, ctx: &mut Context<'_, PushSumMsg>) -> Activity {
        for env in ctx.inbox() {
            self.s += env.payload.s;
            self.w += env.payload.w;
        }
        if self.rounds_left == 0 {
            return Activity::Idle;
        }
        self.rounds_left -= 1;
        // Canonical push-sum targets: self plus the topology neighbors,
        // uniformly. On the complete topology this is the uniform draw over
        // all n nodes of Kempe–Dobra–Gehrke.
        let d = ctx.degree();
        let draw = self.rng.gen_range(0..=d);
        let peer = if draw == d {
            ctx.id()
        } else {
            ctx.neighbor(draw)
        };
        self.s /= 2.0;
        self.w /= 2.0;
        let share = PushSumMsg {
            s: self.s,
            w: self.w,
        };
        if peer == ctx.id() {
            // Self-push: the canonical protocol still halves and sends the
            // share to itself; deliver it locally (net no-op on mass, no
            // network traffic). Skipping the halving instead — as this node
            // once did — diverges from the canonical convergence schedule.
            self.s += share.s;
            self.w += share.w;
        } else {
            ctx.send(peer, share);
        }
        Activity::Active
    }
}

/// Runs push-sum over `values` for `rounds` gossip rounds on the complete
/// topology and returns the per-node estimates of the global average.
///
/// Shards the network across the rayon pool; the result is bit-identical
/// at any shard or thread count.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn push_sum_average(values: &[f64], rounds: usize, seed: u64) -> Vec<f64> {
    push_sum_average_on(Topology::complete(values.len()), values, rounds, seed)
}

/// Runs push-sum on an arbitrary [`Topology`]: each round a node pushes
/// half of its mass to a uniform member of `{self} ∪ neighbors`.
///
/// On connected topologies the estimates converge to the global average;
/// sparse overlays (ring, grid, small world) trade per-round fan-out for
/// more rounds, which is exactly the scenario comparison the experiments
/// harness reports.
///
/// # Panics
///
/// Panics if `values` is empty or its length differs from `topology.n()`.
pub fn push_sum_average_on(
    topology: Topology,
    values: &[f64],
    rounds: usize,
    seed: u64,
) -> Vec<f64> {
    push_sum_report_on(topology, values, rounds, seed).estimates
}

/// Report of [`push_sum_report_on`]: the per-node estimates plus the full
/// communication metrics of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct PushSumReport {
    /// Per-node estimates of the global average, indexed by node id.
    pub estimates: Vec<f64>,
    /// Communication metrics of the whole run.
    pub metrics: Metrics,
}

/// [`push_sum_average_on`] with the run's [`Metrics`] attached — the
/// variant the experiments harness prices overlay scenarios with.
///
/// # Panics
///
/// Panics if `values` is empty or its length differs from `topology.n()`.
pub fn push_sum_report_on(
    topology: Topology,
    values: &[f64],
    rounds: usize,
    seed: u64,
) -> PushSumReport {
    assert!(!values.is_empty(), "push_sum_average: no values");
    let nodes: Vec<PushSumNode> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| PushSumNode::new(v, rounds, seed, i))
        .collect();
    let mut net = Network::new(nodes)
        .with_topology(topology)
        .with_shards(recommended_shards(values.len()));
    net.run_until_quiescent_parallel(rounds as u64 + 2)
        .expect("push-sum quiesces after its round budget by construction");
    PushSumReport {
        estimates: net.nodes().iter().map(PushSumNode::estimate).collect(),
        metrics: *net.metrics(),
    }
}

// ---------------------------------------------------------------------------
// Deterministic exact top-k selection
// ---------------------------------------------------------------------------

/// Message of the top-`k` selection protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopKMsg {
    /// Prefix/broadcast payload of the bounds phase.
    Bounds {
        /// Running minimum.
        min: f64,
        /// Running maximum.
        max: f64,
    },
    /// Prefix/broadcast payload of a bisection counting phase.
    Count {
        /// Number of scores strictly above the probe threshold.
        value: u64,
    },
    /// Prefix payload of the tie-breaking phase.
    Tie {
        /// Number of boundary scores at ids `≤` sender.
        value: u64,
    },
}

/// Outcome of a finished [`TopKNode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKDecision {
    /// Whether this agent is among the `k` selected.
    pub selected: bool,
    /// The round at which the node finalized its decision.
    pub decided_round: u64,
}

/// Phase-local aggregation state.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PhaseState {
    /// Scan accumulator for (min, max).
    BoundsScan { min: f64, max: f64 },
    /// Broadcast holder flag for (min, max).
    BoundsBcast { value: Option<(f64, f64)> },
    /// Scan accumulator for the count above the probe.
    CountScan { value: u64 },
    /// Broadcast holder flag for the count.
    CountBcast { value: Option<u64> },
    /// Scan accumulator for the boundary prefix rank.
    TieScan { value: u64 },
    /// All phases finished.
    Done,
}

/// One participant of the deterministic top-`k` selection.
///
/// All nodes follow a fixed global timetable of uniform phases of
/// `⌈log₂ n⌉ + 1` rounds each: one (min, max) scan, one broadcast, then
/// `bisection_iters` pairs of count-scan/count-broadcast, and one final
/// tie-break scan. Every node derives the phase from the shared round
/// counter, so no coordinator is needed anywhere.
///
/// # Exactness
///
/// The bisection shrinks the threshold interval until it either isolates
/// the `k`-th score or can no longer shrink in `f64` (adjacent
/// representable numbers). Scores that remain inside the final interval
/// are *ties at working precision*; the closing prefix scan selects the
/// lowest-id ties, which is exactly the tie rule of
/// `Estimate::from_scores`. Distinct scores therefore select exactly when
/// they differ by at least one representable `f64` step.
#[derive(Debug, Clone)]
pub struct TopKNode {
    score: f64,
    k: u64,
    steps: u32,
    iters: u32,
    lo: f64,
    hi: f64,
    /// `#{score > hi}` as of the latest interval update.
    count_above_hi: u64,
    probe: f64,
    state: PhaseState,
    decision: Option<TopKDecision>,
}

impl TopKNode {
    /// Creates a participant holding `score`, selecting `k` of `n` agents
    /// with `bisection_iters` probing iterations.
    ///
    /// # Panics
    ///
    /// Panics if `score` is not finite, `n == 0`, or `k > n`.
    pub fn new(score: f64, k: usize, n: usize, bisection_iters: u32) -> Self {
        assert!(score.is_finite(), "TopKNode: score must be finite");
        assert!(n > 0, "TopKNode: n must be positive");
        assert!(k <= n, "TopKNode: k={k} exceeds n={n}");
        Self {
            score,
            k: k as u64,
            steps: doubling_steps(n),
            iters: bisection_iters,
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            count_above_hi: 0,
            probe: 0.0,
            state: PhaseState::BoundsScan {
                min: score,
                max: score,
            },
            decision: None,
        }
    }

    /// The node's decision once the protocol has finished.
    pub fn decision(&self) -> Option<TopKDecision> {
        self.decision
    }

    /// Rounds the whole protocol takes for `n` nodes and `bisection_iters`
    /// iterations (every phase has uniform length `⌈log₂ n⌉ + 1`).
    pub fn total_rounds(n: usize, bisection_iters: u32) -> u64 {
        let phase = doubling_steps(n) as u64 + 1;
        (3 + 2 * bisection_iters as u64) * phase
    }

    fn phase_len(&self) -> u64 {
        self.steps as u64 + 1
    }

    /// Whether `self.score` lies in the boundary interval `(lo, hi]`.
    fn in_boundary(&self) -> bool {
        self.score > self.lo && self.score <= self.hi
    }

    /// Transition into the phase with the given index. The last node seeds
    /// each broadcast phase with the aggregate its prefix scan produced.
    fn enter_phase(&mut self, phase: u64, is_last_node: bool) {
        self.state = if phase == 0 {
            PhaseState::BoundsScan {
                min: self.score,
                max: self.score,
            }
        } else if phase == 1 {
            let seed = match self.state {
                PhaseState::BoundsScan { min, max } if is_last_node => Some((min, max)),
                _ => None,
            };
            PhaseState::BoundsBcast { value: seed }
        } else if phase < 2 + 2 * self.iters as u64 {
            let idx = phase - 2;
            if idx.is_multiple_of(2) {
                // Compute the probe for this bisection iteration; all nodes
                // hold identical (lo, hi) so the probe is identical too.
                let mid = midpoint(self.lo, self.hi);
                self.probe = mid;
                let above = u64::from(self.score > mid);
                PhaseState::CountScan { value: above }
            } else {
                let seed = match self.state {
                    PhaseState::CountScan { value } if is_last_node => Some(value),
                    _ => None,
                };
                PhaseState::CountBcast { value: seed }
            }
        } else if phase == 2 + 2 * self.iters as u64 {
            PhaseState::TieScan {
                value: u64::from(self.in_boundary()),
            }
        } else {
            PhaseState::Done
        };
    }

    /// Deterministic interval update shared by every node after a count
    /// broadcast.
    fn apply_count(&mut self, count: u64) {
        let mid = self.probe;
        if !(mid > self.lo && mid < self.hi) {
            return; // interval exhausted at f64 precision
        }
        if count >= self.k {
            self.lo = mid;
        } else {
            self.hi = mid;
            self.count_above_hi = count;
        }
    }
}

/// Midpoint that tolerates infinite endpoints (the first probes).
fn midpoint(lo: f64, hi: f64) -> f64 {
    if lo == f64::NEG_INFINITY && hi == f64::INFINITY {
        0.0
    } else if lo == f64::NEG_INFINITY {
        if hi > 0.0 {
            0.0
        } else {
            2.0 * hi - 1.0
        }
    } else if hi == f64::INFINITY {
        if lo < 0.0 {
            0.0
        } else {
            2.0 * lo + 1.0
        }
    } else {
        lo + (hi - lo) / 2.0
    }
}

impl Node<TopKMsg> for TopKNode {
    fn on_round(&mut self, ctx: &mut Context<'_, TopKMsg>) -> Activity {
        let phase_len = self.phase_len();
        let phase = ctx.round() / phase_len;
        let step = ctx.round() % phase_len;
        if step == 0 {
            let is_last_node = ctx.id().0 + 1 == ctx.node_count();
            self.enter_phase(phase, is_last_node);
        }

        // Merge arrivals (sent at the previous step of this phase).
        for env in ctx.inbox() {
            match (&mut self.state, env.payload) {
                (PhaseState::BoundsScan { min, max }, TopKMsg::Bounds { min: m, max: x }) => {
                    *min = min.min(m);
                    *max = max.max(x);
                }
                (PhaseState::BoundsBcast { value }, TopKMsg::Bounds { min, max }) => {
                    *value = Some((min, max));
                }
                (PhaseState::CountScan { value }, TopKMsg::Count { value: v }) => {
                    *value += v;
                }
                (PhaseState::CountBcast { value }, TopKMsg::Count { value: v }) => {
                    *value = Some(v);
                }
                (PhaseState::TieScan { value }, TopKMsg::Tie { value: v }) => {
                    *value += v;
                }
                (state, msg) => {
                    unreachable!("top-k: message {msg:?} arrived in state {state:?}")
                }
            }
        }

        let id = ctx.id().0;
        let n = ctx.node_count();

        // Emit this step's sends.
        match self.state {
            PhaseState::BoundsScan { min, max } if step < self.steps as u64 => {
                let offset = 1usize << step;
                if id + offset < n {
                    ctx.send(NodeId(id + offset), TopKMsg::Bounds { min, max });
                }
            }
            PhaseState::BoundsBcast { value } => {
                if step < self.steps as u64 {
                    if let Some((min, max)) = value {
                        let offset = 1usize << (self.steps as u64 - 1 - step);
                        if id >= offset {
                            ctx.send(NodeId(id - offset), TopKMsg::Bounds { min, max });
                        }
                    }
                }
                if step + 1 == phase_len {
                    let (min, max) =
                        value.expect("doubling broadcast reaches every node by its last step");
                    // Initialize the bisection interval: c(min−1) = n ≥ k
                    // and c(max) = 0 < k hold by construction.
                    self.lo = min - 1.0;
                    self.hi = max;
                    self.count_above_hi = 0;
                }
            }
            PhaseState::CountScan { value } if step < self.steps as u64 => {
                let offset = 1usize << step;
                if id + offset < n {
                    ctx.send(NodeId(id + offset), TopKMsg::Count { value });
                }
            }
            PhaseState::CountBcast { value } => {
                if step < self.steps as u64 {
                    if let Some(v) = value {
                        let offset = 1usize << (self.steps as u64 - 1 - step);
                        if id >= offset {
                            ctx.send(NodeId(id - offset), TopKMsg::Count { value: v });
                        }
                    }
                }
                if step + 1 == phase_len {
                    let v = value.expect("doubling broadcast reaches every node by its last step");
                    self.apply_count(v);
                }
            }
            PhaseState::TieScan { value } => {
                if step < self.steps as u64 {
                    let offset = 1usize << step;
                    if id + offset < n {
                        ctx.send(NodeId(id + offset), TopKMsg::Tie { value });
                    }
                } else {
                    // Scan complete: `value` is this node's boundary prefix
                    // rank (self included). Decide.
                    let selected = self.score > self.hi
                        || (self.in_boundary() && self.count_above_hi + value <= self.k);
                    self.decision = Some(TopKDecision {
                        selected,
                        decided_round: ctx.round(),
                    });
                    self.state = PhaseState::Done;
                }
            }
            _ => {}
        }

        if matches!(self.state, PhaseState::Done) {
            Activity::Idle
        } else {
            Activity::Active
        }
    }
}

/// Report of [`select_top_k`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopKReport {
    /// Selection bit per node id.
    pub selected: Vec<bool>,
    /// Rounds the network ran.
    pub rounds: u64,
    /// Messages sent in total.
    pub messages: u64,
}

/// Default bisection iterations: enough to exhaust an `f64` interval.
pub const DEFAULT_BISECTION_ITERS: u32 = 90;

/// Runs the decentralized selection of the `k` largest `scores`.
///
/// Ties at the working precision break toward smaller node ids, matching
/// the rank-`k` decoders of `npd-core`.
///
/// # Panics
///
/// Panics if `scores` is empty, a score is not finite, or `k >
/// scores.len()`.
pub fn select_top_k(scores: &[f64], k: usize, bisection_iters: u32) -> TopKReport {
    assert!(!scores.is_empty(), "select_top_k: no scores");
    let n = scores.len();
    let nodes: Vec<TopKNode> = scores
        .iter()
        .map(|&s| TopKNode::new(s, k, n, bisection_iters))
        .collect();
    let mut net = Network::new(nodes).with_shards(recommended_shards(n));
    let budget = TopKNode::total_rounds(n, bisection_iters) + 2;
    net.run_until_quiescent_parallel(budget)
        .expect("top-k selection quiesces within its fixed timetable");
    let rounds = net.metrics().rounds;
    let messages = net.metrics().messages_sent;
    let selected = net
        .into_nodes()
        .into_iter()
        .map(|node| {
            node.decision()
                .expect("every node decides by the end of the timetable")
                .selected
        })
        .collect();
    TopKReport {
        selected,
        rounds,
        messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npd_numerics::vector::top_k_indices;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn doubling_steps_values() {
        assert_eq!(doubling_steps(1), 0);
        assert_eq!(doubling_steps(2), 1);
        assert_eq!(doubling_steps(3), 2);
        assert_eq!(doubling_steps(4), 2);
        assert_eq!(doubling_steps(5), 3);
        assert_eq!(doubling_steps(1024), 10);
        assert_eq!(doubling_steps(1025), 11);
    }

    #[test]
    fn push_sum_converges_to_average() {
        let mut rng = StdRng::seed_from_u64(1);
        let values: Vec<f64> = (0..64).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let avg = values.iter().sum::<f64>() / values.len() as f64;
        let estimates = push_sum_average(&values, 80, 7);
        for (i, &e) in estimates.iter().enumerate() {
            assert!((e - avg).abs() < 1e-6, "node {i}: {e} vs {avg}");
        }
    }

    #[test]
    fn push_sum_single_node_is_identity() {
        let estimates = push_sum_average(&[3.25], 10, 1);
        assert_eq!(estimates, vec![3.25]);
    }

    #[test]
    fn push_sum_conserves_mass() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let nodes: Vec<PushSumNode> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| PushSumNode::new(v, 15, 3, i))
            .collect();
        let mut net = Network::new(nodes);
        for _ in 0..5 {
            net.step();
        }
        // In-flight mass plus node mass is always the initial total.
        let node_mass: f64 = net.nodes().iter().map(|n| n.s).sum();
        assert!(net.in_flight() > 0, "mass should be in motion mid-run");
        // Cannot inspect in-flight payloads directly; run to quiescence and
        // re-check totals instead.
        net.run_until_quiescent(30).unwrap();
        let total: f64 = net.nodes().iter().map(|n| n.s).sum();
        let weights: f64 = net.nodes().iter().map(|n| n.w).sum();
        assert!(
            (total - 10.0).abs() < 1e-12,
            "mass drifted: {node_mass} → {total}"
        );
        assert!((weights - 4.0).abs() < 1e-12);
    }

    fn check_selection(scores: &[f64], k: usize) {
        let report = select_top_k(scores, k, DEFAULT_BISECTION_ITERS);
        let expected = top_k_indices(scores, k);
        let mut expected_bits = vec![false; scores.len()];
        for i in expected {
            expected_bits[i] = true;
        }
        assert_eq!(
            report.selected, expected_bits,
            "selection mismatch for k={k}, scores={scores:?}"
        );
    }

    #[test]
    fn selects_top_k_on_random_scores() {
        let mut rng = StdRng::seed_from_u64(5);
        for &n in &[1usize, 2, 3, 7, 16, 33, 100] {
            let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
            for &k in &[0usize, 1, n / 2, n] {
                check_selection(&scores, k.min(n));
            }
        }
    }

    #[test]
    fn breaks_ties_toward_smaller_ids() {
        let scores = [5.0, 3.0, 5.0, 5.0, 1.0];
        // k = 2 must pick ids 0 and 2 (the two smallest-id fives).
        check_selection(&scores, 2);
        // k = 3: all three fives.
        check_selection(&scores, 3);
        // k = 4: fives plus the 3.0.
        check_selection(&scores, 4);
    }

    #[test]
    fn distinguishes_tiny_gaps() {
        let scores = [1.0, 1.0 + 1e-12, 1.0 - 1e-12, 0.0];
        check_selection(&scores, 1);
        check_selection(&scores, 2);
    }

    #[test]
    fn all_equal_scores_select_prefix() {
        let scores = [2.0; 9];
        let report = select_top_k(&scores, 4, DEFAULT_BISECTION_ITERS);
        let expected: Vec<bool> = (0..9).map(|i| i < 4).collect();
        assert_eq!(report.selected, expected);
    }

    #[test]
    fn round_budget_matches_timetable() {
        let scores: Vec<f64> = (0..33).map(|i| i as f64).collect();
        let report = select_top_k(&scores, 5, 20);
        assert!(report.rounds <= TopKNode::total_rounds(33, 20) + 2);
        assert!(report.messages > 0);
    }

    #[test]
    fn negative_scores_are_handled() {
        let scores = [-5.0, -1.0, -3.0, -4.0, -2.0];
        check_selection(&scores, 2);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_k_above_n() {
        TopKNode::new(1.0, 5, 4, 10);
    }

    #[test]
    fn push_sum_tolerates_bounded_delay() {
        // Push-sum reacts to arrivals, not to a timetable, so bounded
        // message delay only slows mixing: mass stays conserved and the
        // estimates still converge. (Contrast with the fixed-timetable
        // top-k selection, which requires the synchronous model.)
        use crate::FaultConfig;
        let values = [1.0, 5.0, -3.0, 9.0, 2.0, -6.0, 4.0, 0.0];
        let avg = values.iter().sum::<f64>() / values.len() as f64;
        let nodes: Vec<PushSumNode> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| PushSumNode::new(v, 100, 11, i))
            .collect();
        let faults = FaultConfig::new(0.0, 0.0, 23).unwrap().with_max_delay(2);
        let mut net = Network::with_faults(nodes, faults);
        net.run_until_quiescent(200).unwrap();
        assert!(net.metrics().messages_delayed > 0);
        let total_mass: f64 = net.nodes().iter().map(|n| n.s).sum();
        assert!((total_mass - values.iter().sum::<f64>()).abs() < 1e-9);
        for (i, node) in net.nodes().iter().enumerate() {
            assert!(
                (node.estimate() - avg).abs() < 1e-3,
                "node {i}: {} vs {avg}",
                node.estimate()
            );
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// The decentralized selection agrees with the sequential
            /// top-k rule (including its smaller-id tie break) on
            /// arbitrary score vectors.
            #[test]
            fn selection_matches_sequential_rule(
                scores in proptest::collection::vec(-100.0f64..100.0, 1..40),
                k_frac in 0.0f64..=1.0,
            ) {
                let n = scores.len();
                let k = ((n as f64) * k_frac).round() as usize;
                let k = k.min(n);
                let report = select_top_k(&scores, k, DEFAULT_BISECTION_ITERS);
                let mut expected = vec![false; n];
                for i in top_k_indices(&scores, k) {
                    expected[i] = true;
                }
                prop_assert_eq!(report.selected, expected);
            }

            /// Push-sum conserves total mass for any value vector and
            /// round budget.
            #[test]
            fn push_sum_mass_conservation(
                values in proptest::collection::vec(-50.0f64..50.0, 1..30),
                rounds in 0usize..25,
                seed in 0u64..1000,
            ) {
                let estimates = push_sum_average(&values, rounds, seed);
                prop_assert_eq!(estimates.len(), values.len());
                for e in estimates {
                    prop_assert!(e.is_finite());
                }
            }
        }
    }
}
