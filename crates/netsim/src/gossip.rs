//! Gossip and aggregation protocols: push-sum averaging and a fully
//! decentralized top-`k` selection.
//!
//! Algorithm 1 step II has the agents sort themselves through a sorting
//! network, which needs `Θ(log² n)` rounds of pairwise compare-exchanges in
//! a fixed wiring. This module provides the two standard alternatives a
//! deployment could swap in:
//!
//! * [`PushSumNode`] — the classic randomized push-sum protocol
//!   (Kempe–Dobra–Gehrke 2003) for averaging; `O(log n)` rounds to
//!   `ε`-accuracy, fully topology-free.
//! * [`TopKNode`] — an *exact, deterministic* decentralized selection of
//!   the `k` highest-scoring agents, built from the doubling aggregation
//!   schedules of [`crate::schedule`]: butterfly **all-reduce** phases
//!   compute global aggregates (score bounds, counts above a probe
//!   threshold) in `log₂ n + O(1)` rounds each, and a final doubling
//!   **prefix scan** breaks exact ties toward smaller ids, matching the
//!   tie rule of the workspace's rank-`k` decoders. The bisection over the
//!   score threshold terminates *adaptively*: every node sees the same
//!   aggregate, so all nodes detect in lock-step when a probe isolates the
//!   `k`-th score (done — no tie scan needed) or when the interval is
//!   exhausted at `f64` precision (jump to the tie scan). There is no
//!   fixed iteration timetable to burn through.
//!
//! Both protocols run on the plain [`Network`] engine and
//! are exercised end-to-end (greedy scores in, reconstruction bits out) in
//! the workspace integration tests. The selection core is also embeddable
//! in a larger protocol ([`TopKCore`]); `npd-core`'s distributed decoder
//! runs it as its phase II when the `GossipThreshold` strategy is chosen.

use crate::schedule::{AllReduceSend, IdLine};
use crate::{
    recommended_shards, Activity, Context, FaultConfig, Metrics, Network, Node, NodeId, Topology,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Push-sum averaging
// ---------------------------------------------------------------------------

/// Message of the push-sum protocol: a (value-mass, weight-mass) share.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PushSumMsg {
    /// Value mass.
    pub s: f64,
    /// Weight mass.
    pub w: f64,
}

/// One participant of the push-sum averaging protocol.
///
/// Every round the node keeps half of its `(s, w)` mass and pushes the
/// other half to a uniformly random peer; `s/w` converges to the global
/// average geometrically. Mass is conserved exactly, so the average of all
/// estimates is correct at every round — only the spread shrinks.
#[derive(Debug, Clone)]
pub struct PushSumNode {
    s: f64,
    w: f64,
    rounds_left: usize,
    rng: SmallRng,
    /// Construction inputs, kept so a fail-stop restart
    /// ([`Node::on_restart`]) can rebuild the node from scratch.
    init: (f64, usize, u64, usize),
}

impl PushSumNode {
    /// Creates a node holding `value`, gossiping for `rounds` rounds.
    ///
    /// The per-node RNG is seeded from `(seed, id)` so whole-network runs
    /// are reproducible.
    pub fn new(value: f64, rounds: usize, seed: u64, id: usize) -> Self {
        Self {
            s: value,
            w: 1.0,
            rounds_left: rounds,
            rng: SmallRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            init: (value, rounds, seed, id),
        }
    }

    /// Current estimate `s/w` of the global average.
    pub fn estimate(&self) -> f64 {
        self.s / self.w
    }
}

impl Node<PushSumMsg> for PushSumNode {
    fn on_round(&mut self, ctx: &mut Context<'_, PushSumMsg>) -> Activity {
        for env in ctx.inbox() {
            self.s += env.payload.s;
            self.w += env.payload.w;
        }
        if self.rounds_left == 0 {
            return Activity::Idle;
        }
        self.rounds_left -= 1;
        // Canonical push-sum targets: self plus the topology neighbors,
        // uniformly. On the complete topology this is the uniform draw over
        // all n nodes of Kempe–Dobra–Gehrke.
        let d = ctx.degree();
        let draw = self.rng.gen_range(0..=d);
        let peer = if draw == d {
            ctx.id()
        } else {
            ctx.neighbor(draw)
        };
        self.s /= 2.0;
        self.w /= 2.0;
        let share = PushSumMsg {
            s: self.s,
            w: self.w,
        };
        if peer == ctx.id() {
            // Self-push: the canonical protocol still halves and sends the
            // share to itself; deliver it locally (net no-op on mass, no
            // network traffic). Skipping the halving instead — as this node
            // once did — diverges from the canonical convergence schedule.
            self.s += share.s;
            self.w += share.w;
        } else {
            ctx.send(peer, share);
        }
        Activity::Active
    }

    fn on_restart(&mut self, _round: u64) {
        // Fail-stop semantics: the restarted node remembers nothing of the
        // run. It rejoins holding its *initial* value and unit weight —
        // mass it had accumulated (or pushed into flight) before the crash
        // is gone, which is exactly the degradation a crash inflicts on
        // real push-sum deployments.
        let (value, rounds, seed, id) = self.init;
        *self = Self::new(value, rounds, seed, id);
    }
}

/// Runs push-sum over `values` for `rounds` gossip rounds on the complete
/// topology and returns the per-node estimates of the global average.
///
/// Shards the network across the rayon pool; the result is bit-identical
/// at any shard or thread count.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn push_sum_average(values: &[f64], rounds: usize, seed: u64) -> Vec<f64> {
    push_sum_average_on(Topology::complete(values.len()), values, rounds, seed)
}

/// Runs push-sum on an arbitrary [`Topology`]: each round a node pushes
/// half of its mass to a uniform member of `{self} ∪ neighbors`.
///
/// On connected topologies the estimates converge to the global average;
/// sparse overlays (ring, grid, small world) trade per-round fan-out for
/// more rounds, which is exactly the scenario comparison the experiments
/// harness reports.
///
/// # Panics
///
/// Panics if `values` is empty or its length differs from `topology.n()`.
pub fn push_sum_average_on(
    topology: Topology,
    values: &[f64],
    rounds: usize,
    seed: u64,
) -> Vec<f64> {
    push_sum_report_on(topology, values, rounds, seed).estimates
}

/// Report of [`push_sum_report_on`]: the per-node estimates plus the full
/// communication metrics of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct PushSumReport {
    /// Per-node estimates of the global average, indexed by node id.
    pub estimates: Vec<f64>,
    /// Communication metrics of the whole run.
    pub metrics: Metrics,
}

/// [`push_sum_average_on`] with the run's [`Metrics`] attached — the
/// variant the experiments harness prices overlay scenarios with.
///
/// # Panics
///
/// Panics if `values` is empty or its length differs from `topology.n()`.
pub fn push_sum_report_on(
    topology: Topology,
    values: &[f64],
    rounds: usize,
    seed: u64,
) -> PushSumReport {
    assert!(!values.is_empty(), "push_sum_average: no values");
    let nodes: Vec<PushSumNode> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| PushSumNode::new(v, rounds, seed, i))
        .collect();
    let mut net = Network::new(nodes)
        .with_topology(topology)
        .with_shards(recommended_shards(values.len()));
    // Invariant: every node goes idle once `rounds_left` hits zero and the
    // engine delivers all in-flight mass within one extra round, so the
    // `rounds + 2` budget always suffices on a fault-free network.
    #[allow(clippy::expect_used)]
    net.run_until_quiescent_parallel(rounds as u64 + 2)
        // xtask:allow(unwrap-audit): the idle-once-done node design makes the budget sufficient by construction (see invariant above)
        .expect("push-sum quiesces after its round budget by construction");
    PushSumReport {
        estimates: net.nodes().iter().map(PushSumNode::estimate).collect(),
        metrics: *net.metrics(),
    }
}

// ---------------------------------------------------------------------------
// Deterministic exact top-k selection
// ---------------------------------------------------------------------------

/// Message of the top-`k` selection protocol. Every variant carries the
/// sender's phase index: arrivals from any other phase (delayed or
/// duplicated copies straggling across a phase boundary) are counted and
/// ignored rather than corrupting the current aggregate — see
/// [`TopKReport::stale_messages`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopKMsg {
    /// All-reduce payload of the bounds phase.
    Bounds {
        /// Sender's phase index.
        phase: u32,
        /// Running minimum.
        min: f64,
        /// Running maximum.
        max: f64,
    },
    /// All-reduce payload of a bisection counting phase.
    Count {
        /// Sender's phase index.
        phase: u32,
        /// Number of scores strictly above the probe threshold.
        value: u64,
    },
    /// Prefix payload of the tie-breaking phase.
    Tie {
        /// Sender's phase index.
        phase: u32,
        /// Number of boundary scores at ids `≤` sender.
        value: u64,
    },
}

impl TopKMsg {
    /// The phase tag the message was sent in.
    fn phase(&self) -> u32 {
        match *self {
            TopKMsg::Bounds { phase, .. }
            | TopKMsg::Count { phase, .. }
            | TopKMsg::Tie { phase, .. } => phase,
        }
    }
}

/// Outcome of a finished [`TopKNode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKDecision {
    /// Whether this agent is among the `k` selected.
    pub selected: bool,
    /// The round at which the node finalized its decision.
    pub decided_round: u64,
}

/// Default cap on bisection probes. Any weak probe is followed by a
/// key-halving one (see `midpoint`), so the bisection is provably
/// exhausted after ~130 probes for any finite scores; at this default the
/// cap is never reached and only bounds the round budget and
/// fault-degraded stragglers. Chaos scenarios can tighten it per run via
/// [`TopKCore::with_probe_limit`] to budget probes (and therefore rounds)
/// explicitly — a tighter cap trades selection exactness on adversarial
/// score ranges for a smaller worst-case round budget.
pub const PROBE_LIMIT: u32 = 160;

/// The phase a [`TopKCore`] is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhaseKind {
    /// All-reduce of the global (min, max) score bounds.
    Bounds,
    /// All-reduce of the count of scores above the current probe.
    Count,
    /// Prefix scan of boundary ranks for the tie break.
    Tie,
    /// Decided.
    Done,
}

/// The embeddable state machine of one top-`k` selection participant.
///
/// [`TopKNode`] wraps this for standalone runs on a [`Network`]; the
/// distributed decoder in `npd-core` embeds it directly in its protocol
/// agents (translating its messages into the protocol's message enum), so
/// phase II of Algorithm 1 can run on the *same* network as the
/// measurement phase without ever materializing a sorting network.
///
/// # Protocol
///
/// All nodes advance a shared phase schedule in lock-step, one call to
/// [`step`](Self::step) per synchronous round:
///
/// 1. **Bounds** — one all-reduce; every node learns (min, max).
/// 2. **Count** — one all-reduce per bisection probe: count the scores
///    strictly above the probe `midpoint(lo, hi)`. Because every node sees
///    the same count, all nodes take identical transitions: if the count
///    equals `k` the protocol is *done* (selected ⇔ score > probe); if the
///    interval can no longer shrink in `f64`, all nodes jump to the tie
///    scan; otherwise the next probe starts. Termination is adaptive —
///    there is no fixed iteration count.
/// 3. **Tie** — one prefix scan of boundary membership; node `i` learns
///    its rank among the boundary scores at ids `≤ i` and selects itself
///    iff `count_above_hi + rank ≤ k`.
///
/// # Exactness
///
/// On a fault-free network the result is bit-identical to the sequential
/// rank-`k` rule (`Estimate::from_scores`) for *any* finite scores: a
/// count of exactly `k` proves the probe separates the `k` largest scores
/// from the rest, and interval exhaustion (adjacent `f64` endpoints)
/// proves every remaining boundary score is *equal* to `hi`, so the
/// lowest-id prefix rule is exactly the sequential tie break. Probes cut at
/// least a quarter of the interval's *ordered bit patterns* each (see
/// `midpoint`), so exhaustion is bounded regardless of the scores'
/// dynamic range.
///
/// # Fault degradation
///
/// Messages carry their phase index; arrivals from another phase (delayed
/// or duplicated copies) are counted as stale and ignored. Dropped
/// messages leave aggregates partial, which degrades *accuracy* but never
/// progress: every phase ends after its fixed number of rounds, every
/// probe strictly shrinks the node's local interval, and every node
/// reaches a decision within [`TopKNode::max_rounds`] rounds.
#[derive(Debug, Clone)]
pub struct TopKCore {
    score: f64,
    k: u64,
    line: IdLine,
    phase: PhaseKind,
    /// Index of the current phase (the message tag).
    phase_idx: u32,
    /// Step within the current phase.
    step: u64,
    /// Rounds executed so far.
    rounds: u64,
    lo: f64,
    hi: f64,
    /// `#{score > hi}` as of the latest interval update.
    count_above_hi: u64,
    probe: f64,
    probes: u32,
    /// Cap on bisection probes ([`PROBE_LIMIT`] unless overridden).
    probe_limit: u32,
    /// Global minimum after the bounds phase (drives the all-ties
    /// shortcut).
    global_min: f64,
    /// Aggregation accumulators (min/max for bounds, sum for count/tie).
    acc_min: f64,
    acc_max: f64,
    acc_sum: u64,
    /// Whether any in-phase arrival was merged during the current phase
    /// (drives the isolation cut-off under faults).
    merged_in_phase: bool,
    /// Whether the last probe cut less than a quarter of the key interval
    /// (forces the next probe onto the key midpoint; see `midpoint`).
    weak_probe: bool,
    stale: u64,
    isolated: bool,
    decision: Option<TopKDecision>,
}

impl TopKCore {
    /// Creates a participant holding `score`, selecting `k` of `n` agents.
    ///
    /// `k = 0` and `k = n` decide immediately (nothing to select / select
    /// everyone) without any communication.
    ///
    /// # Panics
    ///
    /// Panics if `score` is not finite, `n == 0`, or `k > n`.
    pub fn new(score: f64, k: usize, n: usize) -> Self {
        assert!(score.is_finite(), "TopKCore: score must be finite");
        assert!(n > 0, "TopKCore: n must be positive");
        assert!(k <= n, "TopKCore: k={k} exceeds n={n}");
        let trivial = k == 0 || k == n;
        Self {
            score,
            k: k as u64,
            line: IdLine::new(n),
            phase: if trivial {
                PhaseKind::Done
            } else {
                PhaseKind::Bounds
            },
            phase_idx: 0,
            step: 0,
            rounds: 0,
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            count_above_hi: 0,
            probe: 0.0,
            probes: 0,
            probe_limit: PROBE_LIMIT,
            global_min: f64::NAN,
            acc_min: score,
            acc_max: score,
            acc_sum: 0,
            merged_in_phase: false,
            weak_probe: false,
            stale: 0,
            isolated: false,
            decision: trivial.then_some(TopKDecision {
                selected: k == n,
                decided_round: 0,
            }),
        }
    }

    /// Overrides the bisection probe cap (default [`PROBE_LIMIT`]).
    ///
    /// The cap is clamped to at least 1. Caps below the ~130-probe
    /// exhaustion bound can cut the bisection short on pathological score
    /// ranges (the tie scan then resolves a wider-than-minimal boundary),
    /// trading exactness for a smaller worst-case round budget — pair
    /// with [`TopKNode::max_rounds_with`] when budgeting runs.
    #[must_use]
    pub fn with_probe_limit(mut self, probe_limit: u32) -> Self {
        self.probe_limit = probe_limit.max(1);
        self
    }

    /// The probe cap this participant bisects under.
    pub fn probe_limit(&self) -> u32 {
        self.probe_limit
    }

    /// The node's decision once the protocol has finished.
    pub fn decision(&self) -> Option<TopKDecision> {
        self.decision
    }

    /// Bisection probes executed so far.
    pub fn probes(&self) -> u32 {
        self.probes
    }

    /// Out-of-phase arrivals counted and ignored so far.
    pub fn stale_messages(&self) -> u64 {
        self.stale
    }

    /// Whether this node decided early because an entire aggregation phase
    /// passed without a single in-phase arrival — it was cut off from the
    /// protocol by message loss and made a best-effort local decision
    /// instead of bisecting to exhaustion alone.
    pub fn is_isolated(&self) -> bool {
        self.isolated
    }

    /// Whether `self.score` lies in the boundary interval `(lo, hi]`.
    fn in_boundary(&self) -> bool {
        self.score > self.lo && self.score <= self.hi
    }

    fn phase_len(&self) -> u64 {
        match self.phase {
            PhaseKind::Bounds | PhaseKind::Count => self.line.allreduce_rounds(),
            PhaseKind::Tie => self.line.scan_rounds(),
            PhaseKind::Done => u64::MAX,
        }
    }

    /// Enters the next phase once the current one has run its rounds. The
    /// transition depends only on state every (fault-free) node shares, so
    /// all nodes switch in lock-step.
    fn advance_phase(&mut self) {
        self.phase_idx += 1;
        self.step = 0;
        self.merged_in_phase = false;
        match self.phase {
            PhaseKind::Bounds => {
                // Initialize the bisection interval just below/at the
                // actual score range: c(lo) = n ≥ k and c(max) = 0 < k
                // hold by construction.
                self.global_min = self.acc_min;
                self.lo = below(self.acc_min);
                self.hi = self.acc_max;
                self.count_above_hi = 0;
                self.weak_probe = false;
                if self.global_min == self.acc_max {
                    // Every score equal: the boundary is everyone, skip the
                    // bisection entirely.
                    self.enter_tie();
                } else {
                    self.enter_count();
                }
            }
            PhaseKind::Count => {
                let mid = midpoint(self.lo, self.hi, self.weak_probe);
                if self.probes >= self.probe_limit || !(mid > self.lo && mid < self.hi) {
                    // Interval exhausted at f64 precision: everything left
                    // in (lo, hi] is an exact tie at hi.
                    self.enter_tie();
                } else {
                    self.enter_count();
                }
            }
            PhaseKind::Tie | PhaseKind::Done => {
                self.phase = PhaseKind::Done;
            }
        }
    }

    fn enter_count(&mut self) {
        self.phase = PhaseKind::Count;
        self.probe = midpoint(self.lo, self.hi, self.weak_probe);
        self.acc_sum = u64::from(self.score > self.probe);
    }

    fn enter_tie(&mut self) {
        self.phase = PhaseKind::Tie;
        self.acc_sum = u64::from(self.in_boundary());
    }

    /// Merges one arrival into the current accumulator, or counts it as
    /// stale if it belongs to another phase (or phase kind).
    fn merge(&mut self, msg: TopKMsg) {
        if msg.phase() != self.phase_idx {
            self.stale += 1;
            return;
        }
        match (self.phase, msg) {
            (PhaseKind::Bounds, TopKMsg::Bounds { min, max, .. }) => {
                self.acc_min = self.acc_min.min(min);
                self.acc_max = self.acc_max.max(max);
                self.merged_in_phase = true;
            }
            (PhaseKind::Count, TopKMsg::Count { value, .. })
            | (PhaseKind::Tie, TopKMsg::Tie { value, .. }) => {
                self.acc_sum += value;
                self.merged_in_phase = true;
            }
            _ => self.stale += 1,
        }
    }

    /// The message carrying the current accumulator.
    fn payload(&self) -> TopKMsg {
        let phase = self.phase_idx;
        match self.phase {
            PhaseKind::Bounds => TopKMsg::Bounds {
                phase,
                min: self.acc_min,
                max: self.acc_max,
            },
            PhaseKind::Count => TopKMsg::Count {
                phase,
                value: self.acc_sum,
            },
            PhaseKind::Tie => TopKMsg::Tie {
                phase,
                value: self.acc_sum,
            },
            PhaseKind::Done => unreachable!("Done nodes never send"),
        }
    }

    /// Executes one synchronous round: merges `inbox`, emits this step's
    /// sends through `send(destination_id, message)`, and finalizes the
    /// phase on its last step. Returns `true` while the node still wants
    /// rounds (i.e. until its decision is made).
    ///
    /// `id` is the node's position on the id line `0..n`; the caller maps
    /// line ids to its own node-id space (the standalone wrapper uses the
    /// identity, the embedded protocol offsets by nothing since agents are
    /// ids `0..n` there too).
    pub fn step(
        &mut self,
        id: usize,
        inbox: impl IntoIterator<Item = TopKMsg>,
        mut send: impl FnMut(usize, TopKMsg),
    ) -> bool {
        if self.phase != PhaseKind::Done && self.step >= self.phase_len() {
            self.advance_phase();
        }
        for msg in inbox {
            if self.phase == PhaseKind::Done {
                self.stale += 1;
            } else {
                self.merge(msg);
            }
        }
        if self.phase == PhaseKind::Done {
            self.rounds += 1;
            return false;
        }

        // Emit this step's sends.
        match self.phase {
            PhaseKind::Bounds | PhaseKind::Count => {
                match self.line.allreduce_send(id, self.step) {
                    Some(AllReduceSend::FoldIn(dst)) => {
                        send(dst, self.payload());
                        // The destination now carries this node's mass; the
                        // total comes back in the fold-out round.
                        self.acc_min = f64::INFINITY;
                        self.acc_max = f64::NEG_INFINITY;
                        self.acc_sum = 0;
                    }
                    Some(AllReduceSend::Exchange(dst)) | Some(AllReduceSend::FoldOut(dst)) => {
                        send(dst, self.payload());
                    }
                    None => {}
                }
            }
            PhaseKind::Tie => {
                if let Some(dst) = self.line.scan_target(id, self.step) {
                    send(dst, self.payload());
                }
            }
            PhaseKind::Done => unreachable!("handled above"),
        }

        // Finalize on the phase's last step.
        if self.step + 1 == self.phase_len() {
            // Isolation cut-off: an aggregation phase (which delivers at
            // least one arrival to every node on a fault-free network of
            // n > 1) ended without a single in-phase arrival — this node
            // is cut off by message loss. Decide best-effort now instead
            // of bisecting a partial interval to exhaustion alone.
            if self.line.n() > 1
                && !self.merged_in_phase
                && matches!(self.phase, PhaseKind::Bounds | PhaseKind::Count)
            {
                self.isolated = true;
                self.decision = Some(TopKDecision {
                    selected: self.score > self.hi,
                    decided_round: self.rounds,
                });
                self.phase = PhaseKind::Done;
                self.rounds += 1;
                return false;
            }
            match self.phase {
                PhaseKind::Count => {
                    self.probes += 1;
                    if self.acc_sum == self.k {
                        // The probe separates the k largest scores exactly.
                        self.decision = Some(TopKDecision {
                            selected: self.score > self.probe,
                            decided_round: self.rounds,
                        });
                        self.phase = PhaseKind::Done;
                    } else {
                        let before = ord_key(self.hi) - ord_key(self.lo);
                        if self.acc_sum > self.k {
                            self.lo = self.probe;
                        } else {
                            self.hi = self.probe;
                            self.count_above_hi = self.acc_sum;
                        }
                        let after = ord_key(self.hi) - ord_key(self.lo);
                        // A probe that kept more than 3/4 of the key
                        // interval was weak; the next one halves it.
                        self.weak_probe = after > before - before / 4;
                    }
                }
                PhaseKind::Tie => {
                    // `acc_sum` is this node's boundary prefix rank (self
                    // included).
                    let selected = self.score > self.hi
                        || (self.in_boundary() && self.count_above_hi + self.acc_sum <= self.k);
                    self.decision = Some(TopKDecision {
                        selected,
                        decided_round: self.rounds,
                    });
                    self.phase = PhaseKind::Done;
                }
                PhaseKind::Bounds | PhaseKind::Done => {}
            }
        }
        self.step += 1;
        self.rounds += 1;
        self.phase != PhaseKind::Done
    }
}

/// One standalone participant of the deterministic top-`k` selection: a
/// [`TopKCore`] driven by the [`Network`] engine.
#[derive(Debug, Clone)]
pub struct TopKNode {
    core: TopKCore,
}

impl TopKNode {
    /// Creates a participant holding `score`, selecting `k` of `n` agents.
    ///
    /// # Panics
    ///
    /// Panics if `score` is not finite, `n == 0`, or `k > n`.
    pub fn new(score: f64, k: usize, n: usize) -> Self {
        Self {
            core: TopKCore::new(score, k, n),
        }
    }

    /// The node's decision once the protocol has finished.
    pub fn decision(&self) -> Option<TopKDecision> {
        self.core.decision()
    }

    /// Upper bound on the rounds any node needs to decide, for `n` nodes:
    /// the bounds phase, at most [`PROBE_LIMIT`] count phases, and the tie
    /// scan. The adaptive termination finishes far earlier on real data;
    /// this is the budget guard for
    /// [`Network::run_until_quiescent`](crate::Network::run_until_quiescent).
    pub fn max_rounds(n: usize) -> u64 {
        Self::max_rounds_with(n, PROBE_LIMIT)
    }

    /// [`max_rounds`](Self::max_rounds) under a custom probe cap
    /// ([`TopKCore::with_probe_limit`]): the budget shrinks linearly with
    /// the cap, which is what chaos scenarios tune when they trade probe
    /// exactness for a tighter round budget.
    pub fn max_rounds_with(n: usize, probe_limit: u32) -> u64 {
        let line = IdLine::new(n);
        (1 + u64::from(probe_limit.max(1))) * line.allreduce_rounds() + line.scan_rounds() + 2
    }
}

impl Node<TopKMsg> for TopKNode {
    fn on_round(&mut self, ctx: &mut Context<'_, TopKMsg>) -> Activity {
        let id = ctx.id().0;
        // A node emits at most one message per round, so buffering the
        // send keeps the round allocation-free.
        let mut out: Option<(usize, TopKMsg)> = None;
        let inbox = ctx.inbox().iter().map(|env| env.payload);
        let active = self.core.step(id, inbox, |dst, msg| out = Some((dst, msg)));
        if let Some((dst, msg)) = out {
            ctx.send(NodeId(dst), msg);
        }
        if active {
            Activity::Active
        } else {
            Activity::Idle
        }
    }
}

/// Monotone map from `f64` (finite or infinite, not NaN) to the `u64`
/// key line: `x < y  ⟺  ord_key(x) < ord_key(y)` (with `-0.0` keyed one
/// below `+0.0`). Bisecting in key space halves the number of
/// *representable* values in the interval each probe, so any interval is
/// exhausted after at most 64 probes — independent of the scores' dynamic
/// range. An arithmetic midpoint would shrink wide-range intervals like
/// `(2.0, 1e300]` by value, needing ~1000 probes to reach the boundary.
fn ord_key(x: f64) -> u64 {
    let b = x.to_bits();
    if b & 0x8000_0000_0000_0000 != 0 {
        !b
    } else {
        b | 0x8000_0000_0000_0000
    }
}

/// Inverse of [`ord_key`].
fn from_ord_key(k: u64) -> f64 {
    if k & 0x8000_0000_0000_0000 != 0 {
        f64::from_bits(k & 0x7FFF_FFFF_FFFF_FFFF)
    } else {
        f64::from_bits(!k)
    }
}

/// Bisection probe for `(lo, hi)`: the arithmetic midpoint by default (on
/// well-scaled scores, value bisection lands a probe between the `k`-th
/// and `(k+1)`-th order statistics fastest), or — when `prefer_key`
/// reports the previous probe was *weak* (cut less than a quarter of the
/// key interval) — the key-line midpoint, which unconditionally halves
/// the count of representable values. A weak probe is always followed by
/// a halving one, bounding the bisection at ~130 probes for any finite
/// scores — wide dynamic ranges
/// included. The probe is canonicalized so `-0.0` never becomes an
/// interval endpoint
/// (numeric comparisons treat the two zeros as equal, so a `-0.0`
/// endpoint would stall the strict-inequality progress check).
fn midpoint(lo: f64, hi: f64, prefer_key: bool) -> f64 {
    let mut probe = f64::NAN;
    if !prefer_key && lo.is_finite() && hi.is_finite() {
        // `hi - lo` may overflow to infinity; the strict-inside test
        // rejects the result and falls back to the key midpoint.
        let am = lo + (hi - lo) / 2.0;
        if am > lo && am < hi {
            probe = am;
        }
    }
    if probe.is_nan() {
        let a = ord_key(lo);
        let b = ord_key(hi);
        probe = from_ord_key(a + (b - a) / 2);
    }
    if probe.to_bits() == (-0.0f64).to_bits() {
        probe = 0.0;
    }
    probe
}

/// The key-line predecessor of `min`, skipping the `-0.0`/`+0.0` alias so
/// the result is *numerically* strictly below `min` — the initial `lo` of
/// the bisection (`count(>lo) = n >= k` holds by construction).
fn below(min: f64) -> f64 {
    let lo = from_ord_key(ord_key(min) - 1);
    if lo == 0.0 && min == 0.0 {
        from_ord_key(ord_key(min) - 2)
    } else {
        lo
    }
}

/// Report of [`select_top_k`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopKReport {
    /// Selection bit per node id.
    pub selected: Vec<bool>,
    /// Rounds the network ran.
    pub rounds: u64,
    /// Messages sent in total.
    pub messages: u64,
    /// Bisection probes the adaptive termination actually needed (maximum
    /// over nodes; identical at every node on fault-free networks).
    pub probes: u32,
    /// Out-of-phase arrivals counted and ignored (non-zero only under
    /// message delay or duplication faults).
    pub stale_messages: u64,
    /// Nodes that decided early after an aggregation phase delivered them
    /// nothing at all (cut off by message loss; zero on fault-free runs).
    pub isolated_nodes: usize,
}

/// Runs the decentralized selection of the `k` largest `scores`.
///
/// Ties at the working precision break toward smaller node ids, matching
/// the rank-`k` decoders of `npd-core`. The bisection terminates
/// adaptively (see [`TopKCore`]); there is no iteration count to tune.
///
/// # Panics
///
/// Panics if `scores` is empty, a score is not finite, or `k >
/// scores.len()`.
pub fn select_top_k(scores: &[f64], k: usize) -> TopKReport {
    let nodes = topk_nodes(scores, k);
    let net = Network::new(nodes).with_shards(recommended_shards(scores.len()));
    run_topk(net, scores.len(), 0)
}

/// [`select_top_k`] with message fault injection.
///
/// The protocol always terminates and every node always decides: phases
/// end after a fixed number of rounds whether or not their messages
/// arrived, stale arrivals are counted and ignored (never merged into the
/// wrong aggregate), and partial aggregates degrade accuracy, not
/// progress. With a zero-fault config the result equals
/// [`select_top_k`]'s.
///
/// # Panics
///
/// Panics if `scores` is empty, a score is not finite, or `k >
/// scores.len()`.
pub fn select_top_k_with_faults(scores: &[f64], k: usize, faults: FaultConfig) -> TopKReport {
    let nodes = topk_nodes(scores, k);
    let max_delay = faults.max_delay();
    let net = Network::with_faults(nodes, faults).with_shards(recommended_shards(scores.len()));
    run_topk(net, scores.len(), max_delay)
}

fn topk_nodes(scores: &[f64], k: usize) -> Vec<TopKNode> {
    assert!(!scores.is_empty(), "select_top_k: no scores");
    let n = scores.len();
    scores.iter().map(|&s| TopKNode::new(s, k, n)).collect()
}

fn run_topk(mut net: Network<TopKMsg, TopKNode>, n: usize, max_delay: u64) -> TopKReport {
    // The budget covers the probe-limit bound plus the fault model's
    // maximum delivery delay (a delayed final message stretches the run).
    let budget = TopKNode::max_rounds(n) + max_delay + 2;
    // Invariant: every phase ends after a fixed number of rounds whether
    // or not messages arrive, so the probe-limit budget (plus the fault
    // model's maximum delay) bounds the run unconditionally.
    #[allow(clippy::expect_used)]
    net.run_until_quiescent_parallel(budget)
        // xtask:allow(unwrap-audit): fixed-length phases bound the run unconditionally (see invariant above)
        .expect("every node decides within the probe-limit budget");
    let rounds = net.metrics().rounds;
    let messages = net.metrics().messages_sent;
    let mut probes = 0u32;
    let mut stale = 0u64;
    let mut isolated = 0usize;
    let selected = net
        .into_nodes()
        .into_iter()
        .map(|node| {
            probes = probes.max(node.core.probes());
            stale += node.core.stale_messages();
            isolated += usize::from(node.core.is_isolated());
            // Invariant: a run that quiesced within the budget left every
            // node in `PhaseKind::Done`, which always carries a decision.
            #[allow(clippy::expect_used)]
            node.decision()
                // xtask:allow(unwrap-audit): quiescence within budget leaves every node in Done, which carries a decision
                .expect("adaptive phases always reach a decision")
                .selected
        })
        .collect();
    TopKReport {
        selected,
        rounds,
        messages,
        probes,
        stale_messages: stale,
        isolated_nodes: isolated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npd_numerics::vector::top_k_indices;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn push_sum_converges_to_average() {
        let mut rng = StdRng::seed_from_u64(1);
        let values: Vec<f64> = (0..64).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let avg = values.iter().sum::<f64>() / values.len() as f64;
        let estimates = push_sum_average(&values, 80, 7);
        for (i, &e) in estimates.iter().enumerate() {
            assert!((e - avg).abs() < 1e-6, "node {i}: {e} vs {avg}");
        }
    }

    #[test]
    fn push_sum_single_node_is_identity() {
        let estimates = push_sum_average(&[3.25], 10, 1);
        assert_eq!(estimates, vec![3.25]);
    }

    #[test]
    fn push_sum_conserves_mass() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let nodes: Vec<PushSumNode> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| PushSumNode::new(v, 15, 3, i))
            .collect();
        let mut net = Network::new(nodes);
        for _ in 0..5 {
            net.step();
        }
        // In-flight mass plus node mass is always the initial total.
        let node_mass: f64 = net.nodes().iter().map(|n| n.s).sum();
        assert!(net.in_flight() > 0, "mass should be in motion mid-run");
        // Cannot inspect in-flight payloads directly; run to quiescence and
        // re-check totals instead.
        net.run_until_quiescent(30).unwrap();
        let total: f64 = net.nodes().iter().map(|n| n.s).sum();
        let weights: f64 = net.nodes().iter().map(|n| n.w).sum();
        assert!(
            (total - 10.0).abs() < 1e-12,
            "mass drifted: {node_mass} → {total}"
        );
        assert!((weights - 4.0).abs() < 1e-12);
    }

    fn check_selection(scores: &[f64], k: usize) {
        let report = select_top_k(scores, k);
        let expected = top_k_indices(scores, k);
        let mut expected_bits = vec![false; scores.len()];
        for i in expected {
            expected_bits[i] = true;
        }
        assert_eq!(
            report.selected, expected_bits,
            "selection mismatch for k={k}, scores={scores:?}"
        );
    }

    #[test]
    fn selects_top_k_on_random_scores() {
        let mut rng = StdRng::seed_from_u64(5);
        for &n in &[1usize, 2, 3, 7, 16, 33, 100] {
            let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
            for &k in &[0usize, 1, n / 2, n] {
                check_selection(&scores, k.min(n));
            }
        }
    }

    #[test]
    fn breaks_ties_toward_smaller_ids() {
        let scores = [5.0, 3.0, 5.0, 5.0, 1.0];
        // k = 2 must pick ids 0 and 2 (the two smallest-id fives).
        check_selection(&scores, 2);
        // k = 3: all three fives.
        check_selection(&scores, 3);
        // k = 4: fives plus the 3.0.
        check_selection(&scores, 4);
    }

    #[test]
    fn distinguishes_tiny_gaps() {
        let scores = [1.0, 1.0 + 1e-12, 1.0 - 1e-12, 0.0];
        check_selection(&scores, 1);
        check_selection(&scores, 2);
    }

    /// Regression: the bisection walks ordered bit patterns, so scores
    /// spanning the full f64 dynamic range are separated exactly. The
    /// former arithmetic midpoint shrank the interval by *value* and hit
    /// the probe cap with (1.0, 2.0) still unseparated inside (lo, hi],
    /// mis-selecting id 0 by the tie rule.
    #[test]
    fn wide_dynamic_range_is_exact() {
        check_selection(&[1.0, 2.0, 1e300], 2);
        check_selection(&[-1e300, 1e-300, 2e-300, 1e300], 2);
        check_selection(&[5e-324, 0.0, -5e-324], 1);
        check_selection(&[-0.0, 0.0, 1.0], 2);
        let report = select_top_k(&[1.0, 2.0, 1e300], 2);
        assert!(
            report.probes < PROBE_LIMIT,
            "hybrid bisection must exhaust well under the cap, took {}",
            report.probes
        );
    }

    #[test]
    fn ord_key_roundtrips_and_orders() {
        let samples = [
            f64::NEG_INFINITY,
            -1e300,
            -1.0,
            -5e-324,
            -0.0,
            0.0,
            5e-324,
            1.0,
            1e300,
            f64::INFINITY,
        ];
        for w in samples.windows(2) {
            assert!(ord_key(w[0]) < ord_key(w[1]), "{} vs {}", w[0], w[1]);
        }
        for &x in &samples {
            assert_eq!(from_ord_key(ord_key(x)).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn all_equal_scores_select_prefix() {
        let scores = [2.0; 9];
        let report = select_top_k(&scores, 4);
        let expected: Vec<bool> = (0..9).map(|i| i < 4).collect();
        assert_eq!(report.selected, expected);
        // All-ties shortcut: the bounds phase detects min == max and jumps
        // straight to the tie scan without a single bisection probe.
        assert_eq!(report.probes, 0);
    }

    #[test]
    fn adaptive_termination_beats_the_fixed_timetable() {
        // The pre-adaptive protocol ran a fixed timetable of 90 probe
        // iterations — (3 + 2·90) uniform phases of ⌈log₂ n⌉ + 1 rounds —
        // regardless of the data. Well-separated scores must now finish in
        // a handful of probes and a small fraction of those rounds.
        let scores: Vec<f64> = (0..33).map(|i| i as f64).collect();
        let report = select_top_k(&scores, 5);
        let old_timetable = (3 + 2 * 90) * (33f64.log2().ceil() as u64 + 1);
        assert!(
            report.rounds * 4 < old_timetable,
            "adaptive run took {} rounds vs fixed timetable {old_timetable}",
            report.rounds
        );
        assert!(report.probes > 0 && report.probes < 90, "{}", report.probes);
        assert!(report.rounds <= TopKNode::max_rounds(33));
        assert!(report.messages > 0);
        assert_eq!(report.stale_messages, 0);
    }

    #[test]
    fn trivial_k_decides_without_communication() {
        let scores = [3.0, 1.0, 2.0];
        let none = select_top_k(&scores, 0);
        assert_eq!(none.selected, vec![false; 3]);
        assert_eq!(none.messages, 0);
        let all = select_top_k(&scores, 3);
        assert_eq!(all.selected, vec![true; 3]);
        assert_eq!(all.messages, 0);
    }

    #[test]
    fn negative_scores_are_handled() {
        let scores = [-5.0, -1.0, -3.0, -4.0, -2.0];
        check_selection(&scores, 2);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_k_above_n() {
        TopKNode::new(1.0, 5, 4);
    }

    /// The probe cap is a real knob: a tighter cap shrinks the round
    /// budget, every node still decides within it, and on well-separated
    /// scores (which need only a handful of probes) the selection stays
    /// exact.
    #[test]
    fn probe_limit_knob_bounds_rounds() {
        let scores: Vec<f64> = (0..16).map(|i| ((i * 11) % 16) as f64).collect();
        let n = scores.len();
        let cap = 24u32;
        assert!(TopKNode::max_rounds_with(n, cap) < TopKNode::max_rounds(n));
        let nodes: Vec<TopKNode> = scores
            .iter()
            .map(|&s| TopKNode {
                core: TopKCore::new(s, 5, n).with_probe_limit(cap),
            })
            .collect();
        let mut net = Network::new(nodes);
        net.run_until_quiescent(TopKNode::max_rounds_with(n, cap))
            .unwrap();
        let expected = top_k_indices(&scores, 5);
        for (i, node) in net.nodes().iter().enumerate() {
            let decision = node.decision().expect("node must decide under the cap");
            assert_eq!(decision.selected, expected.contains(&i), "node {i}");
            assert_eq!(node.core.probe_limit(), cap);
        }
    }

    /// Fail-stop restart rebuilds a push-sum node from its construction
    /// inputs: accumulated mass, consumed rounds, and RNG position are all
    /// forgotten.
    #[test]
    fn push_sum_restart_wipes_to_initial_state() {
        let mut node = PushSumNode::new(4.0, 10, 3, 2);
        node.s = 99.0;
        node.w = 7.0;
        node.rounds_left = 1;
        node.on_restart(5);
        assert_eq!(node.s, 4.0);
        assert_eq!(node.w, 1.0);
        assert_eq!(node.rounds_left, 10);
    }

    /// Regression for the out-of-phase panic: the old merge hit
    /// `unreachable!` on any arrival that did not match the node's current
    /// phase state, so delay or duplication faults crashed the selection.
    /// Stale arrivals must now be counted and ignored, every node must
    /// still decide, and the run must stay within the round budget.
    #[test]
    fn delay_and_duplication_faults_do_not_panic() {
        let scores: Vec<f64> = (0..24).map(|i| ((i * 37) % 24) as f64).collect();
        let mut saw_stale = false;
        for seed in 0..6 {
            let faults = FaultConfig::new(0.0, 0.3, seed).unwrap().with_max_delay(2);
            let report = select_top_k_with_faults(&scores, 6, faults);
            assert_eq!(report.selected.len(), 24, "seed={seed}");
            saw_stale |= report.stale_messages > 0;
        }
        assert!(saw_stale, "no run produced a stale (out-of-phase) arrival");
    }

    /// With a zero-fault config the faulted entry point is bit-identical
    /// to the fault-free one.
    #[test]
    fn zero_fault_config_matches_fault_free() {
        let scores: Vec<f64> = (0..19).map(|i| ((i * 7) % 13) as f64).collect();
        let clean = select_top_k(&scores, 5);
        let faulted = select_top_k_with_faults(&scores, 5, FaultConfig::new(0.0, 0.0, 1).unwrap());
        assert_eq!(clean, faulted);
    }

    #[test]
    fn push_sum_tolerates_bounded_delay() {
        // Push-sum reacts to arrivals, not to a timetable, so bounded
        // message delay only slows mixing: mass stays conserved and the
        // estimates still converge. (Contrast with the fixed-timetable
        // top-k selection, which requires the synchronous model.)
        use crate::FaultConfig;
        let values = [1.0, 5.0, -3.0, 9.0, 2.0, -6.0, 4.0, 0.0];
        let avg = values.iter().sum::<f64>() / values.len() as f64;
        let nodes: Vec<PushSumNode> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| PushSumNode::new(v, 100, 11, i))
            .collect();
        let faults = FaultConfig::new(0.0, 0.0, 23).unwrap().with_max_delay(2);
        let mut net = Network::with_faults(nodes, faults);
        net.run_until_quiescent(200).unwrap();
        assert!(net.metrics().messages_delayed > 0);
        let total_mass: f64 = net.nodes().iter().map(|n| n.s).sum();
        assert!((total_mass - values.iter().sum::<f64>()).abs() < 1e-9);
        for (i, node) in net.nodes().iter().enumerate() {
            assert!(
                (node.estimate() - avg).abs() < 1e-3,
                "node {i}: {} vs {avg}",
                node.estimate()
            );
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// The decentralized selection agrees with the sequential
            /// top-k rule (including its smaller-id tie break) on
            /// arbitrary score vectors.
            #[test]
            fn selection_matches_sequential_rule(
                scores in proptest::collection::vec(-100.0f64..100.0, 1..40),
                k_frac in 0.0f64..=1.0,
            ) {
                let n = scores.len();
                let k = ((n as f64) * k_frac).round() as usize;
                let k = k.min(n);
                let report = select_top_k(&scores, k);
                let mut expected = vec![false; n];
                for i in top_k_indices(&scores, k) {
                    expected[i] = true;
                }
                prop_assert_eq!(report.selected, expected);
            }

            /// Failure injection: under arbitrary drop/duplication/delay
            /// faults the selection never panics, always terminates, and
            /// every node still reaches a decision (accuracy may degrade;
            /// progress may not). Regression for the `unreachable!` the
            /// old merge-arrivals match hit on out-of-phase messages.
            #[test]
            fn faulted_selection_terminates_with_all_decisions(
                scores in proptest::collection::vec(-50.0f64..50.0, 1..32),
                k_frac in 0.0f64..=1.0,
                drop_p in 0.0f64..0.5,
                dup_p in 0.0f64..0.5,
                max_delay in 0u64..4,
                seed in 0u64..1_000,
            ) {
                let n = scores.len();
                let k = (((n as f64) * k_frac).round() as usize).min(n);
                let faults = FaultConfig::new(drop_p, dup_p, seed)
                    .unwrap()
                    .with_max_delay(max_delay);
                let report = select_top_k_with_faults(&scores, k, faults);
                prop_assert_eq!(report.selected.len(), n);
                prop_assert!(report.rounds <= TopKNode::max_rounds(n) + 64);
            }

            /// Push-sum conserves total mass for any value vector and
            /// round budget.
            #[test]
            fn push_sum_mass_conservation(
                values in proptest::collection::vec(-50.0f64..50.0, 1..30),
                rounds in 0usize..25,
                seed in 0u64..1000,
            ) {
                let estimates = push_sum_average(&values, rounds, seed);
                prop_assert_eq!(estimates.len(), values.len());
                for e in estimates {
                    prop_assert!(e.is_finite());
                }
            }
        }
    }
}
