//! Deterministic synchronous message-passing network simulator.
//!
//! The paper's Algorithm 1 is a *distributed* protocol: query nodes send
//! their (noisy) measurements to agents, agents accumulate scores, and the
//! agents then sort themselves through a sorting network. This crate is the
//! substrate that protocol runs on:
//!
//! * [`Node`] — the behaviour of one network participant. Each round a node
//!   sees the messages delivered to it and may send messages through its
//!   [`Context`].
//! * [`Network`] — a collection of nodes plus in-flight mailboxes, advanced
//!   round by round with classic synchronous semantics: everything sent in
//!   round `r` is delivered at the start of round `r + 1`.
//! * [`Metrics`] — message/round accounting, which backs the communication
//!   comparison between the greedy protocol (one exchange per node) and
//!   AMP (one exchange per node *per iteration*) in the paper's conclusion.
//! * [`FaultConfig`] — optional message dropping/duplication for failure
//!   injection tests.
//!
//! The simulator is fully deterministic: nodes are stepped in id order,
//! messages are delivered in (sender, send-order), and fault decisions come
//! from a seeded RNG.
//!
//! # Examples
//!
//! A two-node ping-pong:
//!
//! ```
//! use npd_netsim::{Activity, Context, Network, Node, NodeId};
//!
//! struct PingPong { hits: u32 }
//!
//! impl Node<u32> for PingPong {
//!     fn on_round(&mut self, ctx: &mut Context<'_, u32>) -> Activity {
//!         if ctx.round() == 0 && ctx.id() == NodeId(0) {
//!             ctx.send(NodeId(1), 1);
//!         }
//!         let inbox: Vec<u32> = ctx.inbox().iter().map(|e| e.payload).collect();
//!         for v in inbox {
//!             self.hits += 1;
//!             if v < 4 {
//!                 let peer = NodeId(1 - ctx.id().0);
//!                 ctx.send(peer, v + 1);
//!             }
//!         }
//!         Activity::Idle
//!     }
//! }
//!
//! let mut net = Network::new(vec![PingPong { hits: 0 }, PingPong { hits: 0 }]);
//! let report = net.run_until_quiescent(100).unwrap();
//! assert_eq!(report.rounds, 5);
//! assert_eq!(net.metrics().messages_sent, 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod faults;
pub mod gossip;
mod metrics;
mod network;

pub use faults::FaultConfig;
pub use metrics::{Metrics, NodeTraffic};
pub use network::{Network, RunReport, StepReport};

use std::fmt;

/// Identifier of a node inside one [`Network`]; indexes the node vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// A message in flight, tagged with its sender and recipient.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Message payload.
    pub payload: M,
}

/// Whether a node wants to be stepped again even without incoming messages.
///
/// The network is quiescent — and [`Network::run_until_quiescent`] stops —
/// when no messages are in flight *and* every node reported [`Activity::Idle`]
/// in the latest round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// Node has nothing more to do unless a message arrives.
    Idle,
    /// Node wants another round regardless of message arrivals.
    Active,
}

/// Per-round view handed to [`Node::on_round`]: the inbox, the clock, the
/// node's own id, and the send interface.
#[derive(Debug)]
pub struct Context<'a, M> {
    round: u64,
    id: NodeId,
    node_count: usize,
    inbox: &'a [Envelope<M>],
    outbox: &'a mut Vec<Envelope<M>>,
}

impl<'a, M> Context<'a, M> {
    pub(crate) fn new(
        round: u64,
        id: NodeId,
        node_count: usize,
        inbox: &'a [Envelope<M>],
        outbox: &'a mut Vec<Envelope<M>>,
    ) -> Self {
        Self {
            round,
            id,
            node_count,
            inbox,
            outbox,
        }
    }

    /// Current round number (starting at 0).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The id of the node being stepped.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Messages delivered to this node at the start of the round.
    pub fn inbox(&self) -> &[Envelope<M>] {
        self.inbox
    }

    /// Sends `payload` to `dst`; it is delivered at the start of the next
    /// round.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is not a valid node id for this network.
    pub fn send(&mut self, dst: NodeId, payload: M) {
        assert!(
            dst.0 < self.node_count,
            "Context::send: destination {dst} out of range (network has {} nodes)",
            self.node_count
        );
        self.outbox.push(Envelope {
            from: self.id,
            to: dst,
            payload,
        });
    }
}

/// Behaviour of one network participant.
///
/// Implementations should be deterministic functions of their own state and
/// the context; all randomness in this workspace's protocols is injected via
/// node state constructed from a seeded RNG, keeping whole-network runs
/// reproducible.
pub trait Node<M> {
    /// Called once per round. Messages sent through `ctx` are delivered next
    /// round. Return [`Activity::Active`] to request another round even if no
    /// messages are in flight.
    fn on_round(&mut self, ctx: &mut Context<'_, M>) -> Activity;
}

/// Error returned when a run exceeds its round budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaxRoundsExceeded {
    /// The budget that was exhausted.
    pub max_rounds: u64,
    /// Messages still in flight when the run was aborted.
    pub in_flight: usize,
}

impl fmt::Display for MaxRoundsExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "network did not quiesce within {} rounds ({} messages in flight)",
            self.max_rounds, self.in_flight
        )
    }
}

impl std::error::Error for MaxRoundsExceeded {}
