//! Deterministic, sharded, synchronous message-passing network simulator.
//!
//! The paper's Algorithm 1 is a *distributed* protocol: query nodes send
//! their (noisy) measurements to agents, agents accumulate scores, and the
//! agents then sort themselves through a sorting network. This crate is the
//! substrate that protocol runs on:
//!
//! * [`Node`] — the behaviour of one network participant. Each round a node
//!   sees the messages delivered to it and may send messages through its
//!   [`Context`].
//! * [`Network`] — a collection of nodes plus in-flight mailboxes, advanced
//!   round by round with classic synchronous semantics: everything sent in
//!   round `r` is delivered at the start of round `r + 1`. Nodes are
//!   partitioned into contiguous *shards*; [`Network::step_parallel`] steps
//!   the shards on the rayon pool, and deliveries are compacted into a
//!   CSR-style per-shard arena (offset table + envelope slab, buffers
//!   reused across rounds).
//! * [`Topology`] — who may talk to whom: complete (the default),
//!   ring, grid, random `d`-regular, or Watts–Strogatz small world, with
//!   optional per-link [`LinkFaults`] overrides.
//! * [`Metrics`] — message/round accounting, which backs the communication
//!   comparison between the greedy protocol (one exchange per node) and
//!   AMP (one exchange per node *per iteration*) in the paper's conclusion.
//! * [`FaultConfig`] — message dropping/duplication/delay for failure
//!   injection; the uniform default of the general per-link model.
//! * [`NodeFaultPlan`] — agent-level chaos: fail-stop crashes (with
//!   optional restarts), stragglers, and payload corruptors, all decided
//!   by pure per-node hashes.
//! * [`ReliableConfig`] — opt-in at-least-once delivery: messages sent
//!   with [`Context::send_reliable`] are retransmitted on loss with
//!   exponential backoff and a bounded retry budget.
//!
//! # Determinism and delivery-order contract
//!
//! The simulator is fully deterministic, and its results are **independent
//! of the shard count and the thread count**:
//!
//! * Nodes are stepped in id order within each shard, and shards touch
//!   disjoint state, so parallel stepping cannot reorder anything.
//! * Every message carries its identity `(sender, send-seq)` — the
//!   sender's cumulative send counter. A node's inbox is always sorted by
//!   that identity, *regardless of which round each message was sent in*:
//!   delay-faulted messages merge back under the same sort, so a delayed
//!   run replays bit-identically.
//! * Fault decisions (drop, duplicate, delay) are pure functions of the
//!   fault seed and the message identity — there is no shared fault RNG
//!   stream that scheduling could perturb. Duplication-fault copies get
//!   their own identity (ordered right after the original) and pass the
//!   drop/delay gates independently.
//! * Agent-level faults obey the same rule: which nodes crash (and when),
//!   lag, or corrupt payloads are pure per-node hashes of the
//!   [`NodeFaultPlan`] seed, and retransmission copies get fresh
//!   identities, so chaos schedules replay bit-identically too.
//!
//! The workspace-root `tests/determinism.rs` pins bit-identical runs for
//! shard counts {1, 2, 8} and thread counts {1, 4}.
//!
//! # Examples
//!
//! A two-node ping-pong:
//!
//! ```
//! use npd_netsim::{Activity, Context, Network, Node, NodeId};
//!
//! struct PingPong { hits: u32 }
//!
//! impl Node<u32> for PingPong {
//!     fn on_round(&mut self, ctx: &mut Context<'_, u32>) -> Activity {
//!         if ctx.round() == 0 && ctx.id() == NodeId(0) {
//!             ctx.send(NodeId(1), 1);
//!         }
//!         let inbox: Vec<u32> = ctx.inbox().iter().map(|e| e.payload).collect();
//!         for v in inbox {
//!             self.hits += 1;
//!             if v < 4 {
//!                 let peer = NodeId(1 - ctx.id().0);
//!                 ctx.send(peer, v + 1);
//!             }
//!         }
//!         Activity::Idle
//!     }
//! }
//!
//! let mut net = Network::new(vec![PingPong { hits: 0 }, PingPong { hits: 0 }]);
//! let report = net.run_until_quiescent(100).unwrap();
//! assert_eq!(report.rounds, 5);
//! assert_eq!(net.metrics().messages_sent, 4);
//! ```
//!
//! The same protocol sharded and stepped in parallel is bit-identical:
//!
//! ```
//! use npd_netsim::{Network, Topology};
//! # use npd_netsim::{Activity, Context, Node, NodeId};
//! # struct PingPong { hits: u32 }
//! # impl Node<u32> for PingPong {
//! #     fn on_round(&mut self, ctx: &mut Context<'_, u32>) -> Activity {
//! #         if ctx.round() == 0 && ctx.id() == NodeId(0) { ctx.send(NodeId(1), 1); }
//! #         let inbox: Vec<u32> = ctx.inbox().iter().map(|e| e.payload).collect();
//! #         for v in inbox {
//! #             self.hits += 1;
//! #             if v < 4 { ctx.send(NodeId(1 - ctx.id().0), v + 1); }
//! #         }
//! #         Activity::Idle
//! #     }
//! # }
//! let nodes = vec![PingPong { hits: 0 }, PingPong { hits: 0 }];
//! let mut net = Network::new(nodes).with_shards(2);
//! let report = net.run_until_quiescent_parallel(100).unwrap();
//! assert_eq!(report.rounds, 5);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
// Delivery/fault paths must not hide failure modes behind ad-hoc panics:
// unwraps are either converted to typed errors or annotated with the
// invariant that makes them unreachable (allow + comment). Test code is
// exempt — a panicking unwrap is exactly what a failing test should do.
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod faults;
pub mod gossip;
mod metrics;
mod network;
pub mod schedule;
mod topology;

pub use faults::{FaultConfig, InvalidFaultConfig, NodeFaultPlan, ReliableConfig};
pub use metrics::{Metrics, NodeTraffic};
pub use network::{recommended_shards, Context, Network, RunReport, StepReport};
pub use topology::{LinkFaults, Topology};

use std::fmt;

/// Identifier of a node inside one [`Network`]; indexes the node vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// A message in flight, tagged with its sender and recipient.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Message payload.
    pub payload: M,
}

/// Whether a node wants to be stepped again even without incoming messages.
///
/// The network is quiescent — and [`Network::run_until_quiescent`] stops —
/// when no messages are in flight *and* every node reported [`Activity::Idle`]
/// in the latest round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// Node has nothing more to do unless a message arrives.
    Idle,
    /// Node wants another round regardless of message arrivals.
    Active,
}

/// Behaviour of one network participant.
///
/// Implementations should be deterministic functions of their own state and
/// the context; all randomness in this workspace's protocols is injected via
/// node state constructed from a seeded RNG, keeping whole-network runs
/// reproducible.
pub trait Node<M> {
    /// Called once per round. Messages sent through `ctx` are delivered next
    /// round. Return [`Activity::Active`] to request another round even if no
    /// messages are in flight.
    fn on_round(&mut self, ctx: &mut Context<'_, M>) -> Activity;

    /// Called when a crashed node rejoins under a [`NodeFaultPlan`]
    /// restart schedule, immediately before it is stepped again.
    /// Implementations should wipe volatile protocol state — the fail-stop
    /// model gives a restarted node no memory of the run so far. The
    /// default does nothing (stateless nodes need no wipe).
    fn on_restart(&mut self, round: u64) {
        let _ = round;
    }
}

/// Error returned when a run exceeds its round budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaxRoundsExceeded {
    /// The budget that was exhausted.
    pub max_rounds: u64,
    /// Messages still in flight when the run was aborted.
    pub in_flight: usize,
}

impl fmt::Display for MaxRoundsExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "network did not quiesce within {} rounds ({} messages in flight)",
            self.max_rounds, self.in_flight
        )
    }
}

impl std::error::Error for MaxRoundsExceeded {}
