//! The synchronous network engine.

use crate::metrics::NodeTraffic;
use crate::{Activity, Context, Envelope, FaultConfig, MaxRoundsExceeded, Metrics, Node, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A synchronous network of homogeneous nodes exchanging messages of type
/// `M`.
///
/// Semantics: [`step`](Self::step) runs one round. Nodes are stepped in id
/// order; every message sent during round `r` is delivered at the start of
/// round `r + 1`, ordered by `(sender, send order)`. This is the standard
/// synchronous message-passing model (e.g. Santoro, *Design and Analysis of
/// Distributed Algorithms*, which the paper cites for the sorting-network
/// step).
#[derive(Debug)]
pub struct Network<M, N> {
    nodes: Vec<N>,
    /// Messages to deliver at the start of the next round.
    in_flight: Vec<Envelope<M>>,
    /// Delay-faulted messages, tagged with their delivery round.
    delayed: Vec<(u64, Envelope<M>)>,
    round: u64,
    metrics: Metrics,
    traffic: Vec<NodeTraffic>,
    faults: Option<FaultState<M>>,
    /// Scratch buffers reused across rounds.
    inboxes: Vec<Vec<Envelope<M>>>,
}

/// Fault-injection state. The clone function pointer is captured in
/// [`Network::with_faults`], where the `M: Clone` bound is available; this
/// keeps fault-free networks free of any `Clone` requirement.
#[derive(Debug)]
struct FaultState<M> {
    cfg: FaultConfig,
    rng: SmallRng,
    cloner: fn(&M) -> M,
}

/// Outcome of a single [`Network::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepReport {
    /// Round that was just executed.
    pub round: u64,
    /// Messages delivered at the start of this round.
    pub delivered: usize,
    /// Messages sent during this round (before fault filtering).
    pub sent: usize,
    /// Nodes that reported [`Activity::Active`].
    pub active_nodes: usize,
}

/// Outcome of [`Network::run_until_quiescent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Rounds executed in this call.
    pub rounds: u64,
    /// Total messages delivered during this call.
    pub delivered: u64,
}

impl<M, N: Node<M>> Network<M, N> {
    /// Creates a network over the given nodes with no fault injection.
    pub fn new(nodes: Vec<N>) -> Self {
        let count = nodes.len();
        Self {
            nodes,
            in_flight: Vec::new(),
            delayed: Vec::new(),
            round: 0,
            metrics: Metrics::default(),
            traffic: vec![NodeTraffic::default(); count],
            faults: None,
            inboxes: (0..count).map(|_| Vec::new()).collect(),
        }
    }

    /// Creates a network with message fault injection.
    ///
    /// Requires `M: Clone` because duplication faults must copy payloads;
    /// [`Network::new`] has no such requirement.
    pub fn with_faults(nodes: Vec<N>, faults: FaultConfig) -> Self
    where
        M: Clone,
    {
        let rng = SmallRng::seed_from_u64(faults.seed());
        let mut net = Self::new(nodes);
        net.faults = Some(FaultState {
            cfg: faults,
            rng,
            cloner: |m| m.clone(),
        });
        net
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Shared access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.0]
    }

    /// Exclusive access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.0]
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Consumes the network, returning the nodes (for result extraction).
    pub fn into_nodes(self) -> Vec<N> {
        self.nodes
    }

    /// Cumulative metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Per-node traffic counters, indexed by node id.
    pub fn traffic(&self) -> &[NodeTraffic] {
        &self.traffic
    }

    /// Messages currently in flight (sent last round, delivered next step).
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Delay-faulted messages still waiting for their delivery round.
    pub fn delayed(&self) -> usize {
        self.delayed.len()
    }

    /// Executes one round: delivers in-flight messages, steps every node in
    /// id order, applies fault injection to the newly sent messages.
    pub fn step(&mut self) -> StepReport {
        // Distribute in-flight messages into per-node inboxes, together
        // with any delayed messages whose delivery round has come.
        for inbox in &mut self.inboxes {
            inbox.clear();
        }
        let mut delivered = self.in_flight.len();
        for env in self.in_flight.drain(..) {
            self.traffic[env.to.0].received += 1;
            self.inboxes[env.to.0].push(env);
        }
        if !self.delayed.is_empty() {
            let mut waiting = Vec::with_capacity(self.delayed.len());
            for (due, env) in self.delayed.drain(..) {
                if due <= self.round {
                    delivered += 1;
                    self.traffic[env.to.0].received += 1;
                    self.inboxes[env.to.0].push(env);
                } else {
                    waiting.push((due, env));
                }
            }
            self.delayed = waiting;
        }
        self.metrics.messages_delivered += delivered as u64;

        // Step nodes in id order; collect sends.
        let node_count = self.nodes.len();
        let mut outbox: Vec<Envelope<M>> = Vec::new();
        let mut active_nodes = 0usize;
        for (idx, node) in self.nodes.iter_mut().enumerate() {
            let before = outbox.len();
            let mut ctx = Context::new(
                self.round,
                NodeId(idx),
                node_count,
                &self.inboxes[idx],
                &mut outbox,
            );
            if node.on_round(&mut ctx) == Activity::Active {
                active_nodes += 1;
            }
            let sent_now = (outbox.len() - before) as u64;
            if sent_now > 0 {
                self.traffic[idx].sent += sent_now;
                self.traffic[idx].active_send_rounds += 1;
            }
        }

        let sent = outbox.len();
        self.metrics.messages_sent += sent as u64;
        self.metrics.payload_bytes_sent += (sent * std::mem::size_of::<M>()) as u64;

        // Apply faults while moving messages into the in-flight buffer.
        match &mut self.faults {
            None => self.in_flight = outbox,
            Some(state) => {
                self.in_flight.reserve(outbox.len());
                for env in outbox {
                    if state.cfg.drop_prob() > 0.0 && state.rng.gen::<f64>() < state.cfg.drop_prob()
                    {
                        self.metrics.messages_dropped += 1;
                        continue;
                    }
                    if state.cfg.dup_prob() > 0.0 && state.rng.gen::<f64>() < state.cfg.dup_prob() {
                        self.metrics.messages_duplicated += 1;
                        let copy = Envelope {
                            from: env.from,
                            to: env.to,
                            payload: (state.cloner)(&env.payload),
                        };
                        let extra = if state.cfg.max_delay() > 0 {
                            state.rng.gen_range(0..=state.cfg.max_delay())
                        } else {
                            0
                        };
                        if extra > 0 {
                            self.metrics.messages_delayed += 1;
                            self.delayed.push((self.round + 1 + extra, copy));
                        } else {
                            self.in_flight.push(copy);
                        }
                    }
                    let extra = if state.cfg.max_delay() > 0 {
                        state.rng.gen_range(0..=state.cfg.max_delay())
                    } else {
                        0
                    };
                    if extra > 0 {
                        self.metrics.messages_delayed += 1;
                        self.delayed.push((self.round + 1 + extra, env));
                    } else {
                        self.in_flight.push(env);
                    }
                }
            }
        }

        self.metrics.peak_in_flight = self.metrics.peak_in_flight.max(self.in_flight.len() as u64);
        let report = StepReport {
            round: self.round,
            delivered,
            sent,
            active_nodes,
        };
        self.round += 1;
        self.metrics.rounds = self.round;
        report
    }

    /// Runs rounds until the network quiesces: no messages in flight and all
    /// nodes idle.
    ///
    /// At least one round is always executed, so protocols that initiate
    /// work in round 0 make progress.
    ///
    /// # Errors
    ///
    /// Returns [`MaxRoundsExceeded`] if quiescence is not reached within
    /// `max_rounds` rounds (counted within this call).
    pub fn run_until_quiescent(&mut self, max_rounds: u64) -> Result<RunReport, MaxRoundsExceeded> {
        let mut rounds = 0u64;
        let mut delivered = 0u64;
        loop {
            if rounds >= max_rounds {
                return Err(MaxRoundsExceeded {
                    max_rounds,
                    in_flight: self.in_flight.len() + self.delayed.len(),
                });
            }
            let report = self.step();
            rounds += 1;
            delivered += report.delivered as u64;
            if self.in_flight.is_empty() && self.delayed.is_empty() && report.active_nodes == 0 {
                return Ok(RunReport { rounds, delivered });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Node that floods a fixed payload to everyone in round 0 and counts
    /// what it receives.
    struct Flood {
        received: usize,
    }

    impl Node<u8> for Flood {
        fn on_round(&mut self, ctx: &mut Context<'_, u8>) -> Activity {
            if ctx.round() == 0 {
                for peer in 0..ctx.node_count() {
                    if peer != ctx.id().0 {
                        ctx.send(NodeId(peer), 1);
                    }
                }
            }
            self.received += ctx.inbox().len();
            Activity::Idle
        }
    }

    fn flood_net(n: usize) -> Network<u8, Flood> {
        Network::new((0..n).map(|_| Flood { received: 0 }).collect())
    }

    #[test]
    fn flood_delivers_all_pairs() {
        let mut net = flood_net(5);
        let report = net.run_until_quiescent(10).unwrap();
        assert_eq!(report.rounds, 2);
        assert_eq!(net.metrics().messages_sent, 20);
        assert_eq!(net.metrics().messages_delivered, 20);
        for node in net.nodes() {
            assert_eq!(node.received, 4);
        }
    }

    #[test]
    fn metrics_track_bytes_and_peak() {
        let mut net = flood_net(3);
        net.run_until_quiescent(10).unwrap();
        assert_eq!(net.metrics().payload_bytes_sent, 6); // 6 messages × 1 byte
        assert_eq!(net.metrics().peak_in_flight, 6);
    }

    #[test]
    fn per_node_traffic_is_tracked() {
        let mut net = flood_net(4);
        net.run_until_quiescent(10).unwrap();
        for t in net.traffic() {
            assert_eq!(t.sent, 3);
            assert_eq!(t.received, 3);
            assert_eq!(t.active_send_rounds, 1);
        }
    }

    #[test]
    fn dropped_messages_do_not_count_as_received() {
        let cfg = FaultConfig::new(1.0, 0.0, 1).unwrap();
        let mut net = Network::with_faults((0..3).map(|_| Flood { received: 0 }).collect(), cfg);
        net.run_until_quiescent(10).unwrap();
        for t in net.traffic() {
            assert_eq!(t.sent, 2);
            assert_eq!(t.received, 0);
        }
    }

    #[test]
    fn empty_network_quiesces_immediately() {
        let mut net: Network<u8, Flood> = Network::new(vec![]);
        let report = net.run_until_quiescent(5).unwrap();
        assert_eq!(report.rounds, 1);
        assert!(net.is_empty());
    }

    #[test]
    fn max_rounds_is_enforced() {
        /// A node that stays active forever.
        struct Restless;
        impl Node<u8> for Restless {
            fn on_round(&mut self, _ctx: &mut Context<'_, u8>) -> Activity {
                Activity::Active
            }
        }
        let mut net = Network::new(vec![Restless]);
        let err = net.run_until_quiescent(7).unwrap_err();
        assert_eq!(err.max_rounds, 7);
        assert_eq!(err.in_flight, 0);
        assert!(err.to_string().contains("did not quiesce"));
    }

    #[test]
    fn drop_all_faults_suppress_delivery() {
        let cfg = FaultConfig::new(1.0, 0.0, 1).unwrap();
        let mut net = Network::with_faults((0..4).map(|_| Flood { received: 0 }).collect(), cfg);
        net.run_until_quiescent(10).unwrap();
        assert_eq!(net.metrics().messages_dropped, 12);
        assert_eq!(net.metrics().messages_delivered, 0);
        for node in net.nodes() {
            assert_eq!(node.received, 0);
        }
    }

    #[test]
    fn duplicate_all_faults_double_delivery() {
        let cfg = FaultConfig::new(0.0, 1.0, 1).unwrap();
        let mut net = Network::with_faults((0..3).map(|_| Flood { received: 0 }).collect(), cfg);
        net.run_until_quiescent(10).unwrap();
        assert_eq!(net.metrics().messages_duplicated, 6);
        for node in net.nodes() {
            assert_eq!(node.received, 4); // 2 senders × 2 copies
        }
    }

    #[test]
    fn fault_rng_is_deterministic() {
        let run = |seed: u64| {
            let cfg = FaultConfig::new(0.5, 0.0, seed).unwrap();
            let mut net =
                Network::with_faults((0..10).map(|_| Flood { received: 0 }).collect(), cfg);
            net.run_until_quiescent(10).unwrap();
            net.metrics().messages_dropped
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn messages_deliver_in_sender_order() {
        /// Node 0 sends a sequence to node 1; node 1 records payload order.
        struct Seq {
            log: Vec<u8>,
        }
        impl Node<u8> for Seq {
            fn on_round(&mut self, ctx: &mut Context<'_, u8>) -> Activity {
                if ctx.round() == 0 && ctx.id().0 == 0 {
                    for v in 0..5 {
                        ctx.send(NodeId(1), v);
                    }
                }
                for env in ctx.inbox() {
                    self.log.push(env.payload);
                }
                Activity::Idle
            }
        }
        let mut net = Network::new(vec![Seq { log: vec![] }, Seq { log: vec![] }]);
        net.run_until_quiescent(5).unwrap();
        assert_eq!(net.node(NodeId(1)).log, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_to_invalid_node_panics() {
        struct Bad;
        impl Node<u8> for Bad {
            fn on_round(&mut self, ctx: &mut Context<'_, u8>) -> Activity {
                ctx.send(NodeId(99), 0);
                Activity::Idle
            }
        }
        let mut net = Network::new(vec![Bad]);
        net.step();
    }

    #[test]
    fn into_nodes_returns_final_state() {
        let mut net = flood_net(2);
        net.run_until_quiescent(5).unwrap();
        let nodes = net.into_nodes();
        assert_eq!(nodes.len(), 2);
        assert!(nodes.iter().all(|n| n.received == 1));
    }

    #[test]
    fn step_report_fields() {
        let mut net = flood_net(3);
        let r0 = net.step();
        assert_eq!(r0.round, 0);
        assert_eq!(r0.delivered, 0);
        assert_eq!(r0.sent, 6);
        let r1 = net.step();
        assert_eq!(r1.round, 1);
        assert_eq!(r1.delivered, 6);
        assert_eq!(r1.sent, 0);
    }

    /// Delayed messages are eventually delivered, totals balance, and the
    /// network still quiesces.
    #[test]
    fn delay_faults_deliver_eventually() {
        let faults = FaultConfig::new(0.0, 0.0, 5).unwrap().with_max_delay(4);
        let nodes = (0..5).map(|_| Flood { received: 0 }).collect();
        let mut net: Network<u8, Flood> = Network::with_faults(nodes, faults);
        let report = net.run_until_quiescent(50).unwrap();
        assert_eq!(net.metrics().messages_sent, 20);
        assert_eq!(net.metrics().messages_delivered, 20);
        assert!(net.metrics().messages_delayed > 0, "no message was delayed");
        assert!(report.rounds > 2, "delays must stretch the run");
        assert_eq!(net.delayed(), 0);
        for node in net.nodes() {
            assert_eq!(node.received, 4);
        }
    }

    /// Delay composes with duplication: every copy arrives exactly once
    /// per duplication decision.
    #[test]
    fn delay_composes_with_duplication() {
        let faults = FaultConfig::new(0.0, 1.0, 9).unwrap().with_max_delay(2);
        let nodes = (0..3).map(|_| Flood { received: 0 }).collect();
        let mut net: Network<u8, Flood> = Network::with_faults(nodes, faults);
        net.run_until_quiescent(30).unwrap();
        // 6 sends, each duplicated once → 12 deliveries.
        assert_eq!(net.metrics().messages_delivered, 12);
        for node in net.nodes() {
            assert_eq!(node.received, 4);
        }
    }
}
