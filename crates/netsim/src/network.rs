//! The sharded synchronous network engine.
//!
//! # Architecture
//!
//! Nodes are partitioned into `S` contiguous *shards* of (up to)
//! `⌈n / S⌉` nodes each. One round proceeds in three phases:
//!
//! 1. **Arena build** — in-flight messages (plus delay-faulted messages
//!    whose round has come) are compacted, per destination shard, into a
//!    CSR-style delivery arena: one envelope slab per shard plus a
//!    per-node `(start, end)` range table. Each node's segment is sorted
//!    by `(sender, send-seq)`; all buffers are reused across rounds.
//! 2. **Node step** — every shard steps its nodes in id order. Shards are
//!    independent (each reads the shared arena and writes its own
//!    outboxes), so [`step_parallel`](Network::step_parallel) runs them on
//!    the rayon pool; [`step`](Network::step) runs them inline. Both
//!    produce bit-identical results for any shard count.
//! 3. **Routing** — each shard's outbox drains, in shard order, into
//!    per-destination-shard staging buffers. Fault gates apply here: every
//!    decision is a pure function of the fault seed and the *message
//!    identity* `(sender, send-seq, copy)`, never of a shared RNG stream,
//!    so faulted runs are also bit-identical across shard and thread
//!    counts.
//!
//! Messages sent during round `r` are delivered at the start of round
//! `r + 1` (plus any delay faults), ordered by `(sender, send-seq)` — the
//! classic synchronous message-passing model (e.g. Santoro, *Design and
//! Analysis of Distributed Algorithms*).
//!
//! On top of the message-fault gates, the engine supports *agent-level*
//! faults ([`Network::with_node_faults`]): fail-stop crashes filter
//! deliveries and skip the node-step phase for downed nodes, stragglers
//! add persistent per-sender delay, and corruptors garble outgoing
//! payloads. An opt-in reliable-delivery layer
//! ([`Network::with_reliability`] + [`Context::send_reliable`])
//! retransmits lost reliable messages with exponential backoff — see the
//! [`crate::faults`] module docs for the full model.

use crate::faults::splitmix64;
use crate::metrics::NodeTraffic;
use crate::topology::{LinkFaults, Topology};
use crate::{
    Activity, Envelope, FaultConfig, MaxRoundsExceeded, Metrics, Node, NodeFaultPlan, NodeId,
    ReliableConfig,
};
use npd_telemetry::{Event, TelemetrySink};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Identity of one physical message copy: the sender, the sender's
/// cumulative send sequence number, and the copy number. The triple is
/// unique per copy and totally ordered; delivery order and all fault
/// decisions derive from it.
///
/// Copy numbering: transmission attempt `a` (0 = the node's own send,
/// `a ≥ 1` = the reliability layer's retransmissions) has copy `2a`; the
/// duplication-fault clone of attempt `a` has copy `2a + 1`. The parity
/// bit thus preserves the original original-vs-duplicate RNG mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct MsgKey {
    from: u32,
    seq: u64,
    copy: u16,
    /// Whether the reliability layer tracks this message (set by
    /// [`Context::send_reliable`]; acted on only when a
    /// [`ReliableConfig`] is attached).
    reliable: bool,
}

/// A keyed message moving through the routing pipeline.
type Staged<M> = (MsgKey, Envelope<M>);

/// Per-round view handed to [`Node::on_round`]: the inbox, the clock, the
/// node's own id, the topology, and the send interface.
#[derive(Debug)]
pub struct Context<'a, M> {
    round: u64,
    id: NodeId,
    node_count: usize,
    inbox: &'a [Envelope<M>],
    /// Per-destination-shard outbox of this node's shard.
    outbox: &'a mut [Vec<Staged<M>>],
    shard_size: usize,
    topology: &'a Topology,
    /// The sender's next send-sequence number (written back after the
    /// node steps).
    next_seq: u64,
}

impl<'a, M> Context<'a, M> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        round: u64,
        id: NodeId,
        node_count: usize,
        inbox: &'a [Envelope<M>],
        outbox: &'a mut [Vec<Staged<M>>],
        shard_size: usize,
        topology: &'a Topology,
        next_seq: u64,
    ) -> Self {
        Self {
            round,
            id,
            node_count,
            inbox,
            outbox,
            shard_size,
            topology,
            next_seq,
        }
    }

    /// Current round number (starting at 0).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The id of the node being stepped.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The topology the network runs on.
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    /// Number of neighbors this node may send to (loopback not counted).
    pub fn degree(&self) -> usize {
        self.topology.degree(self.id)
    }

    /// The `i`-th neighbor of this node, in ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= degree()`.
    pub fn neighbor(&self, i: usize) -> NodeId {
        self.topology.neighbor(self.id, i)
    }

    /// Messages delivered to this node at the start of the round, ordered
    /// by `(sender, send-seq)`.
    pub fn inbox(&self) -> &[Envelope<M>] {
        self.inbox
    }

    /// Sends `payload` to `dst`; it is delivered at the start of the next
    /// round. Loopback (`dst == self`) is always permitted.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range or the topology has no `self → dst`
    /// link.
    pub fn send(&mut self, dst: NodeId, payload: M) {
        self.send_inner(dst, payload, false);
    }

    /// Like [`send`](Self::send), but the message is tracked by the
    /// reliable-delivery layer: if the network has a
    /// [`ReliableConfig`] attached and this message is lost (dropped by a
    /// link fault or its destination is crashed at delivery time), the
    /// engine retransmits it after an exponential-backoff timeout, up to
    /// the configured retry budget. Without a `ReliableConfig` this
    /// behaves exactly like `send`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range or the topology has no `self → dst`
    /// link.
    pub fn send_reliable(&mut self, dst: NodeId, payload: M) {
        self.send_inner(dst, payload, true);
    }

    fn send_inner(&mut self, dst: NodeId, payload: M, reliable: bool) {
        assert!(
            dst.0 < self.node_count,
            "Context::send: destination {dst} out of range (network has {} nodes)",
            self.node_count
        );
        assert!(
            self.topology.contains_edge(self.id, dst),
            "Context::send: topology has no link {} → {dst}",
            self.id
        );
        let key = MsgKey {
            from: self.id.0 as u32,
            seq: self.next_seq,
            copy: 0,
            reliable,
        };
        self.next_seq += 1;
        self.outbox[dst.0 / self.shard_size].push((
            key,
            Envelope {
                from: self.id,
                to: dst,
                payload,
            },
        ));
    }
}

/// A synchronous network of homogeneous nodes exchanging messages of type
/// `M`, partitioned into shards for parallel stepping.
///
/// Semantics: [`step`](Self::step) runs one round. Nodes are stepped in id
/// order *per shard*; every message sent during round `r` is delivered at
/// the start of round `r + 1`, ordered by `(sender, send-seq)`. The output
/// is bit-identical for any shard count and for sequential vs parallel
/// stepping (pinned by `tests/determinism.rs` in the workspace root).
#[derive(Debug)]
pub struct Network<M, N> {
    nodes: Vec<N>,
    topology: Topology,
    shards: usize,
    shard_size: usize,
    round: u64,
    metrics: Metrics,
    traffic: Vec<NodeTraffic>,
    /// Per-node cumulative send counter (the `seq` of the next send).
    send_seq: Vec<u64>,
    faults: Option<FaultState<M>>,
    /// Agent-level fault schedule (crashes, stragglers, corruptors).
    node_faults: Option<NodeFaultState<M>>,
    /// Reliable-delivery (retransmission) configuration.
    reliable: Option<ReliableConfig>,
    /// Scheduled retransmissions: `(due_round, key, envelope)`. Entry
    /// *order* is shard-dependent; only the set matters, because staging
    /// is re-sorted whenever retransmissions were injected.
    retrans: Vec<(u64, MsgKey, Envelope<M>)>,
    /// Whether the last routing phase staged out-of-key-order traffic
    /// (retransmissions), forcing a sort in the next arena build.
    resort: bool,
    /// `outboxes[src][dst]`: raw sends staged during the node-step phase.
    outboxes: Vec<Vec<Vec<Staged<M>>>>,
    /// `staging[dst]`: in-flight messages awaiting delivery next round,
    /// sorted by [`MsgKey`].
    staging: Vec<Vec<Staged<M>>>,
    /// `delayed[dst]`: delay-faulted messages tagged with their due round.
    delayed: Vec<Vec<(u64, MsgKey, Envelope<M>)>>,
    /// `slabs[dst]`: the delivery arena — envelopes grouped by destination
    /// node, each segment sorted by key.
    slabs: Vec<Vec<Envelope<M>>>,
    /// Per node: `(start, end)` of its inbox segment in its shard's slab.
    ranges: Vec<(usize, usize)>,
    /// Counting-sort scratch (one slot per node of the widest shard).
    counts: Vec<usize>,
    /// Permutation scratch for the in-place counting sort.
    perm: Vec<u32>,
    /// Telemetry handle (disabled by default). Events are recorded only
    /// from the *serial* phases of a step — never from `run_shard` — and
    /// record only shard-count-invariant quantities, so the recorded
    /// stream is bit-identical across shard and thread counts.
    sink: TelemetrySink,
}

/// Fault-injection state. The clone function pointer is captured in
/// [`Network::with_faults`], where the `M: Clone` bound is available; this
/// keeps fault-free networks free of any `Clone` requirement. Fault
/// *decisions* carry no state at all: they are pure functions of
/// `(seed, message identity)`.
#[derive(Debug)]
struct FaultState<M> {
    cfg: FaultConfig,
    cloner: fn(&M) -> M,
}

/// Agent-level fault state: the declarative plan plus per-node schedules
/// precomputed at attach time (pure functions of the plan, so still
/// shard/thread independent).
#[derive(Debug)]
struct NodeFaultState<M> {
    plan: NodeFaultPlan,
    /// Payload garbler for corruption faults (set via
    /// [`Network::with_corruptor`]).
    corrupt: Option<fn(&mut M, u64)>,
    /// Per node: `(crash_round, restart_round)` if it crashes.
    spans: Vec<Option<(u64, Option<u64>)>>,
    /// Per node: persistent extra delay on outgoing messages.
    straggler: Vec<u64>,
    /// Crash/restart events `(round, node, is_restart)`, sorted; consumed
    /// serially at the start of each step for the counters and
    /// `on_restart` callbacks.
    events: Vec<(u64, u32, bool)>,
    next_event: usize,
}

impl<M> NodeFaultState<M> {
    fn down_at(&self, node: usize, round: u64) -> bool {
        match self.spans[node] {
            Some((crash, restart)) => round >= crash && restart.is_none_or(|r| round < r),
            None => false,
        }
    }
}

/// Outcome of a single [`Network::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepReport {
    /// Round that was just executed.
    pub round: u64,
    /// Messages delivered at the start of this round.
    pub delivered: usize,
    /// Messages sent during this round (before fault filtering).
    pub sent: usize,
    /// Nodes that reported [`Activity::Active`].
    pub active_nodes: usize,
}

/// Outcome of [`Network::run_until_quiescent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Rounds executed in this call.
    pub rounds: u64,
    /// Total messages delivered during this call.
    pub delivered: u64,
}

/// Recommended shard count for an `n`-node network: one shard per rayon
/// worker, floored so a shard never becomes trivially small (≥ 64 nodes).
/// The result of a run is bit-identical for every shard count — this only
/// sets how much parallelism [`Network::step_parallel`] can exploit.
pub fn recommended_shards(n: usize) -> usize {
    rayon::current_num_threads().clamp(1, (n / 64).max(1))
}

/// Dedicated RNG of one message copy: a pure function of the fault seed
/// and the copy's identity, so fault decisions cannot depend on shard
/// count, thread count, or processing order.
///
/// The mapping for copies 0 and 1 (the node's send and its duplication
/// clone) is frozen — pinned fault schedules across the workspace replay
/// against it; retransmission copies (`copy ≥ 2`) mix in the copy number
/// so every attempt redraws fresh fault decisions.
fn message_rng(seed: u64, key: MsgKey) -> SmallRng {
    let mut mixed = splitmix64(seed ^ splitmix64((key.from as u64) << 1 | (key.copy & 1) as u64))
        ^ splitmix64(key.seq.wrapping_add(0xA5A5_5A5A_0F0F_F0F0));
    if key.copy >= 2 {
        mixed ^= splitmix64(((key.copy as u64) << 32) ^ 0x7E7E_1234_ABCD_0001);
    }
    SmallRng::seed_from_u64(mixed)
}

/// Mutable routing-phase view: staging/delayed/retransmission sinks plus
/// metrics.
struct RouteSinks<'a, M> {
    staging: &'a mut [Vec<Staged<M>>],
    delayed: &'a mut [Vec<(u64, MsgKey, Envelope<M>)>],
    retrans: &'a mut Vec<(u64, MsgKey, Envelope<M>)>,
    metrics: &'a mut Metrics,
}

impl<M, N: Node<M>> Network<M, N> {
    /// Creates a single-shard network over the given nodes on the complete
    /// topology with no fault injection.
    ///
    /// # Panics
    ///
    /// Panics if there are more than `u32::MAX` nodes.
    pub fn new(nodes: Vec<N>) -> Self {
        let count = nodes.len();
        assert!(
            count <= u32::MAX as usize,
            "Network: node count {count} exceeds u32 id space"
        );
        let mut net = Self {
            nodes,
            topology: Topology::complete(count),
            shards: 1,
            shard_size: count.max(1),
            round: 0,
            metrics: Metrics::default(),
            traffic: vec![NodeTraffic::default(); count],
            send_seq: vec![0; count],
            faults: None,
            node_faults: None,
            reliable: None,
            retrans: Vec::new(),
            resort: false,
            outboxes: Vec::new(),
            staging: Vec::new(),
            delayed: Vec::new(),
            slabs: Vec::new(),
            ranges: vec![(0, 0); count],
            counts: Vec::new(),
            perm: Vec::new(),
            sink: TelemetrySink::default(),
        };
        net.resize_shard_buffers();
        net
    }

    /// Creates a network with message fault injection (the uniform link
    /// model; see [`Network::with_link_model`] for per-link overrides).
    ///
    /// Requires `M: Clone` because duplication faults must copy payloads;
    /// [`Network::new`] has no such requirement.
    pub fn with_faults(nodes: Vec<N>, faults: FaultConfig) -> Self
    where
        M: Clone,
    {
        let mut net = Self::new(nodes);
        net.faults = Some(FaultState {
            cfg: faults,
            cloner: |m| m.clone(),
        });
        net
    }

    /// Creates a network on `topology` with the general link fault model:
    /// `faults` is the default profile of every link, and the topology's
    /// [`Topology::with_link_faults`] overrides apply per link. The
    /// `faults` seed drives every per-message decision.
    ///
    /// # Panics
    ///
    /// Panics if `topology.n()` differs from the node count.
    pub fn with_link_model(nodes: Vec<N>, topology: Topology, faults: FaultConfig) -> Self
    where
        M: Clone,
    {
        Self::with_faults(nodes, faults).with_topology(topology)
    }

    /// Attaches an agent-level fault plan: fail-stop crashes (with
    /// optional restarts), stragglers, and payload corruptors. Per-node
    /// schedules are precomputed here from the plan's pure hashes, so the
    /// same plan yields the same schedule at any shard or thread count.
    ///
    /// If the plan schedules corruption, a payload garbler must also be
    /// set with [`with_corruptor`](Self::with_corruptor) before stepping.
    ///
    /// # Panics
    ///
    /// Panics if the network has already executed a round.
    #[must_use]
    pub fn with_node_faults(mut self, plan: NodeFaultPlan) -> Self {
        assert_eq!(self.round, 0, "with_node_faults: network already started");
        let n = self.nodes.len();
        let spans: Vec<Option<(u64, Option<u64>)>> = (0..n).map(|v| plan.crash_span(v)).collect();
        let straggler: Vec<u64> = (0..n).map(|v| plan.straggler_delay(v)).collect();
        let mut events: Vec<(u64, u32, bool)> = Vec::new();
        for (v, span) in spans.iter().enumerate() {
            if let Some((crash, restart)) = span {
                events.push((*crash, v as u32, false));
                if let Some(r) = restart {
                    events.push((*r, v as u32, true));
                }
            }
        }
        events.sort_unstable();
        self.node_faults = Some(NodeFaultState {
            plan,
            corrupt: None,
            spans,
            straggler,
            events,
            next_event: 0,
        });
        self
    }

    /// Sets the payload garbler used for the node-fault plan's corruption
    /// faults: `garble(&mut payload, entropy)` is called on each corrupted
    /// outgoing payload with deterministic per-message entropy.
    ///
    /// # Panics
    ///
    /// Panics if no node-fault plan is attached.
    #[must_use]
    pub fn with_corruptor(mut self, garble: fn(&mut M, u64)) -> Self {
        match self.node_faults.as_mut() {
            Some(nf) => nf.corrupt = Some(garble),
            None => panic!("with_corruptor: call with_node_faults first"),
        }
        self
    }

    /// Enables the reliable-delivery layer: messages sent with
    /// [`Context::send_reliable`] are retransmitted on loss (link drop or
    /// crashed destination) with exponential backoff, up to the retry
    /// budget. The engine stands in for the receiver's acknowledgement —
    /// it knows delivery outcomes — so the timeout models the sender's
    /// detection latency, not an extra ack message on the wire.
    ///
    /// # Panics
    ///
    /// Panics if the network has already executed a round.
    #[must_use]
    pub fn with_reliability(mut self, cfg: ReliableConfig) -> Self {
        assert_eq!(self.round, 0, "with_reliability: network already started");
        self.reliable = Some(cfg);
        self
    }

    /// Restricts communication to `topology` (default: complete).
    ///
    /// # Panics
    ///
    /// Panics if the node count differs from `topology.n()` or the network
    /// has already executed a round.
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        assert_eq!(
            topology.n(),
            self.nodes.len(),
            "with_topology: topology size mismatch"
        );
        assert_eq!(self.round, 0, "with_topology: network already started");
        self.topology = topology;
        self
    }

    /// Partitions the nodes into `shards` contiguous shards (default: 1).
    /// The result of a run is bit-identical for every shard count; shards
    /// only control how much parallelism
    /// [`step_parallel`](Self::step_parallel) can exploit.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or the network has already executed a
    /// round.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "with_shards: shard count must be positive");
        assert_eq!(self.round, 0, "with_shards: network already started");
        let n = self.nodes.len();
        self.shards = shards.min(n).max(1);
        self.shard_size = n.div_ceil(self.shards).max(1);
        // `⌈n / ⌈n / S⌉⌉` can be below `S`; recompute so no shard is empty.
        self.shards = n.div_ceil(self.shard_size).max(1);
        self.resize_shard_buffers();
        self
    }

    /// Attaches a telemetry sink (default: disabled). Each round then
    /// records a `netsim`-phase span (begin/end with per-round message
    /// and fault deltas), an `in_flight` histogram sample, and per-node
    /// `inbox_len` histogram samples. Everything recorded is invariant
    /// under the shard and thread configuration — per-shard breakdowns
    /// are deliberately recorded at *node* granularity (the finest
    /// shard-invariant unit) so trace streams stay byte-identical across
    /// shard counts (contract rule 11).
    ///
    /// # Panics
    ///
    /// Panics if the network has already executed a round.
    #[must_use]
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        assert_eq!(self.round, 0, "with_telemetry: network already started");
        self.sink = sink;
        self
    }

    /// The attached telemetry sink (disabled unless
    /// [`with_telemetry`](Self::with_telemetry) was called).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.sink
    }

    fn resize_shard_buffers(&mut self) {
        let s = self.shards;
        self.outboxes = (0..s)
            .map(|_| (0..s).map(|_| Vec::new()).collect())
            .collect();
        self.staging = (0..s).map(|_| Vec::new()).collect();
        self.delayed = (0..s).map(|_| Vec::new()).collect();
        self.slabs = (0..s).map(|_| Vec::new()).collect();
        self.counts = vec![0; self.shard_size.min(self.nodes.len().max(1))];
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of shards the nodes are partitioned into.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The topology the network runs on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Shared access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.0]
    }

    /// Exclusive access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.0]
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Consumes the network, returning the nodes (for result extraction).
    pub fn into_nodes(self) -> Vec<N> {
        self.nodes
    }

    /// Cumulative metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Per-node traffic counters, indexed by node id.
    pub fn traffic(&self) -> &[NodeTraffic] {
        &self.traffic
    }

    /// Messages currently in flight (sent last round, delivered next step).
    pub fn in_flight(&self) -> usize {
        self.staging.iter().map(Vec::len).sum()
    }

    /// Delay-faulted messages still waiting for their delivery round.
    pub fn delayed(&self) -> usize {
        self.delayed.iter().map(Vec::len).sum()
    }

    /// Retransmissions scheduled by the reliability layer but not yet
    /// resent. These are *not* part of the conservation identity: the
    /// lost copy was already accounted (dropped / lost-to-crash), and the
    /// retransmission counts as a fresh send when it goes out.
    pub fn pending_retransmissions(&self) -> usize {
        self.retrans.len()
    }

    /// Consumes due crash/restart events: counts them and fires
    /// [`Node::on_restart`] for restarting nodes. Runs serially at the
    /// start of each step (event order is pre-sorted, so this is
    /// deterministic).
    fn apply_node_events(&mut self) {
        if let Some(nf) = &self.node_faults {
            assert!(
                !nf.plan.has_corruption() || nf.corrupt.is_some(),
                "NodeFaultPlan schedules corruption but no payload garbler is set; \
                 call Network::with_corruptor"
            );
        }
        loop {
            let event = match &self.node_faults {
                Some(nf)
                    if nf.next_event < nf.events.len()
                        && nf.events[nf.next_event].0 <= self.round =>
                {
                    nf.events[nf.next_event]
                }
                _ => return,
            };
            if let Some(nf) = &mut self.node_faults {
                nf.next_event += 1;
            }
            let (_, node, is_restart) = event;
            if is_restart {
                self.metrics.node_restarts += 1;
                self.nodes[node as usize].on_restart(self.round);
            } else {
                self.metrics.node_crashes += 1;
            }
        }
    }

    /// Executes one round with all shards stepped inline on the calling
    /// thread. Bit-identical to [`step_parallel`](Self::step_parallel).
    pub fn step(&mut self) -> StepReport {
        let before = self.begin_round();
        self.apply_node_events();
        let delivered = self.build_arena();
        let active_nodes = {
            let (mut runs, env) = self.shard_runs();
            let mut active = 0usize;
            for run in &mut runs {
                active += env.run_shard(run);
            }
            active
        };
        let sent = self.route();
        self.finish_step(before, delivered, sent, active_nodes)
    }

    /// Executes one round with shards stepped in parallel on the rayon
    /// pool. Bit-identical to [`step`](Self::step) for any shard or
    /// thread count.
    ///
    /// # Examples
    ///
    /// A counter protocol stepped round by round — every node pings its
    /// successor each round; the report counts activity:
    ///
    /// ```
    /// use npd_netsim::{Activity, Context, Network, Node, NodeId};
    ///
    /// struct Ring;
    /// impl Node<u8> for Ring {
    ///     fn on_round(&mut self, ctx: &mut Context<'_, u8>) -> Activity {
    ///         if ctx.round() < 3 {
    ///             let next = NodeId((ctx.id().0 + 1) % 4);
    ///             ctx.send(next, 1);
    ///         }
    ///         Activity::Idle
    ///     }
    /// }
    ///
    /// let mut net = Network::new(vec![Ring, Ring, Ring, Ring]).with_shards(2);
    /// let first = net.step_parallel();
    /// assert_eq!(first.round, 0);
    /// assert_eq!(first.sent, 4); // every node pinged its successor
    /// let second = net.step_parallel();
    /// assert_eq!(second.delivered, 4); // round-0 traffic arrives in round 1
    /// ```
    pub fn step_parallel(&mut self) -> StepReport
    where
        M: Send + Sync,
        N: Send,
    {
        let before = self.begin_round();
        self.apply_node_events();
        let delivered = self.build_arena();
        let active_nodes = {
            let (runs, env) = self.shard_runs();
            let env = &env;
            let actives: Vec<usize> = runs
                .into_par_iter()
                .map(|mut run| env.run_shard(&mut run))
                .collect();
            actives.into_iter().sum()
        };
        let sent = self.route();
        self.finish_step(before, delivered, sent, active_nodes)
    }

    /// Opens the round's telemetry span and snapshots the metrics so
    /// [`finish_step`](Self::finish_step) can report per-round deltas.
    /// Serial by construction (called before any shard work starts).
    fn begin_round(&mut self) -> Metrics {
        let round = self.round;
        self.sink
            .emit(|| Event::begin("round").phase("netsim").round(round));
        self.metrics
    }

    fn finish_step(
        &mut self,
        before: Metrics,
        delivered: usize,
        sent: usize,
        active_nodes: usize,
    ) -> StepReport {
        self.metrics.peak_in_flight = self.metrics.peak_in_flight.max(self.in_flight() as u64);
        let report = StepReport {
            round: self.round,
            delivered,
            sent,
            active_nodes,
        };
        self.round += 1;
        self.metrics.rounds = self.round;
        if self.sink.is_enabled() {
            self.sink.record("in_flight", self.in_flight() as u64);
            let after = self.metrics;
            self.sink.emit(|| {
                let mut event = Event::end("round")
                    .phase("netsim")
                    .round(report.round)
                    .u64("active", active_nodes as u64);
                // Per-round message/fault deltas straight off the shared
                // Metrics rows; cumulative-style rows are skipped (the
                // final registry dump carries them).
                for ((name, now), (_, was)) in after.as_rows().zip(before.as_rows()) {
                    if now != was && name != "rounds" && name != "peak_in_flight" {
                        event = event.u64(name, now - was);
                    }
                }
                event
            });
        }
        report
    }

    /// Phase 1: compacts staged + due delayed messages into the delivery
    /// arena (`slabs` + `ranges`), returning the delivered count.
    fn build_arena(&mut self) -> usize {
        let mut delivered = 0usize;
        let shard_size = self.shard_size;
        let n = self.nodes.len();
        for d in 0..self.shards {
            let lo = d * shard_size;
            let hi = (lo + shard_size).min(n);
            let buf = &mut self.staging[d];

            // Merge delay-faulted messages whose round has come, restoring
            // the global (sender, send-seq) order. Keys are unique, so the
            // unstable sort is deterministic. (`swap_remove` scrambles the
            // pending order, which is fine: delivery order comes from the
            // key sort, and pending entries are re-scanned every round.)
            // `resort` forces the sort when last round's routing staged
            // out-of-order traffic (retransmissions).
            let mut needs_sort = self.resort;
            let pending = &mut self.delayed[d];
            if !pending.is_empty() {
                let before = buf.len();
                let mut i = 0usize;
                while i < pending.len() {
                    if pending[i].0 <= self.round {
                        let (_, key, env) = pending.swap_remove(i);
                        buf.push((key, env));
                    } else {
                        i += 1;
                    }
                }
                needs_sort |= buf.len() > before;
            }

            // Fail-stop filter: a delivery to a node that is down this
            // round is lost (counted, and retransmitted later if the
            // message is reliable and budget remains).
            if let Some(nf) = &self.node_faults {
                let round = self.round;
                let reliable = self.reliable;
                let before = buf.len();
                let mut i = 0usize;
                while i < buf.len() {
                    if nf.down_at(buf[i].1.to.0, round) {
                        let (key, env) = buf.swap_remove(i);
                        self.metrics.messages_lost_to_crash += 1;
                        if let Some(rc) = reliable {
                            if key.reliable
                                && key.copy & 1 == 0
                                && (key.copy >> 1) < rc.max_retries()
                            {
                                let due = round + rc.backoff(key.copy >> 1);
                                self.retrans.push((
                                    due,
                                    MsgKey {
                                        copy: key.copy + 2,
                                        ..key
                                    },
                                    env,
                                ));
                            }
                        }
                    } else {
                        i += 1;
                    }
                }
                // swap_remove scrambled the survivors' order.
                needs_sort |= buf.len() < before;
            }

            if needs_sort && !buf.is_empty() {
                buf.sort_unstable_by_key(|e| e.0);
            }

            if buf.is_empty() {
                self.ranges[lo..hi].fill((0, 0));
                self.slabs[d].clear();
                continue;
            }

            // CSR build: count per destination node, prefix into ranges,
            // then counting-sort the buffer in place (stable in arrival
            // order, which is key order) and strip keys into the slab.
            let span = hi - lo;
            let counts = &mut self.counts[..span];
            counts.fill(0);
            for (_, env) in buf.iter() {
                counts[env.to.0 - lo] += 1;
                self.traffic[env.to.0].received += 1;
            }
            let mut running = 0usize;
            for (v, c) in counts.iter_mut().enumerate() {
                let count = *c;
                self.ranges[lo + v] = (running, running + count);
                *c = running;
                running += count;
            }
            self.perm.resize(buf.len(), 0);
            for (i, (_, env)) in buf.iter().enumerate() {
                let local = env.to.0 - lo;
                self.perm[i] = counts[local] as u32;
                counts[local] += 1;
            }
            apply_permutation(buf, &mut self.perm);
            let slab = &mut self.slabs[d];
            slab.clear();
            slab.extend(buf.drain(..).map(|(_, env)| env));
            delivered += slab.len();

            // Per-node inbox sizes: the finest delivery breakdown that is
            // invariant under the shard configuration (node ids don't move
            // when the shard count changes), recorded serially per shard.
            if self.sink.is_enabled() {
                for &(seg_lo, seg_hi) in &self.ranges[lo..hi] {
                    if seg_hi > seg_lo {
                        self.sink.record("inbox_len", (seg_hi - seg_lo) as u64);
                    }
                }
            }
        }
        self.resort = false;
        self.metrics.messages_delivered += delivered as u64;
        delivered
    }

    /// Borrow split for the node-step phase: one mutable run per shard
    /// plus the shared environment.
    fn shard_runs(&mut self) -> (Vec<ShardRun<'_, M, N>>, StepEnv<'_>) {
        let shard_size = self.shard_size;
        let node_count = self.nodes.len();
        let mut runs = Vec::with_capacity(self.shards);
        let mut nodes = self.nodes.as_mut_slice();
        let mut seqs = self.send_seq.as_mut_slice();
        let mut traffic = self.traffic.as_mut_slice();
        let mut ranges = self.ranges.as_slice();
        let mut slabs = self.slabs.as_slice();
        let mut outboxes = self.outboxes.as_mut_slice();
        let mut start = 0usize;
        for _ in 0..self.shards {
            let take = shard_size.min(nodes.len());
            let (node_chunk, node_rest) = nodes.split_at_mut(take);
            let (seq_chunk, seq_rest) = seqs.split_at_mut(take);
            let (traffic_chunk, traffic_rest) = traffic.split_at_mut(take);
            let (range_chunk, range_rest) = ranges.split_at(take);
            // Invariant: `resize_shard_buffers` sizes `slabs`/`outboxes`
            // to exactly `self.shards`, and this loop runs `shards` times.
            #[allow(clippy::expect_used)]
            // xtask:allow(unwrap-audit): resize_shard_buffers sizes slabs to exactly `shards`, and this loop runs `shards` times
            let (slab_chunk, slab_rest) = slabs.split_first().expect("one slab per shard");
            #[allow(clippy::expect_used)]
            let (outbox_chunk, outbox_rest) =
                // xtask:allow(unwrap-audit): resize_shard_buffers sizes outboxes to exactly `shards`, and this loop runs `shards` times
                outboxes.split_first_mut().expect("one outbox per shard");
            runs.push(ShardRun {
                start,
                nodes: node_chunk,
                send_seq: seq_chunk,
                traffic: traffic_chunk,
                ranges: range_chunk,
                slab: slab_chunk,
                outbox: outbox_chunk,
            });
            nodes = node_rest;
            seqs = seq_rest;
            traffic = traffic_rest;
            ranges = range_rest;
            slabs = slab_rest;
            outboxes = outbox_rest;
            start += take;
        }
        let env = StepEnv {
            round: self.round,
            node_count,
            shard_size,
            topology: &self.topology,
            crash_spans: self
                .node_faults
                .as_ref()
                .map_or(&[][..], |nf| nf.spans.as_slice()),
        };
        (runs, env)
    }

    /// Phase 3: drains every shard outbox, in shard order, through the
    /// fault gates into the per-destination-shard staging buffers, then
    /// resends due retransmissions through the same gates.
    /// Returns the number of messages sent (before fault filtering).
    fn route(&mut self) -> usize {
        let mut sent = 0usize;
        let shard_size = self.shard_size;
        let gated = self.faults.is_some() || self.node_faults.is_some() || !self.retrans.is_empty();
        if !gated {
            for src in 0..self.shards {
                for dst in 0..self.shards {
                    let buf = &mut self.outboxes[src][dst];
                    sent += buf.len();
                    self.staging[dst].append(buf);
                }
            }
        } else {
            let (default_profile, seed, cloner) = match &self.faults {
                Some(state) => (
                    state.cfg.link_faults(),
                    state.cfg.seed(),
                    Some(state.cloner),
                ),
                // Node-fault-only network: links are perfectly reliable,
                // the node plan's seed drives any per-link overrides.
                None => (
                    LinkFaults::RELIABLE,
                    self.node_faults.as_ref().map_or(0, |nf| nf.plan.seed()),
                    None,
                ),
            };
            let round = self.round;
            let reliable_cfg = self.reliable;
            // Due retransmissions are extracted before the sinks borrow:
            // reschedules (a retransmission lost again) push fresh entries
            // with due > round, so the set drained here is final.
            let mut due: Vec<(MsgKey, Envelope<M>)> = Vec::new();
            let mut i = 0usize;
            while i < self.retrans.len() {
                if self.retrans[i].0 <= round {
                    let (_, key, env) = self.retrans.swap_remove(i);
                    due.push((key, env));
                } else {
                    i += 1;
                }
            }
            let mut sinks = RouteSinks {
                staging: &mut self.staging,
                delayed: &mut self.delayed,
                retrans: &mut self.retrans,
                metrics: &mut self.metrics,
            };
            for src in 0..self.shards {
                for dst in 0..self.shards {
                    let mut buf = std::mem::take(&mut self.outboxes[src][dst]);
                    sent += buf.len();
                    for (key, env) in buf.drain(..) {
                        route_one(
                            &mut sinks,
                            &self.topology,
                            self.node_faults.as_ref(),
                            default_profile,
                            seed,
                            cloner,
                            reliable_cfg,
                            round,
                            shard_size,
                            key,
                            env,
                        );
                    }
                    self.outboxes[src][dst] = buf;
                }
            }
            // Retransmissions: counted as fresh sends, injected through
            // the same gates. Their staging order is arbitrary, so the
            // next arena build re-sorts.
            if !due.is_empty() {
                self.resort = true;
                sent += due.len();
                sinks.metrics.messages_retransmitted += due.len() as u64;
                for (key, env) in due {
                    route_one(
                        &mut sinks,
                        &self.topology,
                        self.node_faults.as_ref(),
                        default_profile,
                        seed,
                        cloner,
                        reliable_cfg,
                        round,
                        shard_size,
                        key,
                        env,
                    );
                }
            }
        }
        self.metrics.messages_sent += sent as u64;
        self.metrics.payload_bytes_sent += (sent * std::mem::size_of::<M>()) as u64;
        sent
    }

    /// Runs rounds until the network quiesces: no messages in flight or
    /// delayed and all nodes idle. All shards are stepped inline; see
    /// [`run_until_quiescent_parallel`](Self::run_until_quiescent_parallel)
    /// for the multicore variant.
    ///
    /// At least one round is always executed, so protocols that initiate
    /// work in round 0 make progress.
    ///
    /// # Errors
    ///
    /// Returns [`MaxRoundsExceeded`] if quiescence is not reached within
    /// `max_rounds` rounds (counted within this call).
    pub fn run_until_quiescent(&mut self, max_rounds: u64) -> Result<RunReport, MaxRoundsExceeded> {
        self.run_inner(max_rounds, Self::step)
    }

    /// [`run_until_quiescent`](Self::run_until_quiescent) with shards
    /// stepped on the rayon pool; bit-identical results.
    ///
    /// # Errors
    ///
    /// Returns [`MaxRoundsExceeded`] if quiescence is not reached within
    /// `max_rounds` rounds.
    pub fn run_until_quiescent_parallel(
        &mut self,
        max_rounds: u64,
    ) -> Result<RunReport, MaxRoundsExceeded>
    where
        M: Send + Sync,
        N: Send,
    {
        self.run_inner(max_rounds, Self::step_parallel)
    }

    fn run_inner(
        &mut self,
        max_rounds: u64,
        mut step: impl FnMut(&mut Self) -> StepReport,
    ) -> Result<RunReport, MaxRoundsExceeded> {
        let mut rounds = 0u64;
        let mut delivered = 0u64;
        loop {
            if rounds >= max_rounds {
                return Err(MaxRoundsExceeded {
                    max_rounds,
                    in_flight: self.in_flight() + self.delayed() + self.retrans.len(),
                });
            }
            let report = step(self);
            rounds += 1;
            delivered += report.delivered as u64;
            if self.in_flight() == 0
                && self.delayed() == 0
                && self.retrans.is_empty()
                && report.active_nodes == 0
            {
                return Ok(RunReport { rounds, delivered });
            }
        }
    }
}

/// One shard's mutable slice of the network during the node-step phase.
struct ShardRun<'a, M, N> {
    start: usize,
    nodes: &'a mut [N],
    send_seq: &'a mut [u64],
    traffic: &'a mut [NodeTraffic],
    ranges: &'a [(usize, usize)],
    slab: &'a [Envelope<M>],
    outbox: &'a mut Vec<Vec<Staged<M>>>,
}

/// Read-only environment shared by every shard during the step phase.
struct StepEnv<'a> {
    round: u64,
    node_count: usize,
    shard_size: usize,
    topology: &'a Topology,
    /// Per-node crash schedules (empty without node faults).
    crash_spans: &'a [Option<(u64, Option<u64>)>],
}

impl StepEnv<'_> {
    /// Whether the node is crashed (and not yet restarted) this round.
    fn down(&self, node: usize) -> bool {
        if self.crash_spans.is_empty() {
            return false;
        }
        match self.crash_spans[node] {
            Some((crash, restart)) => self.round >= crash && restart.is_none_or(|r| self.round < r),
            None => false,
        }
    }

    /// Steps one shard's nodes in id order; returns its active-node count.
    fn run_shard<M, N: Node<M>>(&self, run: &mut ShardRun<'_, M, N>) -> usize {
        let mut active = 0usize;
        for (i, node) in run.nodes.iter_mut().enumerate() {
            // Fail-stop: a downed node executes nothing (its inbox was
            // already discarded during the arena build).
            if self.down(run.start + i) {
                continue;
            }
            let (start, end) = run.ranges[i];
            let inbox = &run.slab[start..end];
            let seq_before = run.send_seq[i];
            let mut ctx = Context::new(
                self.round,
                NodeId(run.start + i),
                self.node_count,
                inbox,
                run.outbox,
                self.shard_size,
                self.topology,
                seq_before,
            );
            if node.on_round(&mut ctx) == Activity::Active {
                active += 1;
            }
            let sent_now = ctx.next_seq - seq_before;
            if sent_now > 0 {
                run.send_seq[i] = ctx.next_seq;
                run.traffic[i].sent += sent_now;
                run.traffic[i].active_send_rounds += 1;
            }
        }
        active
    }
}

/// Routes one outbound message copy through corruption, duplication,
/// drop, and delay gates.
#[allow(clippy::too_many_arguments)]
fn route_one<M>(
    sinks: &mut RouteSinks<'_, M>,
    topology: &Topology,
    node_faults: Option<&NodeFaultState<M>>,
    default_profile: LinkFaults,
    seed: u64,
    cloner: Option<fn(&M) -> M>,
    reliable_cfg: Option<ReliableConfig>,
    round: u64,
    shard_size: usize,
    key: MsgKey,
    mut env: Envelope<M>,
) {
    let profile = topology
        .link_faults(env.from, env.to)
        .copied()
        .unwrap_or(default_profile);
    let straggler = node_faults.map_or(0, |nf| nf.straggler[env.from.0]);
    // Corruption garbles the node's original emission (copy 0) only:
    // duplicates below clone the already-garbled payload, and
    // retransmissions resend the payload exactly as first transmitted.
    if key.copy == 0 {
        if let Some(nf) = node_faults {
            if let Some(garble) = nf.corrupt {
                if nf.plan.corrupts_message(key.from, key.seq) {
                    garble(
                        &mut env.payload,
                        nf.plan.corruption_entropy(key.from, key.seq),
                    );
                    sinks.metrics.messages_corrupted += 1;
                }
            }
        }
    }
    // Reliable links with a punctual sender skip the gate machinery
    // entirely — behavior-identical, since every decision is a pure
    // per-message function with zero probabilities.
    if profile.is_reliable() && straggler == 0 {
        sinks.staging[env.to.0 / shard_size].push((key, env));
        return;
    }
    // The duplicate is decided first, from the original's RNG, so it
    // exists independently of the original's drop/delay fate; both copies
    // then pass the gates independently.
    let mut rng = message_rng(seed, key);
    let dup_draw = rng.gen::<f64>();
    let copy = if dup_draw < profile.dup_prob {
        // Invariant: duplication faults are only reachable through
        // `with_faults`/`with_link_model`, both of which capture a cloner.
        #[allow(clippy::expect_used)]
        // xtask:allow(unwrap-audit): duplication faults are only reachable through with_faults/with_link_model, which both capture a cloner
        let cloner = cloner.expect("duplication faults require a payload cloner (with_faults)");
        sinks.metrics.messages_duplicated += 1;
        Some((
            MsgKey {
                copy: key.copy | 1,
                ..key
            },
            Envelope {
                from: env.from,
                to: env.to,
                payload: cloner(&env.payload),
            },
        ))
    } else {
        None
    };
    gate_copy(
        sinks,
        rng,
        &profile,
        straggler,
        reliable_cfg,
        round,
        shard_size,
        key,
        env,
    );
    if let Some((ckey, cenv)) = copy {
        let mut crng = message_rng(seed, ckey);
        let _ = crng.gen::<f64>(); // dup slot, unused on copies
        gate_copy(
            sinks,
            crng,
            &profile,
            straggler,
            reliable_cfg,
            round,
            shard_size,
            ckey,
            cenv,
        );
    }
}

/// Applies drop and delay gates to one message copy and stages it. A
/// dropped reliable original schedules a retransmission (duplicate copies
/// are best-effort bonus traffic and never retransmitted).
#[allow(clippy::too_many_arguments)]
fn gate_copy<M>(
    sinks: &mut RouteSinks<'_, M>,
    mut rng: SmallRng,
    profile: &LinkFaults,
    straggler_extra: u64,
    reliable_cfg: Option<ReliableConfig>,
    round: u64,
    shard_size: usize,
    key: MsgKey,
    env: Envelope<M>,
) {
    // Both gate draws happen unconditionally, before the data-dependent
    // drop return below, so the per-message stream consumes a fixed number
    // of variates regardless of the drop outcome. Surviving copies see the
    // same (drop, delay) values in the same order as before; dropped
    // copies burn one extra variate from an rng that is discarded here.
    let drop_draw = rng.gen::<f64>();
    let delay_draw = if profile.max_delay > 0 {
        rng.gen_range(0..=profile.max_delay)
    } else {
        0
    };
    if drop_draw < profile.drop_prob {
        sinks.metrics.messages_dropped += 1;
        if let Some(rc) = reliable_cfg {
            if key.reliable && key.copy & 1 == 0 && (key.copy >> 1) < rc.max_retries() {
                let due = round + rc.backoff(key.copy >> 1);
                sinks.retrans.push((
                    due,
                    MsgKey {
                        copy: key.copy + 2,
                        ..key
                    },
                    env,
                ));
            }
        }
        return;
    }
    let extra = straggler_extra + delay_draw;
    let dst = env.to.0 / shard_size;
    if extra > 0 {
        sinks.metrics.messages_delayed += 1;
        sinks.delayed[dst].push((round + 1 + extra, key, env));
    } else {
        sinks.staging[dst].push((key, env));
    }
}

/// Moves every element of `items` to the index `perm` assigns it, in
/// place, consuming `perm` as scratch. `perm` must be a permutation of
/// `0..items.len()`.
fn apply_permutation<T>(items: &mut [T], perm: &mut [u32]) {
    debug_assert_eq!(items.len(), perm.len());
    for i in 0..items.len() {
        while perm[i] as usize != i {
            let j = perm[i] as usize;
            items.swap(i, j);
            perm.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Node that floods a fixed payload to everyone in round 0 and counts
    /// what it receives.
    struct Flood {
        received: usize,
    }

    impl Node<u8> for Flood {
        fn on_round(&mut self, ctx: &mut Context<'_, u8>) -> Activity {
            if ctx.round() == 0 {
                for peer in 0..ctx.node_count() {
                    if peer != ctx.id().0 {
                        ctx.send(NodeId(peer), 1);
                    }
                }
            }
            self.received += ctx.inbox().len();
            Activity::Idle
        }
    }

    fn flood_net(n: usize) -> Network<u8, Flood> {
        Network::new((0..n).map(|_| Flood { received: 0 }).collect())
    }

    #[test]
    fn flood_delivers_all_pairs() {
        let mut net = flood_net(5);
        let report = net.run_until_quiescent(10).unwrap();
        assert_eq!(report.rounds, 2);
        assert_eq!(net.metrics().messages_sent, 20);
        assert_eq!(net.metrics().messages_delivered, 20);
        for node in net.nodes() {
            assert_eq!(node.received, 4);
        }
    }

    #[test]
    fn metrics_track_bytes_and_peak() {
        let mut net = flood_net(3);
        net.run_until_quiescent(10).unwrap();
        assert_eq!(net.metrics().payload_bytes_sent, 6); // 6 messages × 1 byte
        assert_eq!(net.metrics().peak_in_flight, 6);
    }

    #[test]
    fn per_node_traffic_is_tracked() {
        let mut net = flood_net(4);
        net.run_until_quiescent(10).unwrap();
        for t in net.traffic() {
            assert_eq!(t.sent, 3);
            assert_eq!(t.received, 3);
            assert_eq!(t.active_send_rounds, 1);
        }
    }

    #[test]
    fn dropped_messages_do_not_count_as_received() {
        let cfg = FaultConfig::new(1.0, 0.0, 1).unwrap();
        let mut net = Network::with_faults((0..3).map(|_| Flood { received: 0 }).collect(), cfg);
        net.run_until_quiescent(10).unwrap();
        for t in net.traffic() {
            assert_eq!(t.sent, 2);
            assert_eq!(t.received, 0);
        }
    }

    #[test]
    fn empty_network_quiesces_immediately() {
        let mut net: Network<u8, Flood> = Network::new(vec![]);
        let report = net.run_until_quiescent(5).unwrap();
        assert_eq!(report.rounds, 1);
        assert!(net.is_empty());
    }

    #[test]
    fn max_rounds_is_enforced() {
        /// A node that stays active forever.
        struct Restless;
        impl Node<u8> for Restless {
            fn on_round(&mut self, _ctx: &mut Context<'_, u8>) -> Activity {
                Activity::Active
            }
        }
        let mut net = Network::new(vec![Restless]);
        let err = net.run_until_quiescent(7).unwrap_err();
        assert_eq!(err.max_rounds, 7);
        assert_eq!(err.in_flight, 0);
        assert!(err.to_string().contains("did not quiesce"));
    }

    #[test]
    fn drop_all_faults_suppress_delivery() {
        let cfg = FaultConfig::new(1.0, 0.0, 1).unwrap();
        let mut net = Network::with_faults((0..4).map(|_| Flood { received: 0 }).collect(), cfg);
        net.run_until_quiescent(10).unwrap();
        assert_eq!(net.metrics().messages_dropped, 12);
        assert_eq!(net.metrics().messages_delivered, 0);
        for node in net.nodes() {
            assert_eq!(node.received, 0);
        }
    }

    #[test]
    fn duplicate_all_faults_double_delivery() {
        let cfg = FaultConfig::new(0.0, 1.0, 1).unwrap();
        let mut net = Network::with_faults((0..3).map(|_| Flood { received: 0 }).collect(), cfg);
        net.run_until_quiescent(10).unwrap();
        assert_eq!(net.metrics().messages_duplicated, 6);
        for node in net.nodes() {
            assert_eq!(node.received, 4); // 2 senders × 2 copies
        }
    }

    /// The drop gate applies to every copy independently: with certain
    /// duplication *and* certain loss, every original is duplicated and
    /// every copy (original + duplicate) is dropped. The old engine
    /// short-circuited duplication behind the drop gate and never dropped
    /// the copy, under-applying `drop_prob`.
    #[test]
    fn duplicates_pass_the_drop_gate_independently() {
        let cfg = FaultConfig::new(1.0, 1.0, 3).unwrap();
        let mut net = Network::with_faults((0..4).map(|_| Flood { received: 0 }).collect(), cfg);
        net.run_until_quiescent(10).unwrap();
        let m = net.metrics();
        assert_eq!(m.messages_sent, 12);
        assert_eq!(m.messages_duplicated, 12);
        assert_eq!(m.messages_dropped, 24);
        assert_eq!(m.messages_delivered, 0);
        assert!(m.conserves(net.in_flight(), net.delayed()));
    }

    /// Under partial drop + duplication, the per-copy survival rate is
    /// (1 − p_drop) for originals *and* duplicates, so the delivery count
    /// concentrates near sent · (1 + p_dup)(1 − p_drop).
    #[test]
    fn drop_rate_applies_to_duplicates_in_aggregate() {
        let cfg = FaultConfig::new(0.5, 1.0, 11).unwrap();
        let n = 40;
        let mut net = Network::with_faults((0..n).map(|_| Flood { received: 0 }).collect(), cfg);
        net.run_until_quiescent(10).unwrap();
        let m = net.metrics();
        let sent = m.messages_sent as f64;
        assert_eq!(m.messages_duplicated as f64, sent);
        // 2 · sent copies, each dropped with probability 0.5.
        let copies = 2.0 * sent;
        assert!(
            (m.messages_dropped as f64 - copies / 2.0).abs() < copies / 8.0,
            "dropped {} of {copies} copies",
            m.messages_dropped
        );
        assert!(m.conserves(net.in_flight(), net.delayed()));
    }

    #[test]
    fn fault_rng_is_deterministic() {
        let run = |seed: u64| {
            let cfg = FaultConfig::new(0.5, 0.0, seed).unwrap();
            let mut net =
                Network::with_faults((0..10).map(|_| Flood { received: 0 }).collect(), cfg);
            net.run_until_quiescent(10).unwrap();
            net.metrics().messages_dropped
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn messages_deliver_in_sender_order() {
        /// Node 0 sends a sequence to node 1; node 1 records payload order.
        struct Seq {
            log: Vec<u8>,
        }
        impl Node<u8> for Seq {
            fn on_round(&mut self, ctx: &mut Context<'_, u8>) -> Activity {
                if ctx.round() == 0 && ctx.id().0 == 0 {
                    for v in 0..5 {
                        ctx.send(NodeId(1), v);
                    }
                }
                for env in ctx.inbox() {
                    self.log.push(env.payload);
                }
                Activity::Idle
            }
        }
        let mut net = Network::new(vec![Seq { log: vec![] }, Seq { log: vec![] }]);
        net.run_until_quiescent(5).unwrap();
        assert_eq!(net.node(NodeId(1)).log, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_to_invalid_node_panics() {
        struct Bad;
        impl Node<u8> for Bad {
            fn on_round(&mut self, ctx: &mut Context<'_, u8>) -> Activity {
                ctx.send(NodeId(99), 0);
                Activity::Idle
            }
        }
        let mut net = Network::new(vec![Bad]);
        net.step();
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn send_across_missing_link_panics() {
        struct Hop;
        impl Node<u8> for Hop {
            fn on_round(&mut self, ctx: &mut Context<'_, u8>) -> Activity {
                ctx.send(NodeId(2), 0); // ring(4): 0 → 2 is not an edge
                Activity::Idle
            }
        }
        let mut net = Network::new(vec![Hop, Hop, Hop, Hop]).with_topology(Topology::ring(4));
        net.step();
    }

    #[test]
    fn into_nodes_returns_final_state() {
        let mut net = flood_net(2);
        net.run_until_quiescent(5).unwrap();
        let nodes = net.into_nodes();
        assert_eq!(nodes.len(), 2);
        assert!(nodes.iter().all(|n| n.received == 1));
    }

    #[test]
    fn step_report_fields() {
        let mut net = flood_net(3);
        let r0 = net.step();
        assert_eq!(r0.round, 0);
        assert_eq!(r0.delivered, 0);
        assert_eq!(r0.sent, 6);
        let r1 = net.step();
        assert_eq!(r1.round, 1);
        assert_eq!(r1.delivered, 6);
        assert_eq!(r1.sent, 0);
    }

    /// Delayed messages are eventually delivered, totals balance, and the
    /// network still quiesces.
    #[test]
    fn delay_faults_deliver_eventually() {
        let faults = FaultConfig::new(0.0, 0.0, 5).unwrap().with_max_delay(4);
        let nodes = (0..5).map(|_| Flood { received: 0 }).collect();
        let mut net: Network<u8, Flood> = Network::with_faults(nodes, faults);
        let report = net.run_until_quiescent(50).unwrap();
        assert_eq!(net.metrics().messages_sent, 20);
        assert_eq!(net.metrics().messages_delivered, 20);
        assert!(net.metrics().messages_delayed > 0, "no message was delayed");
        assert!(report.rounds > 2, "delays must stretch the run");
        assert_eq!(net.delayed(), 0);
        for node in net.nodes() {
            assert_eq!(node.received, 4);
        }
    }

    /// Delay composes with duplication: every copy arrives exactly once
    /// per duplication decision.
    #[test]
    fn delay_composes_with_duplication() {
        let faults = FaultConfig::new(0.0, 1.0, 9).unwrap().with_max_delay(2);
        let nodes = (0..3).map(|_| Flood { received: 0 }).collect();
        let mut net: Network<u8, Flood> = Network::with_faults(nodes, faults);
        net.run_until_quiescent(30).unwrap();
        // 6 sends, each duplicated once → 12 deliveries.
        assert_eq!(net.metrics().messages_delivered, 12);
        for node in net.nodes() {
            assert_eq!(node.received, 4);
        }
    }

    /// A node that sends a numbered burst to node 0 every round for three
    /// rounds; node 0 logs (sender, counter) pairs per round.
    struct Burst {
        counter: u8,
        log: Vec<Vec<(usize, u8)>>,
    }
    impl Node<(usize, u8)> for Burst {
        fn on_round(&mut self, ctx: &mut Context<'_, (usize, u8)>) -> Activity {
            if !ctx.inbox().is_empty() {
                self.log
                    .push(ctx.inbox().iter().map(|e| e.payload).collect());
            }
            if ctx.id().0 != 0 && ctx.round() < 3 {
                for _ in 0..2 {
                    ctx.send(NodeId(0), (ctx.id().0, self.counter));
                    self.counter += 1;
                }
                return Activity::Active;
            }
            Activity::Idle
        }
    }

    fn burst_net(faults: Option<FaultConfig>, shards: usize) -> Network<(usize, u8), Burst> {
        let nodes: Vec<Burst> = (0..5)
            .map(|_| Burst {
                counter: 0,
                log: Vec::new(),
            })
            .collect();
        let net = match faults {
            None => Network::new(nodes),
            Some(cfg) => Network::with_faults(nodes, cfg),
        };
        net.with_shards(shards)
    }

    /// Regression for the delayed-delivery ordering bug: delayed messages
    /// used to be appended to inboxes in fault-RNG draw order, violating
    /// the documented (sender, send-seq) contract. Every per-round inbox
    /// must now be sorted by (sender, send counter), and a delayed run
    /// must replay identically.
    #[test]
    fn delayed_deliveries_merge_in_sender_seq_order() {
        let faults = FaultConfig::new(0.0, 0.0, 41).unwrap().with_max_delay(3);
        let run = || {
            let mut net = burst_net(Some(faults), 1);
            net.run_until_quiescent(30).unwrap();
            assert!(net.metrics().messages_delayed > 0, "no delays drawn");
            net.node(NodeId(0)).log.clone()
        };
        let log = run();
        for (r, inbox) in log.iter().enumerate() {
            for w in inbox.windows(2) {
                assert!(
                    w[0] < w[1],
                    "round {r}: inbox not sorted by (sender, seq): {inbox:?}"
                );
            }
        }
        assert_eq!(log, run(), "delayed run did not replay identically");
    }

    /// The engine's core determinism claim: identical delivery logs and
    /// metrics for any shard count, with and without faults.
    #[test]
    fn output_is_bit_identical_across_shard_counts() {
        let configs: [Option<FaultConfig>; 2] = [
            None,
            Some(FaultConfig::new(0.2, 0.3, 7).unwrap().with_max_delay(2)),
        ];
        for faults in configs {
            let run = |shards: usize| {
                let mut net = burst_net(faults, shards);
                net.run_until_quiescent(40).unwrap();
                (
                    net.node(NodeId(0)).log.clone(),
                    *net.metrics(),
                    net.traffic().to_vec(),
                )
            };
            let reference = run(1);
            for shards in [2usize, 3, 5, 8] {
                assert_eq!(run(shards), reference, "shards={shards}");
            }
        }
    }

    /// Sequential and parallel stepping agree bit-for-bit.
    #[test]
    fn parallel_step_matches_sequential() {
        let faults = FaultConfig::new(0.1, 0.2, 13).unwrap().with_max_delay(1);
        let mut seq = burst_net(Some(faults), 4);
        let mut par = burst_net(Some(faults), 4);
        loop {
            let a = seq.step();
            let b = par.step_parallel();
            assert_eq!(a, b);
            if seq.in_flight() == 0 && seq.delayed() == 0 && a.active_nodes == 0 {
                break;
            }
        }
        assert_eq!(seq.node(NodeId(0)).log, par.node(NodeId(0)).log);
        assert_eq!(seq.metrics(), par.metrics());
    }

    /// Per-link fault overrides: a single dead link drops exactly its own
    /// traffic.
    #[test]
    fn link_fault_override_kills_one_link() {
        let dead = LinkFaults {
            drop_prob: 1.0,
            dup_prob: 0.0,
            max_delay: 0,
        };
        let topology = Topology::complete(4).with_link_faults(NodeId(0), NodeId(1), dead);
        let nodes: Vec<Flood> = (0..4).map(|_| Flood { received: 0 }).collect();
        let mut net =
            Network::with_link_model(nodes, topology, FaultConfig::new(0.0, 0.0, 1).unwrap());
        net.run_until_quiescent(10).unwrap();
        assert_eq!(net.metrics().messages_dropped, 1);
        assert_eq!(net.node(NodeId(1)).received, 2); // lost exactly 0 → 1
        assert_eq!(net.node(NodeId(0)).received, 3);
        assert_eq!(net.node(NodeId(2)).received, 3);
    }

    #[test]
    fn ring_topology_restricts_and_serves_neighbors() {
        /// Sends its id to every neighbor each of the first two rounds.
        struct NeighborCount {
            received: usize,
        }
        impl Node<u64> for NeighborCount {
            fn on_round(&mut self, ctx: &mut Context<'_, u64>) -> Activity {
                self.received += ctx.inbox().len();
                if ctx.round() < 2 {
                    for i in 0..ctx.degree() {
                        let peer = ctx.neighbor(i);
                        ctx.send(peer, ctx.id().0 as u64);
                    }
                    return Activity::Active;
                }
                Activity::Idle
            }
        }
        let nodes: Vec<NeighborCount> = (0..6).map(|_| NeighborCount { received: 0 }).collect();
        let mut net = Network::new(nodes)
            .with_topology(Topology::ring(6))
            .with_shards(3);
        net.run_until_quiescent(10).unwrap();
        for (i, node) in net.nodes().iter().enumerate() {
            assert_eq!(node.received, 4, "node {i}"); // 2 neighbors × 2 rounds
        }
    }

    #[test]
    fn apply_permutation_moves_to_targets() {
        let mut items = vec!['a', 'b', 'c', 'd', 'e'];
        let mut perm = vec![2u32, 0, 4, 1, 3];
        apply_permutation(&mut items, &mut perm);
        assert_eq!(items, vec!['b', 'd', 'a', 'e', 'c']);
    }

    #[test]
    fn message_rng_distinguishes_copies() {
        let key = |copy: u16| MsgKey {
            from: 1,
            seq: 5,
            copy,
            reliable: false,
        };
        let draw = |copy: u16| message_rng(99, key(copy)).gen::<u64>();
        assert_ne!(draw(0), draw(1));
        // Retransmission attempts redraw fresh decisions.
        assert_ne!(draw(0), draw(2));
        assert_ne!(draw(2), draw(4));
        // The reliable flag never shifts the fault mapping.
        let mut reliable = key(0);
        reliable.reliable = true;
        assert_eq!(draw(0), message_rng(99, reliable).gen::<u64>());
    }

    /// Nodes that crash before their send round go silent; deliveries to
    /// a downed node are counted as lost-to-crash and conservation holds.
    #[test]
    fn crashed_nodes_lose_traffic_and_conserve() {
        // All 4 nodes crash at round 1 permanently: round-0 floods are
        // sent, but every delivery (due round 1) is lost.
        let plan = NodeFaultPlan::new(5).with_crashes(1.0, (1, 1)).unwrap();
        let nodes: Vec<Flood> = (0..4).map(|_| Flood { received: 0 }).collect();
        let mut net: Network<u8, Flood> = Network::new(nodes).with_node_faults(plan);
        net.run_until_quiescent(10).unwrap();
        let m = *net.metrics();
        assert_eq!(m.messages_sent, 12);
        assert_eq!(m.messages_lost_to_crash, 12);
        assert_eq!(m.messages_delivered, 0);
        assert_eq!(m.node_crashes, 4);
        assert_eq!(m.node_restarts, 0);
        assert!(m.conserves(net.in_flight(), net.delayed()));
        for node in net.nodes() {
            assert_eq!(node.received, 0);
        }
    }

    /// A node with a restart schedule gets `on_restart` called and is
    /// stepped again after the outage.
    #[test]
    fn restart_wipes_state_and_resumes_stepping() {
        /// Records every round it executes plus restart notifications.
        struct Diary {
            rounds: Vec<u64>,
            restarts: Vec<u64>,
        }
        impl Node<u8> for Diary {
            fn on_round(&mut self, ctx: &mut Context<'_, u8>) -> Activity {
                self.rounds.push(ctx.round());
                if ctx.round() < 8 {
                    Activity::Active
                } else {
                    Activity::Idle
                }
            }
            fn on_restart(&mut self, round: u64) {
                self.restarts.push(round);
                self.rounds.clear(); // wiped state
            }
        }
        let plan = NodeFaultPlan::new(3)
            .with_crashes(1.0, (2, 2))
            .unwrap()
            .with_restarts(3);
        let nodes = vec![Diary {
            rounds: vec![],
            restarts: vec![],
        }];
        let mut net: Network<u8, Diary> = Network::new(nodes).with_node_faults(plan);
        for _ in 0..9 {
            net.step();
        }
        let diary = net.node(NodeId(0));
        assert_eq!(diary.restarts, vec![5]);
        // Rounds 2–4 skipped (down), state wiped at 5, then 5..=8 run.
        assert_eq!(diary.rounds, vec![5, 6, 7, 8]);
        assert_eq!(net.metrics().node_crashes, 1);
        assert_eq!(net.metrics().node_restarts, 1);
    }

    /// Straggler senders delay *all* their traffic by the configured
    /// extra rounds; everything still arrives and conservation holds.
    #[test]
    fn stragglers_delay_but_deliver() {
        let plan = NodeFaultPlan::new(8).with_stragglers(1.0, 3).unwrap();
        let nodes: Vec<Flood> = (0..4).map(|_| Flood { received: 0 }).collect();
        let mut net: Network<u8, Flood> = Network::new(nodes).with_node_faults(plan);
        let report = net.run_until_quiescent(20).unwrap();
        assert_eq!(net.metrics().messages_delivered, 12);
        assert_eq!(net.metrics().messages_delayed, 12);
        assert!(report.rounds >= 4, "straggler delay must stretch the run");
        assert!(net.metrics().conserves(net.in_flight(), net.delayed()));
        for node in net.nodes() {
            assert_eq!(node.received, 3);
        }
    }

    /// Corruptor nodes garble payloads deterministically; the messages
    /// still arrive (corruption is not loss) and are counted.
    #[test]
    fn corruptors_garble_payloads_deterministically() {
        let run = || {
            let plan = NodeFaultPlan::new(6).with_corruption(1.0, 0.5).unwrap();
            let nodes: Vec<Flood> = (0..4).map(|_| Flood { received: 0 }).collect();
            let mut net: Network<u8, Flood> = Network::new(nodes)
                .with_node_faults(plan)
                .with_corruptor(|payload, entropy| *payload ^= entropy as u8);
            net.run_until_quiescent(10).unwrap();
            (
                net.metrics().messages_corrupted,
                net.nodes().iter().map(|n| n.received).collect::<Vec<_>>(),
            )
        };
        let (corrupted, received) = run();
        assert!(corrupted > 0, "some payloads must be garbled");
        assert!(corrupted < 12, "per-message draw should not garble all");
        assert_eq!(received, vec![3, 3, 3, 3], "corruption is not loss");
        assert_eq!(run(), (corrupted, received), "must replay identically");
    }

    #[test]
    #[should_panic(expected = "no payload garbler")]
    fn corruption_without_garbler_panics() {
        let plan = NodeFaultPlan::new(1).with_corruption(0.5, 0.5).unwrap();
        let mut net: Network<u8, Flood> =
            Network::new(vec![Flood { received: 0 }]).with_node_faults(plan);
        net.step();
    }

    /// The reliability layer retransmits a dropped reliable message until
    /// it gets through, with the retry budget bounding the attempts.
    #[test]
    fn reliable_sends_survive_heavy_loss() {
        /// Node 0 reliably sends one payload to node 1 in round 0.
        struct OneShot {
            got: Vec<u8>,
        }
        impl Node<u8> for OneShot {
            fn on_round(&mut self, ctx: &mut Context<'_, u8>) -> Activity {
                if ctx.round() == 0 && ctx.id().0 == 0 {
                    ctx.send_reliable(NodeId(1), 42);
                }
                for env in ctx.inbox() {
                    self.got.push(env.payload);
                }
                Activity::Idle
            }
        }
        // Find a seed where the first two copies drop but a retry lands.
        let outcome = |seed: u64, retries: u16| {
            let cfg = FaultConfig::new(0.7, 0.0, seed).unwrap();
            let nodes = vec![OneShot { got: vec![] }, OneShot { got: vec![] }];
            let mut net =
                Network::with_faults(nodes, cfg).with_reliability(ReliableConfig::new(2, retries));
            // Budget covers the full exponential backoff chain:
            // 2 + 4 + … + 64 ≈ 126 rounds for six retries.
            net.run_until_quiescent(200).unwrap();
            (
                net.node(NodeId(1)).got.clone(),
                net.metrics().messages_retransmitted,
            )
        };
        let mut saw_retry_success = false;
        for seed in 0..40 {
            let (got, retrans) = outcome(seed, 6);
            if !got.is_empty() && retrans > 0 {
                saw_retry_success = true;
                assert_eq!(got, vec![42]);
            }
        }
        assert!(saw_retry_success, "no seed exercised a successful retry");
        // Budget of zero retries: the drop (if any) is final.
        for seed in 0..10 {
            let (_, retrans) = outcome(seed, 0);
            assert_eq!(retrans, 0);
        }
    }

    /// Retransmissions keep the conservation identity: lost copies are
    /// accounted when lost, resends count as fresh sends.
    #[test]
    fn reliability_preserves_conservation() {
        struct Chatty;
        impl Node<u8> for Chatty {
            fn on_round(&mut self, ctx: &mut Context<'_, u8>) -> Activity {
                if ctx.round() < 3 {
                    for peer in 0..ctx.node_count() {
                        if peer != ctx.id().0 {
                            ctx.send_reliable(NodeId(peer), ctx.round() as u8);
                        }
                    }
                    return Activity::Active;
                }
                Activity::Idle
            }
        }
        let cfg = FaultConfig::new(0.4, 0.2, 19).unwrap().with_max_delay(2);
        let nodes: Vec<Chatty> = (0..6).map(|_| Chatty).collect();
        let mut net = Network::with_faults(nodes, cfg)
            .with_reliability(ReliableConfig::new(1, 3))
            .with_shards(2);
        for _ in 0..40 {
            net.step_parallel();
            assert!(
                net.metrics().conserves(net.in_flight(), net.delayed()),
                "conservation violated: {:?} in_flight={} delayed={} retrans={}",
                net.metrics(),
                net.in_flight(),
                net.delayed(),
                net.pending_retransmissions()
            );
        }
        assert!(net.metrics().messages_retransmitted > 0);
        assert_eq!(net.pending_retransmissions(), 0, "budget must exhaust");
    }
}
