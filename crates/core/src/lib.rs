//! The pooled-data model and reconstruction algorithms of *“Distributed
//! Reconstruction of Noisy Pooled Data”* (Hahn-Klimroth & Kaaser, ICDCS
//! 2022).
//!
//! # The problem
//!
//! `n` agents hold hidden bits `σ ∈ {0,1}ⁿ`; exactly `k` agents hold bit
//! one. Each of `m` query nodes draws `Γ = n/2` agents uniformly at random
//! *with replacement* and reports the (noisy) sum of the drawn bits. The
//! goal is to reconstruct `σ` from the query results.
//!
//! Two noise models from the paper:
//!
//! * [`NoiseModel::channel`] — per-edge bit flips: a one reads as zero with
//!   probability `p`, a zero reads as one with probability `q`
//!   ([`NoiseModel::z_channel`] is `q = 0`).
//! * [`NoiseModel::gaussian`] — each query result is perturbed by
//!   independent `N(0, λ²)` noise.
//!
//! # The algorithm
//!
//! Algorithm 1 (the *noisy maximum neighborhood* rule): each query sends its
//! result once to every distinct member; agent `i` accumulates the
//! neighborhood sum `Ψᵢ` and its distinct degree `Δ*ᵢ`, and the `k` agents
//! with the largest scores `Ψᵢ − Δ*ᵢ·k/2` declare bit one. Three
//! implementations are provided, all bit-identical in their output:
//!
//! * [`GreedyDecoder`] — the sequential reference decoder;
//! * [`distributed::run_protocol`] — the full message-passing protocol on
//!   `npd-netsim`, with the agents sorting themselves through a Batcher
//!   sorting network from `npd-sortnet`;
//! * [`IncrementalSim`] — an `O(n)`-memory query-by-query simulation used to
//!   measure the *required number of queries* exactly as Section V of the
//!   paper describes.
//!
//! # The design layer
//!
//! The paper fixes one pooling design (i.i.d. `Γ`-regular queries, its
//! model section); the follow-up literature shows the design matrix is the
//! main lever for query efficiency. The [`design`] module therefore makes
//! the design pluggable: the [`PoolingDesign`] trait samples a
//! [`PoolingGraph`] from `(n, m, Γ, rng)` and reports metadata, with four
//! schemes behind it ([`IidDesign`], [`DoublyRegularDesign`],
//! [`SparseColumnDesign`], [`SpatiallyCoupledDesign`]) plus the
//! serializable [`DesignSpec`] selector that [`Instance`] and the
//! experiment harness's scenario registry carry. All decoders consume the
//! sampled [`Run`] and are design-agnostic; score centerings use per-query
//! slot counts, so designs with ±1-balanced (ragged) pool sizes decode
//! exactly.
//!
//! # Examples
//!
//! ```
//! use npd_core::{Decoder, GreedyDecoder, Instance, NoiseModel, Regime};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let instance = Instance::builder(400)
//!     .regime(Regime::sublinear(0.25))
//!     .noise(NoiseModel::z_channel(0.1))
//!     .queries(350)
//!     .build()?;
//! let run = instance.sample(&mut rng);
//! let estimate = GreedyDecoder::new().decode(&run);
//! assert_eq!(estimate.ones(), run.ground_truth().ones());
//! # Ok::<(), npd_core::InstanceError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod categorical;
pub mod design;
pub mod distributed;
pub mod estimation;
pub mod evaluate;
pub mod greedy;
pub mod incremental;
pub mod model;
pub mod noise;
pub mod twostep;

pub use categorical::{
    category_slots, label_accuracy, measure_categorical, CategoricalInstance, CategoricalRun,
    CategoricalTruth,
};
pub use design::{
    DesignProfile, DesignSpec, DoublyRegularDesign, IidDesign, PoolingDesign, PoolingGraph,
    QueryMultiset, Sampling, SparseColumnDesign, SpatiallyCoupledDesign,
};
pub use evaluate::{confusion, exact_recovery, hamming_distance, overlap, separation, Confusion};
pub use greedy::{Centering, Decoder, Estimate, GreedyDecoder, GreedyWorkspace};
pub use incremental::{IncrementalSim, RequiredQueries};
pub use model::{GroundTruth, Instance, InstanceBuilder, InstanceError, Regime, Run};
pub use noise::NoiseModel;
pub use twostep::TwoStepDecoder;
