//! Categorical (d-ary) pooled data: the hidden-state generalization of
//! ROADMAP item 3, following "Approximate Message Passing with Rigorous
//! Guarantees for Pooled Data and Quantitative Group Testing" (Tan,
//! Pascual Cobo, Scarlett, Venkataramanan 2023).
//!
//! Each agent holds one of `d` labels — category `0` is the
//! healthy/background class, categories `1..d` are the strains — with
//! exactly `k_c` agents of strain `c`. A query still pools `Γ` slots drawn
//! by any [`PoolingDesign`]; the measurement reports the (noisy)
//! per-category slot counts instead of a single sum. The pooling layer is
//! untouched: the same [`PoolingGraph`] serves both the binary and the
//! categorical model, so every design (and the incremental simulator)
//! stays label-agnostic.
//!
//! # The d = 2 bit-compatibility contract
//!
//! Binary pooled data is the categorical model with a single strain, and
//! the correspondence is exact down to the RNG stream, not merely in
//! distribution:
//!
//! * [`CategoricalTruth::sample`] performs the *identical* partial
//!   Fisher–Yates draw sequence as [`GroundTruth::sample`], so at `d = 2`
//!   [`CategoricalTruth::to_binary`] reproduces the binary truth
//!   byte-for-byte from the same seed;
//! * [`NoiseModel::measure_categorical`] consumes the stream of
//!   [`NoiseModel::measure`] draw-for-draw at `d = 2`;
//! * [`CategoricalInstance::sample`] orders truth → graph → measurements
//!   exactly as [`Instance::sample`] does.
//!
//! `tests/determinism.rs` and the FNV pins in `tests/amp_baseline.rs`
//! enforce this contract; any refactor that moves a draw breaks them.

use crate::design::{DesignSpec, PoolingDesign, PoolingGraph, QueryMultiset};
use crate::model::{GroundTruth, Instance, InstanceError};
use crate::noise::NoiseModel;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The hidden categorical assignment: one label in `0..d` per agent, with
/// exact per-category counts.
///
/// Sampled uniformly among all assignments with the prescribed counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoricalTruth {
    labels: Vec<u8>,
    counts: Vec<usize>,
}

impl CategoricalTruth {
    /// Samples a uniform assignment with exactly `strain_counts[c-1]`
    /// agents of strain `c` (category `0` takes the remainder).
    ///
    /// The selection is the same partial Fisher–Yates shuffle as
    /// [`GroundTruth::sample`] run for `k = Σ strain_counts` steps; the
    /// first `k_1` selected agents become strain 1, the next `k_2` strain
    /// 2, and so on. Because the shuffle produces a uniformly random
    /// *ordered* sequence of distinct agents, the induced labeling is
    /// uniform — and at a single strain the draw sequence is byte-identical
    /// to the binary sampler.
    ///
    /// # Panics
    ///
    /// Panics if `strain_counts` is empty or has more than 255 strains, if
    /// the counts sum above `n`, or if `n` exceeds `u32::MAX`.
    pub fn sample<R: Rng + ?Sized>(n: usize, strain_counts: &[usize], rng: &mut R) -> Self {
        assert!(
            !strain_counts.is_empty(),
            "CategoricalTruth::sample: need at least one strain"
        );
        assert!(
            strain_counts.len() <= u8::MAX as usize,
            "CategoricalTruth::sample: more than 255 strains"
        );
        let k_total: usize = strain_counts.iter().sum();
        assert!(
            k_total <= n,
            "CategoricalTruth::sample: strain counts sum to {k_total}, exceeding n={n}"
        );
        assert!(
            n <= u32::MAX as usize,
            "CategoricalTruth::sample: n={n} exceeds u32 range"
        );
        // Identical draw sequence to GroundTruth::sample(n, k_total, _).
        let mut idx: Vec<u32> = (0..n as u32).collect();
        for i in 0..k_total {
            let j = rng.gen_range(i..n);
            idx.swap(i, j);
        }
        let mut labels = vec![0u8; n];
        let mut cursor = 0usize;
        for (strain, &count) in strain_counts.iter().enumerate() {
            for &agent in &idx[cursor..cursor + count] {
                labels[agent as usize] = strain as u8 + 1;
            }
            cursor += count;
        }
        let mut counts = vec![n - k_total];
        counts.extend_from_slice(strain_counts);
        Self { labels, counts }
    }

    /// Builds a truth from an explicit label vector over `d` categories.
    ///
    /// # Panics
    ///
    /// Panics if `d < 2`, `d > 256`, or any label is `≥ d`.
    pub fn from_labels(d: usize, labels: Vec<u8>) -> Self {
        assert!(
            (2..=256).contains(&d),
            "CategoricalTruth: d={d} out of range"
        );
        let mut counts = vec![0usize; d];
        for &l in &labels {
            assert!(
                (l as usize) < d,
                "CategoricalTruth: label {l} out of range for d={d}"
            );
            counts[l as usize] += 1;
        }
        Self { labels, counts }
    }

    /// Population size `n`.
    pub fn n(&self) -> usize {
        self.labels.len()
    }

    /// Number of categories `d` (strains plus background).
    pub fn d(&self) -> usize {
        self.counts.len()
    }

    /// The label of agent `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn label(&self, i: usize) -> u8 {
        self.labels[i]
    }

    /// The raw label vector.
    pub fn labels(&self) -> &[u8] {
        &self.labels
    }

    /// Per-category agent counts `[k_0, k_1, …, k_{d−1}]` (index 0 is the
    /// background class).
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total number of strain agents `k = Σ_{c≥1} k_c`.
    pub fn k_total(&self) -> usize {
        self.counts[1..].iter().sum()
    }

    /// Collapses to the binary truth: any strain label becomes bit one.
    ///
    /// At `d = 2` this reproduces `GroundTruth::sample(n, k, rng)` from the
    /// same seed byte-for-byte (the bit-compatibility contract).
    pub fn to_binary(&self) -> GroundTruth {
        GroundTruth::from_bits(self.labels.iter().map(|&l| l != 0).collect())
    }
}

/// Per-category slot counts of a query under a categorical truth: entry
/// `c` is the number of the query's `Γ` slots landing on category-`c`
/// agents (with multiplicity).
///
/// The categorical analogue of [`QueryMultiset::one_slots`]; entries sum
/// to the query's total slot count.
///
/// # Panics
///
/// Panics if an agent id is out of range for `truth`.
pub fn category_slots(query: &QueryMultiset, truth: &CategoricalTruth) -> Vec<u64> {
    let mut slots = vec![0u64; truth.d()];
    for (agent, count) in query.iter() {
        slots[truth.label(agent as usize) as usize] += u64::from(count);
    }
    slots
}

/// Draws the noisy per-category measurement vectors for every query of
/// `graph` — the categorical analogue of [`PoolingGraph::measure`], with
/// the same query order and (at `d = 2`) the same RNG stream.
///
/// # Panics
///
/// Panics if `truth.n()` disagrees with the graph.
pub fn measure_categorical<R: Rng + ?Sized>(
    graph: &PoolingGraph,
    truth: &CategoricalTruth,
    noise: &NoiseModel,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    assert_eq!(
        truth.n(),
        graph.n(),
        "measure_categorical: truth has {} agents, graph {}",
        truth.n(),
        graph.n()
    );
    graph
        .queries()
        .iter()
        .map(|q| noise.measure_categorical(&category_slots(q, truth), rng))
        .collect()
}

/// Fraction of agents whose estimated label matches the truth.
///
/// # Panics
///
/// Panics if the estimate length disagrees with `truth.n()` or `n == 0`.
pub fn label_accuracy(estimate: &[u8], truth: &CategoricalTruth) -> f64 {
    assert_eq!(
        estimate.len(),
        truth.n(),
        "label_accuracy: estimate has {} labels, truth {}",
        estimate.len(),
        truth.n()
    );
    assert!(!estimate.is_empty(), "label_accuracy: empty population");
    let correct = estimate
        .iter()
        .zip(truth.labels())
        .filter(|(a, b)| a == b)
        .count();
    correct as f64 / truth.n() as f64
}

/// A fully specified categorical experiment: population size, per-strain
/// counts, query count/size, noise model and pooling design.
///
/// The categorical counterpart of [`Instance`]; sampling yields a
/// [`CategoricalRun`]. At a single strain the sampled truth, graph and
/// measurement stream are byte-identical to the binary instance with
/// `k = strain_counts[0]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoricalInstance {
    n: usize,
    strain_counts: Vec<usize>,
    m: usize,
    gamma: usize,
    noise: NoiseModel,
    design: DesignSpec,
}

impl CategoricalInstance {
    /// Builds an instance over `n` agents with the given per-strain counts
    /// and `m` queries; `Γ` defaults to `n/2` (the paper's choice), the
    /// noise to noiseless, the design to i.i.d. sampling.
    ///
    /// # Errors
    ///
    /// Returns [`InstanceError::PopulationTooSmall`] for `n < 2`,
    /// [`InstanceError::MissingRegime`] when no strain has a positive
    /// count, and [`InstanceError::InvalidK`] when the counts sum above
    /// `n`.
    pub fn new(n: usize, strain_counts: Vec<usize>, m: usize) -> Result<Self, InstanceError> {
        if n < 2 {
            return Err(InstanceError::PopulationTooSmall { n });
        }
        let k_total: usize = strain_counts.iter().sum();
        if strain_counts.is_empty() || k_total == 0 || strain_counts.len() > u8::MAX as usize {
            return Err(InstanceError::MissingRegime);
        }
        if k_total > n {
            return Err(InstanceError::InvalidK { k: k_total, n });
        }
        Ok(Self {
            n,
            strain_counts,
            m,
            gamma: n / 2,
            noise: NoiseModel::Noiseless,
            design: DesignSpec::Iid,
        })
    }

    /// Replaces the noise model.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Replaces the query size `Γ`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma == 0`.
    pub fn with_gamma(mut self, gamma: usize) -> Self {
        assert!(gamma > 0, "CategoricalInstance: Γ must be positive");
        self.gamma = gamma;
        self
    }

    /// Replaces the pooling design.
    pub fn with_design(mut self, design: DesignSpec) -> Self {
        self.design = design;
        self
    }

    /// Population size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of categories `d` (strains plus background).
    pub fn d(&self) -> usize {
        self.strain_counts.len() + 1
    }

    /// Per-strain agent counts `[k_1, …, k_{d−1}]`.
    pub fn strain_counts(&self) -> &[usize] {
        &self.strain_counts
    }

    /// Per-category counts `[k_0, k_1, …, k_{d−1}]` including background.
    pub fn category_counts(&self) -> Vec<usize> {
        let k_total: usize = self.strain_counts.iter().sum();
        let mut counts = vec![self.n - k_total];
        counts.extend_from_slice(&self.strain_counts);
        counts
    }

    /// Number of queries `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Slots per query `Γ`.
    pub fn gamma(&self) -> usize {
        self.gamma
    }

    /// The noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// The pooling design.
    pub fn design(&self) -> DesignSpec {
        self.design
    }

    /// The binary instance this collapses to (strain counts summed into a
    /// single `k`), preserving `Γ`, noise and design.
    ///
    /// # Errors
    ///
    /// Propagates [`InstanceError`] from the binary builder (cannot happen
    /// for parameters this constructor accepted).
    pub fn to_binary(&self) -> Result<Instance, InstanceError> {
        Instance::builder(self.n)
            .k(self.strain_counts.iter().sum())
            .queries(self.m)
            .query_size(self.gamma)
            .noise(self.noise)
            .design(self.design)
            .build()
    }

    /// Samples ground truth, pooling graph and noisy per-category query
    /// results — in that order, mirroring [`Instance::sample`] so the
    /// single-strain case is stream-identical to the binary path.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> CategoricalRun {
        let truth = CategoricalTruth::sample(self.n, &self.strain_counts, rng);
        let graph = match self.design.legacy_sampling() {
            Some(sampling) => PoolingGraph::sample_with(self.n, self.m, self.gamma, sampling, rng),
            None => {
                let mut r = &mut *rng;
                self.design.sample(self.n, self.m, self.gamma, &mut r)
            }
        };
        let results = measure_categorical(&graph, &truth, &self.noise, rng);
        CategoricalRun {
            instance: self.clone(),
            truth,
            graph,
            results,
        }
    }
}

/// One sampled categorical experiment: the instance plus concrete truth,
/// pooling graph and per-category query results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoricalRun {
    instance: CategoricalInstance,
    truth: CategoricalTruth,
    graph: PoolingGraph,
    results: Vec<Vec<f64>>,
}

impl CategoricalRun {
    /// The configuration this run was sampled from.
    pub fn instance(&self) -> &CategoricalInstance {
        &self.instance
    }

    /// The hidden categorical assignment.
    pub fn ground_truth(&self) -> &CategoricalTruth {
        &self.truth
    }

    /// The bipartite pooling multigraph.
    pub fn graph(&self) -> &PoolingGraph {
        &self.graph
    }

    /// The noisy per-category query results, one length-`d` vector per
    /// query in id order.
    pub fn results(&self) -> &[Vec<f64>] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_respects_counts() {
        let mut rng = StdRng::seed_from_u64(5);
        let truth = CategoricalTruth::sample(120, &[7, 3, 5], &mut rng);
        assert_eq!(truth.n(), 120);
        assert_eq!(truth.d(), 4);
        assert_eq!(truth.counts(), &[105, 7, 3, 5]);
        assert_eq!(truth.k_total(), 15);
        let mut recount = vec![0usize; 4];
        for &l in truth.labels() {
            recount[l as usize] += 1;
        }
        assert_eq!(recount, truth.counts());
    }

    #[test]
    fn single_strain_sample_is_byte_identical_to_binary() {
        for seed in [0u64, 7, 42, 901] {
            let mut rng_bin = StdRng::seed_from_u64(seed);
            let mut rng_cat = StdRng::seed_from_u64(seed);
            let binary = GroundTruth::sample(200, 17, &mut rng_bin);
            let cat = CategoricalTruth::sample(200, &[17], &mut rng_cat);
            assert_eq!(cat.to_binary(), binary, "seed {seed}");
            // Streams fully aligned afterwards too.
            use rand::Rng;
            assert_eq!(rng_bin.gen::<u64>(), rng_cat.gen::<u64>(), "seed {seed}");
        }
    }

    #[test]
    fn labeling_is_roughly_uniform() {
        // Each agent should carry strain 1 in about k_1/n of samples.
        let mut rng = StdRng::seed_from_u64(3);
        let (n, trials) = (20, 20_000);
        let mut hits = vec![0u32; n];
        for _ in 0..trials {
            let t = CategoricalTruth::sample(n, &[3, 2], &mut rng);
            for (i, &l) in t.labels().iter().enumerate() {
                if l == 1 {
                    hits[i] += 1;
                }
            }
        }
        let expected = trials as f64 * 3.0 / n as f64;
        for (i, &h) in hits.iter().enumerate() {
            assert!(
                (f64::from(h) - expected).abs() < expected * 0.12,
                "agent {i}: {h} vs {expected}"
            );
        }
    }

    #[test]
    fn from_labels_round_trips() {
        let truth = CategoricalTruth::from_labels(3, vec![0, 2, 1, 0, 2]);
        assert_eq!(truth.counts(), &[2, 1, 2]);
        assert_eq!(truth.label(1), 2);
        assert_eq!(truth.to_binary().ones(), &[1, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_labels_rejects_bad_label() {
        CategoricalTruth::from_labels(2, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "exceeding")]
    fn sample_rejects_oversized_counts() {
        let mut rng = StdRng::seed_from_u64(0);
        CategoricalTruth::sample(5, &[3, 3], &mut rng);
    }

    #[test]
    fn category_slots_sum_to_query_size() {
        let mut rng = StdRng::seed_from_u64(11);
        let truth = CategoricalTruth::sample(60, &[6, 4], &mut rng);
        let graph = PoolingGraph::sample(60, 12, 30, &mut rng);
        for q in graph.queries() {
            let slots = category_slots(q, &truth);
            assert_eq!(slots.iter().sum::<u64>(), u64::from(q.total_slots()));
            // Consistency with the binary count: strains sum to one_slots.
            let ones = q.one_slots(&truth.to_binary());
            assert_eq!(slots[1..].iter().sum::<u64>(), ones);
        }
    }

    #[test]
    fn instance_validation() {
        assert_eq!(
            CategoricalInstance::new(1, vec![1], 5).unwrap_err(),
            InstanceError::PopulationTooSmall { n: 1 }
        );
        assert_eq!(
            CategoricalInstance::new(10, vec![], 5).unwrap_err(),
            InstanceError::MissingRegime
        );
        assert_eq!(
            CategoricalInstance::new(10, vec![0, 0], 5).unwrap_err(),
            InstanceError::MissingRegime
        );
        assert_eq!(
            CategoricalInstance::new(10, vec![8, 8], 5).unwrap_err(),
            InstanceError::InvalidK { k: 16, n: 10 }
        );
        let inst = CategoricalInstance::new(100, vec![4, 6], 30).unwrap();
        assert_eq!(inst.d(), 3);
        assert_eq!(inst.gamma(), 50);
        assert_eq!(inst.category_counts(), vec![90, 4, 6]);
    }

    #[test]
    fn sampled_run_is_consistent() {
        let mut rng = StdRng::seed_from_u64(21);
        let inst = CategoricalInstance::new(80, vec![5, 3], 25)
            .unwrap()
            .with_noise(NoiseModel::channel(0.1, 0.05));
        let run = inst.sample(&mut rng);
        assert_eq!(run.ground_truth().counts(), &[72, 5, 3]);
        assert_eq!(run.results().len(), 25);
        for (j, r) in run.results().iter().enumerate() {
            assert_eq!(r.len(), 3);
            let total: f64 = r.iter().sum();
            assert_eq!(total, f64::from(run.graph().query(j).total_slots()));
        }
    }

    #[test]
    fn single_strain_run_matches_binary_run_streams() {
        // Full-pipeline d=2 equivalence: truth, graph, and measurements all
        // come out byte-identical to Instance::sample for every noise model.
        for noise in [
            NoiseModel::Noiseless,
            NoiseModel::channel(0.15, 0.08),
            NoiseModel::gaussian(1.5),
        ] {
            let inst_cat = CategoricalInstance::new(90, vec![8], 20)
                .unwrap()
                .with_noise(noise);
            let inst_bin = inst_cat.to_binary().unwrap();
            for seed in [1u64, 77] {
                let cat = inst_cat.sample(&mut StdRng::seed_from_u64(seed));
                let bin = inst_bin.sample(&mut StdRng::seed_from_u64(seed));
                assert_eq!(cat.ground_truth().to_binary(), *bin.ground_truth());
                assert_eq!(cat.graph(), bin.graph());
                for (v, &r) in cat.results().iter().zip(bin.results()) {
                    assert_eq!(v[1], r, "{noise} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn label_accuracy_counts_matches() {
        let truth = CategoricalTruth::from_labels(3, vec![0, 1, 2, 0]);
        assert_eq!(label_accuracy(&[0, 1, 2, 0], &truth), 1.0);
        assert_eq!(label_accuracy(&[0, 1, 0, 0], &truth), 0.75);
        assert_eq!(label_accuracy(&[1, 0, 0, 1], &truth), 0.0);
    }
}
