//! The fully distributed implementation of Algorithm 1 on the message-
//! passing simulator.
//!
//! Network layout: nodes `0..n` are agents, nodes `n..n+m` are query nodes.
//! The protocol follows the paper line by line:
//!
//! 1. **Measure in parallel** (round 0): each query node sends its noisy
//!    result `σ̂ⱼ` to every *distinct* member `∂*aⱼ`.
//! 2. **Accumulate** (round 1): each agent folds the incoming measurements
//!    into `Ψᵢ` and `Δ*ᵢ` and forms its score `Ψᵢ − Δ*ᵢ·k/2`.
//! 3. **Select the top `k`** (phase II): pluggable via
//!    [`SelectionStrategy`] —
//!    * [`SelectionStrategy::BatcherSort`]: agents run a Batcher odd-even
//!      mergesort on score tokens, one network layer per round, two
//!      messages per comparator (the paper's Section III construction);
//!    * [`SelectionStrategy::GossipThreshold`]: agents run the adaptive
//!      bisection of [`npd_netsim::gossip::TopKCore`] *inside this
//!      network* — global score bounds, then one count-all-reduce per
//!      probe threshold until the `k`-th score is isolated or only exact
//!      ties remain. No `O(n log² n)` sorting network is ever built, so
//!      this path scales to millions of agents.
//! 4. **Assign**: under `BatcherSort`, the agent holding a token at
//!    position `< k` notifies the token's owner (one extra round). Under
//!    `GossipThreshold` every agent decides its *own* bit locally — there
//!    is no assignment traffic at all.
//!
//! The output of both strategies is *bit-identical* to
//! [`crate::GreedyDecoder`] (same summation order, same deterministic
//! tie-breaking), which the test-suite asserts — the distributed variants
//! are equivalent, exactly as claimed in Section III.
//!
//! Under fault injection the protocol degrades gracefully rather than
//! deadlocking or corrupting state: sort tokens carry their layer and
//! stale (delayed) tokens are counted and ignored instead of being
//! consumed as the current layer's partner; a missing partner token leaves
//! the agent's own token in place; a missing assignment defaults to bit
//! zero (reported in [`ProtocolOutcome::missing_assignments`]); and the
//! gossip selection counts and ignores out-of-phase arrivals (reported in
//! [`ProtocolOutcome::stale_messages`]). The round budget accounts for the
//! fault model's maximum message delay, so delayed messages never turn
//! graceful degradation into a spurious `MaxRoundsExceeded`.
//!
//! # Agent-level chaos
//!
//! [`run_protocol_chaos`] extends the fault surface from messages to
//! *agents* ([`ProtocolOptions`]): a [`NodeFaultPlan`] crashes, lags, or
//! corrupts nodes mid-protocol, and an optional [`ReliableConfig`] sends
//! the measurement broadcast through the engine's at-least-once layer.
//! The degradation contract extends accordingly:
//!
//! * A crashed agent simply stops participating; partners degrade exactly
//!   as if its messages were dropped (identity compare-exchanges under
//!   `BatcherSort`, partial aggregates under `GossipThreshold`).
//! * A *restarted* agent rejoins with its state wiped. It cannot re-enter
//!   the lock-step selection mid-phase, so it turns passive: it honors a
//!   late `Assign`, counts everything else as stale, and sends nothing.
//! * Corrupted payloads stay finite (see the garbler) and are folded like
//!   any other arrival; [`ProtocolOptions::winsorize`] clamps measurement
//!   values into the plausible `[0, slots]` range to bound the damage.
//! * Measurements are deduplicated per query sender, so duplication
//!   faults and at-least-once retransmission never double-count.
//! * [`ProtocolOutcome::achieved_quorum`] and
//!   [`ProtocolOutcome::agent_liveness`] report how much of the
//!   population actually completed phase II; the round budget adds the
//!   straggler, retry, and grace slack so chaos runs still terminate
//!   instead of hitting `MaxRoundsExceeded`.

use crate::greedy::Estimate;
use crate::model::Run;
use npd_netsim::gossip::{TopKCore, TopKMsg, PROBE_LIMIT};
use npd_netsim::{
    recommended_shards, Activity, Context, Envelope, FaultConfig, MaxRoundsExceeded, Metrics,
    Network, Node, NodeFaultPlan, NodeId, NodeTraffic, ReliableConfig,
};
use npd_sortnet::SortingNetwork;
use npd_telemetry::{Event, TelemetrySink};
use std::sync::Arc;

/// How phase II (top-`k` selection) of the protocol is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionStrategy {
    /// The paper's Batcher odd-even mergesort: `O(log² n)` rounds, two
    /// messages per comparator, plus one assignment round. Requires an
    /// `O(n log² n)` comparator schedule in memory.
    #[default]
    BatcherSort,
    /// The adaptive gossip bisection over the score threshold
    /// ([`npd_netsim::gossip::TopKCore`]): `O(log n)` rounds per probe,
    /// one message per agent per round, no schedule memory, and every
    /// agent decides its own bit locally (no assignment phase).
    GossipThreshold {
        /// Cap on the bisection probes of the embedded selection — and
        /// therefore on its worst-case round budget. The default
        /// ([`SelectionStrategy::gossip`]) is
        /// [`npd_netsim::gossip::PROBE_LIMIT`], which sits above the
        /// ~130-probe exhaustion bound and never cuts the bisection
        /// short; chaos scenarios tighten it to budget rounds explicitly.
        probe_limit: u32,
    },
}

impl SelectionStrategy {
    /// The gossip strategy at the default probe cap
    /// ([`npd_netsim::gossip::PROBE_LIMIT`]).
    pub const fn gossip() -> Self {
        SelectionStrategy::GossipThreshold {
            probe_limit: PROBE_LIMIT,
        }
    }
}

impl std::fmt::Display for SelectionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SelectionStrategy::BatcherSort => "batcher",
            SelectionStrategy::GossipThreshold { .. } => "gossip",
        })
    }
}

/// Messages exchanged by the protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtocolMessage {
    /// A query's (noisy) measurement, broadcast to its distinct members.
    /// Carries the recipient's multiplicity in the query so the agent can
    /// form the noise-aware score (the query node knows how often it drew
    /// each member).
    Measurement {
        /// The query result `σ̂ⱼ`.
        value: f64,
        /// How often the recipient was drawn into the query.
        multiplicity: u32,
        /// The query's total slot count `|∂aⱼ|` (equals `Γ` on
        /// query-regular designs; carried explicitly so the noise-aware
        /// centering is exact on ragged, degree-balanced designs).
        slots: u32,
    },
    /// A sorting token: the score, the agent it belongs to, and the layer
    /// it is addressed to. The layer tag lets receivers filter tokens that
    /// a delay fault pushed past their comparator: consuming a stale token
    /// as the current layer's partner would silently corrupt the
    /// compare-exchange.
    Token {
        /// Greedy score of the token's owner.
        score: f64,
        /// The owner's agent id.
        agent: u32,
        /// The comparator layer this token is addressed to.
        layer: u32,
    },
    /// One message of the embedded gossip selection (phase-tagged; see
    /// [`npd_netsim::gossip::TopKMsg`]).
    TopK(npd_netsim::gossip::TopKMsg),
    /// Final bit assignment delivered to the token's owner.
    Assign {
        /// Whether the owner is among the top `k`.
        one: bool,
    },
}

/// Per-position comparator schedule derived from a [`SortingNetwork`].
#[derive(Debug)]
struct SortSchedule {
    depth: usize,
    /// `per_layer[layer][pos] = (partner, is_lo)` if `pos` participates.
    per_layer: Vec<Vec<Option<(u32, bool)>>>,
}

impl SortSchedule {
    fn new(net: &SortingNetwork) -> Self {
        let n = net.size();
        let per_layer = net
            .layers()
            .iter()
            .map(|layer| {
                let mut row = vec![None; n];
                for c in layer {
                    row[c.lo] = Some((c.hi as u32, true));
                    row[c.hi] = Some((c.lo as u32, false));
                }
                row
            })
            .collect::<Vec<_>>();
        Self {
            depth: per_layer.len(),
            per_layer,
        }
    }
}

/// Token ordering: higher score first, ties toward the smaller agent id —
/// the same total order the sequential decoder ranks by.
fn token_precedes(a: (f64, u32), b: (f64, u32)) -> bool {
    if a.0 != b.0 {
        a.0 > b.0
    } else {
        a.1 < b.1
    }
}

/// One network participant: an agent or a query node.
///
/// Agents outnumber query nodes at protocol scale (`n ≫ m` is the
/// interesting regime) and the node vector is iterated densely every
/// round, so the padding the small `Query` variant pays for the large
/// `Agent` variant is cheaper than boxing the common case.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
enum ProtocolNode {
    Agent(AgentState),
    Query(QueryState),
}

/// Phase-II state of an agent, per [`SelectionStrategy`].
#[derive(Debug)]
enum Phase2 {
    Batcher {
        schedule: Arc<SortSchedule>,
        token: (f64, u32),
        /// Whether this agent has sent its final assignment (used to split
        /// the per-phase message accounting).
        sent_assign: bool,
    },
    Gossip {
        /// Number of agents on the selection id line.
        n: u32,
        /// Probe cap for the embedded core
        /// ([`SelectionStrategy::GossipThreshold::probe_limit`]).
        probe_limit: u32,
        /// Built in the score round, once the score is known.
        core: Option<TopKCore>,
    },
}

#[derive(Debug)]
struct AgentState {
    k: usize,
    pos: u32,
    /// Per-slot one-read rate of the second neighborhood.
    slot_rate: f64,
    phase2: Phase2,
    /// Extra rounds to keep folding late or retransmitted measurements
    /// before forming the score ([`ProtocolOptions::grace`]).
    grace: u64,
    /// Clamp incoming measurement values into `[0, slots]`
    /// ([`ProtocolOptions::winsorize`]).
    winsorize: bool,
    /// Query senders already folded: measurements are deduplicated per
    /// query, so duplication faults and at-least-once retransmission
    /// never double-count (the list stays at the agent's degree, which is
    /// small on the regular designs).
    heard: Vec<u32>,
    /// Crashed and rejoined with wiped state ([`Node::on_restart`]):
    /// passive for the rest of the run.
    restarted: bool,
    psi: f64,
    distinct: u32,
    multi: u64,
    /// Total slots of the queries heard from (`Σ_{j∈∂*i} |∂aⱼ|`).
    slot_sum: u64,
    score: f64,
    /// Stale arrivals counted and ignored (wrong-layer tokens under
    /// `BatcherSort`, out-of-phase gossip messages under
    /// `GossipThreshold`).
    stale: u64,
    output: Option<bool>,
}

#[derive(Debug)]
struct QueryState {
    /// Distinct members with their multiplicities.
    neighbors: Vec<(u32, u32)>,
    result: f64,
    /// Total slot count of this query (including multiplicities).
    slots: u32,
    /// Send the measurement broadcast through the at-least-once layer
    /// ([`ProtocolOptions::reliable`]).
    reliable: bool,
}

impl Node<ProtocolMessage> for ProtocolNode {
    fn on_round(&mut self, ctx: &mut Context<'_, ProtocolMessage>) -> Activity {
        match self {
            ProtocolNode::Query(q) => q.on_round(ctx),
            ProtocolNode::Agent(a) => a.on_round(ctx),
        }
    }

    fn on_restart(&mut self, _round: u64) {
        match self {
            // A query node's only action is the round-0 broadcast, which
            // a restart cannot replay; there is nothing to wipe.
            ProtocolNode::Query(_) => {}
            ProtocolNode::Agent(a) => {
                a.psi = 0.0;
                a.distinct = 0;
                a.multi = 0;
                a.slot_sum = 0;
                a.score = 0.0;
                a.heard.clear();
                a.output = None;
                a.restarted = true;
                match &mut a.phase2 {
                    Phase2::Batcher {
                        token, sent_assign, ..
                    } => {
                        *token = (0.0, 0);
                        *sent_assign = false;
                    }
                    Phase2::Gossip { core, .. } => *core = None,
                }
            }
        }
    }
}

impl QueryState {
    fn on_round(&mut self, ctx: &mut Context<'_, ProtocolMessage>) -> Activity {
        if ctx.round() == 0 {
            for &(a, count) in &self.neighbors {
                let msg = ProtocolMessage::Measurement {
                    value: self.result,
                    multiplicity: count,
                    slots: self.slots,
                };
                if self.reliable {
                    ctx.send_reliable(NodeId(a as usize), msg);
                } else {
                    ctx.send(NodeId(a as usize), msg);
                }
            }
        }
        Activity::Idle
    }
}

impl AgentState {
    fn on_round(&mut self, ctx: &mut Context<'_, ProtocolMessage>) -> Activity {
        let r = ctx.round();
        if self.restarted {
            // Fail-stop rejoin: the measurements and phase-II state are
            // gone, so the agent cannot re-enter the lock-step selection
            // mid-phase. It rejoins passively — a late assignment is
            // still honored, everything else is stale.
            for env in ctx.inbox() {
                match env.payload {
                    ProtocolMessage::Assign { one } => self.output = Some(one),
                    _ => self.stale += 1,
                }
            }
            return Activity::Idle;
        }
        // Rounds 1..=score_round collect measurements; with a zero grace
        // window this is the classic "fold in round 1" schedule.
        let score_round = 1 + self.grace;
        if r < score_round {
            if r > 0 {
                self.fold_measurements(ctx);
            }
            // Measurements are still in flight (or being retransmitted);
            // stay active so the score round happens even in a query-free
            // network.
            return Activity::Active;
        }
        if r == score_round {
            self.fold_measurements(ctx);
            // Identical expression (and evaluation order) to the sequential
            // decoder, so the two implementations agree bit-for-bit.
            let slots = (self.slot_sum - self.multi) as f64;
            self.score = self.psi - slots * self.slot_rate;
            return match &mut self.phase2 {
                Phase2::Batcher {
                    schedule,
                    token,
                    sent_assign,
                } => {
                    *token = (self.score, self.pos);
                    if schedule.depth == 0 {
                        // Trivial sort (n = 1): assign immediately.
                        let one = (self.pos as usize) < self.k;
                        ctx.send(NodeId(self.pos as usize), ProtocolMessage::Assign { one });
                        *sent_assign = true;
                    } else if let Some((partner, _)) = schedule.per_layer[0][self.pos as usize] {
                        let (score, agent) = *token;
                        ctx.send(
                            NodeId(partner as usize),
                            ProtocolMessage::Token {
                                score,
                                agent,
                                layer: 0,
                            },
                        );
                    }
                    Activity::Idle
                }
                Phase2::Gossip {
                    n,
                    probe_limit,
                    core,
                } => {
                    let built = core.insert(
                        TopKCore::new(self.score, self.k, *n as usize)
                            .with_probe_limit(*probe_limit),
                    );
                    // The score round's inbox holds the measurements folded
                    // above, not selection traffic: the core starts from an
                    // empty inbox.
                    let mut discard = 0;
                    let active =
                        Self::step_core(built, self.pos as usize, &mut discard, ctx, false);
                    self.finish_gossip_round(active)
                }
            };
        }

        match &mut self.phase2 {
            Phase2::Batcher { .. } => self.batcher_round(ctx, r),
            Phase2::Gossip { core, .. } => {
                let Some(core) = core.as_mut() else {
                    // The engine steps every live node every round and a
                    // restarted node took the passive path above, so the
                    // score round always built the core before any later
                    // round runs.
                    unreachable!("gossip core missing after the score round");
                };
                let active = Self::step_core(core, self.pos as usize, &mut self.stale, ctx, true);
                self.finish_gossip_round(active)
            }
        }
    }

    /// Folds the inbox's measurements into the score accumulators,
    /// deduplicating per query sender and (optionally) winsorizing the
    /// value into the plausible `[0, slots]` range.
    fn fold_measurements(&mut self, ctx: &mut Context<'_, ProtocolMessage>) {
        for env in ctx.inbox() {
            if let ProtocolMessage::Measurement {
                value,
                multiplicity,
                slots,
            } = env.payload
            {
                let from = env.from.0 as u32;
                if self.heard.contains(&from) {
                    // Duplicate delivery: a duplication-fault copy, or a
                    // retransmission that raced its original. Each query
                    // counts exactly once.
                    self.stale += 1;
                    continue;
                }
                self.heard.push(from);
                let value = if self.winsorize {
                    // A true query result counts ones over `slots` reads,
                    // so anything outside [0, slots] is noise or
                    // corruption; clamping bounds its leverage on Ψᵢ.
                    value.clamp(0.0, slots as f64)
                } else {
                    value
                };
                self.psi += value;
                self.distinct += 1;
                self.multi += multiplicity as u64;
                self.slot_sum += slots as u64;
            }
        }
    }

    /// Steps the embedded gossip core for one round, translating its sends
    /// into protocol messages (agents are network ids `0..n`, so line ids
    /// map one to one). Allocation-free: the inbox is fed as an iterator
    /// and the core's single per-round send is buffered in an `Option`.
    /// Non-TopK arrivals (late measurements under delay faults) are
    /// counted into `stale`, never merged. `read_inbox` is false for the
    /// core's very first step (round 1), whose inbox is the measurement
    /// broadcast, not selection traffic.
    fn step_core(
        core: &mut TopKCore,
        pos: usize,
        stale: &mut u64,
        ctx: &mut Context<'_, ProtocolMessage>,
        read_inbox: bool,
    ) -> bool {
        let mut out: Option<(usize, npd_netsim::gossip::TopKMsg)> = None;
        let mut late = 0u64;
        let take = if read_inbox { usize::MAX } else { 0 };
        let active = {
            let inbox = ctx
                .inbox()
                .iter()
                .take(take)
                .filter_map(|env| match env.payload {
                    ProtocolMessage::TopK(m) => Some(m),
                    _ => {
                        late += 1;
                        None
                    }
                });
            core.step(pos, inbox, |dst, msg| {
                out = Some((dst, msg));
            })
        };
        *stale += late;
        if let Some((dst, msg)) = out {
            ctx.send(NodeId(dst), ProtocolMessage::TopK(msg));
        }
        active
    }

    /// Records the gossip decision once the core reaches one.
    fn finish_gossip_round(&mut self, active: bool) -> Activity {
        if let Phase2::Gossip {
            core: Some(core), ..
        } = &self.phase2
        {
            if let Some(decision) = core.decision() {
                self.output = Some(decision.selected);
            }
        }
        if active {
            Activity::Active
        } else {
            Activity::Idle
        }
    }

    fn batcher_round(&mut self, ctx: &mut Context<'_, ProtocolMessage>, r: u64) -> Activity {
        let grace = self.grace;
        let Phase2::Batcher {
            schedule,
            token,
            sent_assign,
        } = &mut self.phase2
        else {
            unreachable!("batcher_round called in gossip mode");
        };
        let resolved_layer = (r - 2 - grace) as usize;
        if resolved_layer < schedule.depth {
            // Resolve the compare-exchange whose tokens arrived this round.
            if let Some((_, is_lo)) = schedule.per_layer[resolved_layer][self.pos as usize] {
                let (theirs, stale) = first_token(ctx.inbox(), resolved_layer as u32);
                self.stale += stale;
                if let Some(theirs) = theirs {
                    let mine_first = token_precedes(*token, theirs);
                    // `lo` keeps the preceding token, `hi` the other.
                    *token = if is_lo == mine_first { *token } else { theirs };
                }
                // A dropped (or delayed — now filtered by the layer tag)
                // partner token leaves our token in place — degraded but
                // deadlock-free (see module docs).
            }
            let next = resolved_layer + 1;
            if next < schedule.depth {
                if let Some((partner, _)) = schedule.per_layer[next][self.pos as usize] {
                    let (score, agent) = *token;
                    ctx.send(
                        NodeId(partner as usize),
                        ProtocolMessage::Token {
                            score,
                            agent,
                            layer: next as u32,
                        },
                    );
                }
            } else {
                // Sorting finished: position < k ⇒ the token's owner is one.
                let one = (self.pos as usize) < self.k;
                ctx.send(NodeId(token.1 as usize), ProtocolMessage::Assign { one });
                *sent_assign = true;
            }
        } else {
            // Assignment window: delayed assignments are still honored
            // (`>=` rather than `==`, so a delay fault cannot silently
            // discard a delivered assignment). Stray late tokens are
            // counted as stale.
            for env in ctx.inbox() {
                match env.payload {
                    ProtocolMessage::Assign { one } => self.output = Some(one),
                    ProtocolMessage::Token { .. } => self.stale += 1,
                    _ => {}
                }
            }
        }
        Activity::Idle
    }
}

/// First token addressed to `layer` in an inbox, plus the number of stale
/// (wrong-layer) tokens that were filtered out. Duplicates of the current
/// layer's token are ignored (first match wins).
fn first_token(inbox: &[Envelope<ProtocolMessage>], layer: u32) -> (Option<(f64, u32)>, u64) {
    let mut found = None;
    let mut stale = 0u64;
    for env in inbox {
        if let ProtocolMessage::Token {
            score,
            agent,
            layer: tag,
        } = env.payload
        {
            if tag == layer {
                if found.is_none() {
                    found = Some((score, agent));
                }
            } else {
                stale += 1;
            }
        }
    }
    (found, stale)
}

/// Result of a protocol run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolOutcome {
    /// The reconstruction (bits plus the scores the agents computed).
    pub estimate: Estimate,
    /// Synchronous rounds until quiescence.
    pub rounds: u64,
    /// Full communication metrics from the simulator.
    pub metrics: Metrics,
    /// The phase-II strategy that produced this outcome.
    pub strategy: SelectionStrategy,
    /// Depth of the sorting network used in phase II (`0` under
    /// [`SelectionStrategy::GossipThreshold`], which builds none).
    pub sort_depth: usize,
    /// Bisection probes of the adaptive gossip selection (`0` under
    /// [`SelectionStrategy::BatcherSort`]).
    pub probes: u32,
    /// Rounds attributable to phase II: total rounds minus the
    /// measurement/accumulation rounds (and, under `BatcherSort`, the
    /// assignment round). Includes any fault-induced stretch.
    pub selection_rounds: u64,
    /// Messages attributable to phase II: total sends minus the
    /// measurement broadcast and the assignment messages.
    pub selection_messages: u64,
    /// Stale arrivals counted and ignored by agents: wrong-layer sort
    /// tokens or out-of-phase gossip messages (non-zero only under delay
    /// or duplication faults).
    pub stale_messages: u64,
    /// Agents with no phase-II decision at the end of the run: no
    /// assignment arrived (`BatcherSort` under faults), or the agent
    /// crashed/restarted out of the selection (either strategy under a
    /// [`NodeFaultPlan`]); they default to bit zero.
    pub missing_assignments: usize,
    /// Number of agents that completed phase II with a decision — the
    /// achieved quorum of the (possibly degraded) run. Equals `n` on
    /// fault-free networks and `n − missing_assignments` in general.
    pub achieved_quorum: usize,
    /// Per-agent liveness at the final round: `false` for agents down
    /// under the crash schedule (all `true` without a [`NodeFaultPlan`]).
    /// Restarted agents are alive but participated only passively.
    pub agent_liveness: Vec<bool>,
    /// Agents that crashed and rejoined with wiped state.
    pub restarted_agents: usize,
    /// Per-node traffic: agents first (`0..n`), then query nodes
    /// (`n..n+m`). Backs the paper's per-node communication claim.
    pub node_traffic: Vec<NodeTraffic>,
}

/// Runs the distributed protocol for a sampled [`Run`] on a fault-free
/// network with the default [`SelectionStrategy::BatcherSort`].
///
/// # Errors
///
/// Returns [`MaxRoundsExceeded`] if the network fails to quiesce — which
/// indicates a bug, as the fault-free protocol always terminates after
/// `depth + 3` rounds.
///
/// # Examples
///
/// ```
/// use npd_core::{distributed, Decoder, GreedyDecoder, Instance};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let run = Instance::builder(64).k(2).queries(60).build().unwrap().sample(&mut rng);
/// let outcome = distributed::run_protocol(&run).unwrap();
/// assert_eq!(outcome.estimate, GreedyDecoder::new().decode(&run));
/// ```
pub fn run_protocol(run: &Run) -> Result<ProtocolOutcome, MaxRoundsExceeded> {
    run_protocol_configured(run, SelectionStrategy::default(), None)
}

/// Runs the protocol on a fault-free network with an explicit phase-II
/// strategy.
///
/// Both strategies produce output bit-identical to the sequential decoder
/// on fault-free networks (pinned by the equivalence tests).
///
/// # Errors
///
/// Returns [`MaxRoundsExceeded`] if the network fails to quiesce.
///
/// # Examples
///
/// ```
/// use npd_core::distributed::{self, SelectionStrategy};
/// use npd_core::Instance;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let run = Instance::builder(64).k(2).queries(60).build().unwrap().sample(&mut rng);
/// let sorted = distributed::run_protocol(&run).unwrap();
/// let gossip =
///     distributed::run_protocol_with(&run, SelectionStrategy::gossip()).unwrap();
/// assert_eq!(sorted.estimate, gossip.estimate);
/// assert_eq!(gossip.sort_depth, 0); // no sorting network was built
/// ```
pub fn run_protocol_with(
    run: &Run,
    strategy: SelectionStrategy,
) -> Result<ProtocolOutcome, MaxRoundsExceeded> {
    run_protocol_configured(run, strategy, None)
}

/// Runs the distributed protocol with message fault injection (default
/// [`SelectionStrategy::BatcherSort`]).
///
/// See the module docs for the degradation semantics; correctness of the
/// sort requires reliable delivery, so dropped token or assignment messages
/// surface as reconstruction errors and
/// [`missing_assignments`](ProtocolOutcome::missing_assignments), never as
/// deadlock.
///
/// # Errors
///
/// Returns [`MaxRoundsExceeded`] if the network fails to quiesce.
pub fn run_protocol_with_faults(
    run: &Run,
    faults: FaultConfig,
) -> Result<ProtocolOutcome, MaxRoundsExceeded> {
    run_protocol_configured(run, SelectionStrategy::default(), Some(faults))
}

/// The message-fault entry point: explicit strategy, optional message
/// fault injection. See [`run_protocol_chaos`] for agent-level faults.
///
/// # Errors
///
/// Returns [`MaxRoundsExceeded`] if the network fails to quiesce within
/// the strategy's round budget (which includes the fault model's maximum
/// message delay).
pub fn run_protocol_configured(
    run: &Run,
    strategy: SelectionStrategy,
    faults: Option<FaultConfig>,
) -> Result<ProtocolOutcome, MaxRoundsExceeded> {
    run_protocol_chaos(
        run,
        ProtocolOptions {
            strategy,
            faults,
            ..ProtocolOptions::default()
        },
    )
}

/// Configuration of a chaos run: phase-II strategy plus every fault
/// surface the simulator offers.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProtocolOptions {
    /// Phase-II strategy.
    pub strategy: SelectionStrategy,
    /// Message-level fault injection (drop / duplicate / delay).
    pub faults: Option<FaultConfig>,
    /// Agent-level fault plan — fail-stop crashes (with optional
    /// restarts), stragglers, and payload corruptors — over all `n + m`
    /// network nodes (agents `0..n`, query nodes `n..n+m`).
    pub node_faults: Option<NodeFaultPlan>,
    /// Send the measurement broadcast through the engine's at-least-once
    /// layer, so dropped or crash-lost measurements are retransmitted.
    pub reliable: Option<ReliableConfig>,
    /// Extra rounds agents keep folding late or retransmitted
    /// measurements before forming scores. Zero reproduces the classic
    /// schedule; pair a non-zero window with `reliable` (a good value is
    /// [`ReliableConfig::worst_case_rounds`]).
    pub grace: u64,
    /// Clamp incoming measurement values into the plausible `[0, slots]`
    /// range, bounding the leverage of corrupted (or extremely noisy)
    /// measurements on the scores. Off by default: clamping biases
    /// Gaussian noise, so it is a robustness trade, not a free win.
    pub winsorize: bool,
    /// Override the network shard count (default:
    /// [`recommended_shards`] over all `n + m` nodes). The outcome —
    /// and the deterministic telemetry stream of
    /// [`run_protocol_chaos_traced`] — is bit-identical for every
    /// value; this only controls available parallelism, and exists so
    /// the determinism suite can pin that claim across shard counts.
    pub shards: Option<usize>,
}

/// Deterministic payload garbler used for [`NodeFaultPlan`] corruptors:
/// floats are skewed by an entropy-derived bias (kept *finite* — the
/// selection core asserts finite scores, and a NaN would poison
/// aggregates irrecoverably rather than degrade them), counts are
/// perturbed, and assignment bits flip.
fn garble_protocol_message(msg: &mut ProtocolMessage, entropy: u64) {
    fn skew(x: f64, entropy: u64) -> f64 {
        // Entropy → bias in [-2, 2), scaled by the value's magnitude.
        let unit = (entropy >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x + (unit * 4.0 - 2.0) * (1.0 + x.abs())
    }
    match msg {
        ProtocolMessage::Measurement { value, .. } => *value = skew(*value, entropy),
        ProtocolMessage::Token { score, .. } => *score = skew(*score, entropy),
        ProtocolMessage::TopK(m) => match m {
            TopKMsg::Bounds { min, max, .. } => {
                *min = skew(*min, entropy);
                *max = skew(*max, entropy.rotate_left(17));
            }
            TopKMsg::Count { value, .. } | TopKMsg::Tie { value, .. } => {
                *value ^= entropy & 0x7;
            }
        },
        ProtocolMessage::Assign { one } => *one ^= entropy & 1 == 1,
    }
}

/// The full-chaos entry point: message faults, agent faults, reliable
/// measurement delivery, a measurement grace window, and winsorized
/// accumulation, all in one [`ProtocolOptions`].
///
/// The round budget covers every configured slack (message delay,
/// straggler lag, retransmission backoff, grace window), so a chaos run
/// that terminates degraded still terminates *cleanly* — see the module
/// docs for the degradation contract.
///
/// # Errors
///
/// Returns [`MaxRoundsExceeded`] if the network fails to quiesce within
/// that budget, which indicates a bug rather than a survivable fault.
pub fn run_protocol_chaos(
    run: &Run,
    options: ProtocolOptions,
) -> Result<ProtocolOutcome, MaxRoundsExceeded> {
    run_protocol_chaos_traced(run, options, &TelemetrySink::default())
}

/// [`run_protocol_chaos`] with an attached telemetry sink.
///
/// The sink is handed to the network engine (per-round spans, delivery
/// and fault deltas, inbox/in-flight histograms; see
/// [`Network::with_telemetry`]), and on completion the protocol adds its
/// own deterministic summary: one `phase` event per protocol phase —
/// measurement broadcast, score accumulation, selection, and (Batcher
/// only) assignment — carrying the phase's round range and message
/// count, plus the final [`Metrics`] rows and protocol counters in the
/// counter registry. Everything recorded is bit-identical across shard
/// and thread counts; wall-clock phase *timing* comes from joining the
/// engine's round spans against the phase round ranges in a harness
/// (contract rule 11 keeps real clocks out of this crate).
///
/// # Errors
///
/// Returns [`MaxRoundsExceeded`] if the network fails to quiesce within
/// the chaos budget, which indicates a bug rather than a survivable
/// fault.
pub fn run_protocol_chaos_traced(
    run: &Run,
    options: ProtocolOptions,
    telemetry: &TelemetrySink,
) -> Result<ProtocolOutcome, MaxRoundsExceeded> {
    let strategy = options.strategy;
    let faults = options.faults;
    let n = run.instance().n();
    let k = run.instance().k();
    let slot_rate = crate::greedy::second_neighborhood_rate(n, k, run.instance().noise());

    let (sort_depth, make_phase2): (usize, Box<dyn Fn() -> Phase2>) = match strategy {
        SelectionStrategy::BatcherSort => {
            let sort_net = SortingNetwork::batcher_odd_even(n);
            let depth = sort_net.depth();
            let schedule = Arc::new(SortSchedule::new(&sort_net));
            (
                depth,
                Box::new(move || Phase2::Batcher {
                    schedule: Arc::clone(&schedule),
                    token: (0.0, 0),
                    sent_assign: false,
                }),
            )
        }
        SelectionStrategy::GossipThreshold { probe_limit } => (
            0,
            Box::new(move || Phase2::Gossip {
                n: n as u32,
                probe_limit,
                core: None,
            }),
        ),
    };

    let total_nodes = n + run.instance().m();
    let mut nodes: Vec<ProtocolNode> = Vec::with_capacity(total_nodes);
    for pos in 0..n {
        nodes.push(ProtocolNode::Agent(AgentState {
            k,
            pos: pos as u32,
            slot_rate,
            phase2: make_phase2(),
            grace: options.grace,
            winsorize: options.winsorize,
            heard: Vec::new(),
            restarted: false,
            psi: 0.0,
            distinct: 0,
            multi: 0,
            slot_sum: 0,
            score: 0.0,
            stale: 0,
            output: None,
        }));
    }
    let mut measurement_messages = 0u64;
    for (j, q) in run.graph().queries().iter().enumerate() {
        let neighbors: Vec<(u32, u32)> = q.iter().collect();
        measurement_messages += neighbors.len() as u64;
        nodes.push(ProtocolNode::Query(QueryState {
            neighbors,
            result: run.results()[j],
            slots: q.total_slots(),
            reliable: options.reliable.is_some(),
        }));
    }

    // The budget must cover every configured slack: the fault model's
    // maximum delivery delay (a delayed final token or assignment
    // stretches the run), the slowest straggler's persistent lag, the
    // reliable layer's worst-case retry chain, and the measurement grace
    // window. All of these are graceful degradation, not failure.
    let max_delay = faults.as_ref().map_or(0, FaultConfig::max_delay);
    let straggler_slack = options.node_faults.as_ref().map_or(0, |plan| {
        (0..total_nodes)
            .map(|i| plan.straggler_delay(i))
            .max()
            .unwrap_or(0)
    });
    let retry_slack = options
        .reliable
        .as_ref()
        .map_or(0, ReliableConfig::worst_case_rounds);
    let slack = max_delay + straggler_slack + retry_slack + options.grace;
    let budget = match strategy {
        SelectionStrategy::BatcherSort => sort_depth as u64 + 5 + slack,
        // max_rounds_with already carries the quiescence slack; add only
        // the two measurement rounds and the fault slack.
        SelectionStrategy::GossipThreshold { probe_limit } => {
            2 + npd_netsim::gossip::TopKNode::max_rounds_with(n, probe_limit) + slack
        }
    };

    // One shard per rayon worker unless overridden; the outcome is
    // bit-identical for any shard count (the netsim engine's core
    // guarantee).
    let shards = options
        .shards
        .unwrap_or_else(|| recommended_shards(nodes.len()));
    let mut network = match faults {
        None => Network::new(nodes),
        Some(cfg) => Network::with_faults(nodes, cfg),
    }
    .with_shards(shards)
    .with_telemetry(telemetry.clone());
    if let Some(plan) = options.node_faults {
        network = network.with_node_faults(plan);
        if plan.has_corruption() {
            network = network.with_corruptor(garble_protocol_message);
        }
    }
    if let Some(rc) = options.reliable {
        network = network.with_reliability(rc);
    }
    let report = network.run_until_quiescent_parallel(budget)?;
    let metrics = *network.metrics();
    let node_traffic = network.traffic().to_vec();

    let mut bits = vec![false; n];
    let mut scores = vec![0.0; n];
    let mut missing = 0usize;
    let mut stale = 0u64;
    let mut probes = 0u32;
    let mut assign_messages = 0u64;
    let mut restarted_agents = 0usize;
    for (i, node) in network.into_nodes().into_iter().take(n).enumerate() {
        if let ProtocolNode::Agent(agent) = node {
            scores[i] = agent.score;
            stale += agent.stale;
            restarted_agents += usize::from(agent.restarted);
            match &agent.phase2 {
                Phase2::Batcher { sent_assign, .. } => {
                    assign_messages += u64::from(*sent_assign);
                }
                Phase2::Gossip { core, .. } => {
                    if let Some(core) = core {
                        probes = probes.max(core.probes());
                        stale += core.stale_messages();
                    }
                }
            }
            match agent.output {
                Some(one) => bits[i] = one,
                None => missing += 1,
            }
        }
    }
    let agent_liveness: Vec<bool> = (0..n)
        .map(|i| {
            options
                .node_faults
                .as_ref()
                .is_none_or(|plan| !plan.is_down(i, report.rounds))
        })
        .collect();

    let grace = options.grace;
    let selection_rounds = match strategy {
        // Subtract measure (0), accumulate (1 + grace) and the
        // assignment round.
        SelectionStrategy::BatcherSort => report.rounds.saturating_sub(3 + grace),
        // Subtract measure and accumulate; gossip has no assignment round.
        SelectionStrategy::GossipThreshold { .. } => report.rounds.saturating_sub(2 + grace),
    };

    let selection_messages = metrics
        .messages_sent
        .saturating_sub(measurement_messages + assign_messages);

    if telemetry.is_enabled() {
        // Phase boundaries mirror the selection_rounds arithmetic above:
        // measurement broadcast is round 0, accumulation spans the grace
        // window plus the score round, selection fills the middle, and
        // Batcher spends the final round on assignments. Emitted serially
        // after the run, so the stream stays bit-identical across shard
        // and thread counts; a harness joins these round ranges against
        // the engine's per-round spans for wall-clock phase shares.
        let accumulate_end = 1 + grace;
        let select_end = accumulate_end + selection_rounds;
        let phase_event = |name: &'static str, first: u64, last: u64, messages: u64| {
            Event::instant("phase")
                .phase(name)
                .round(first)
                .u64("first_round", first)
                .u64("last_round", last)
                .u64("rounds", last.saturating_sub(first) + 1)
                .u64("messages", messages)
        };
        telemetry.emit(|| phase_event("measure", 0, 0, measurement_messages));
        telemetry.emit(|| phase_event("accumulate", 1, accumulate_end, 0));
        telemetry.emit(|| {
            let mut e = phase_event("select", accumulate_end + 1, select_end, selection_messages);
            if let SelectionStrategy::GossipThreshold { .. } = strategy {
                e = e.u64("probes", u64::from(probes));
            }
            e
        });
        if let SelectionStrategy::BatcherSort = strategy {
            telemetry.emit(|| {
                phase_event(
                    "assign",
                    report.rounds.saturating_sub(1),
                    report.rounds.saturating_sub(1),
                    assign_messages,
                )
            });
        }
        // Final accounting into the counter registry: the engine's
        // Metrics rows (the satellite `as_rows` enumeration) plus the
        // protocol-level tallies.
        for (name, value) in metrics.as_rows() {
            telemetry.add(name, value);
        }
        telemetry.add("measurement_messages", measurement_messages);
        telemetry.add("selection_messages", selection_messages);
        telemetry.add("assign_messages", assign_messages);
        telemetry.add("stale_messages", stale);
        telemetry.add("probes", u64::from(probes));
        telemetry.add("selection_rounds", selection_rounds);
        telemetry.add("missing_assignments", missing as u64);
        telemetry.add("achieved_quorum", (n - missing) as u64);
        telemetry.add("restarted_agents", restarted_agents as u64);
    }

    Ok(ProtocolOutcome {
        estimate: Estimate::from_parts(bits, scores),
        rounds: report.rounds,
        metrics,
        strategy,
        sort_depth,
        probes,
        selection_rounds,
        selection_messages,
        stale_messages: stale,
        missing_assignments: missing,
        achieved_quorum: n - missing,
        agent_liveness,
        restarted_agents,
        node_traffic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{Decoder, GreedyDecoder};
    use crate::model::Instance;
    use crate::noise::NoiseModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_run(n: usize, k: usize, m: usize, noise: NoiseModel, seed: u64) -> Run {
        Instance::builder(n)
            .k(k)
            .queries(m)
            .noise(noise)
            .build()
            .unwrap()
            .sample(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn matches_sequential_decoder_noiseless() {
        for seed in 0..4 {
            let run = sample_run(64, 3, 50, NoiseModel::Noiseless, seed);
            let outcome = run_protocol(&run).unwrap();
            let sequential = GreedyDecoder::new().decode(&run);
            assert_eq!(outcome.estimate, sequential, "seed={seed}");
            assert_eq!(outcome.missing_assignments, 0);
        }
    }

    #[test]
    fn matches_sequential_decoder_under_noise() {
        let channel = sample_run(50, 2, 40, NoiseModel::z_channel(0.3), 10);
        let gaussian = sample_run(50, 2, 40, NoiseModel::gaussian(2.0), 11);
        for run in [channel, gaussian] {
            let outcome = run_protocol(&run).unwrap();
            assert_eq!(outcome.estimate, GreedyDecoder::new().decode(&run));
        }
    }

    #[test]
    fn matches_sequential_on_non_power_of_two_sizes() {
        for n in [5usize, 17, 33, 100] {
            let run = sample_run(n, 2.min(n), 30, NoiseModel::Noiseless, n as u64);
            let outcome = run_protocol(&run).unwrap();
            assert_eq!(outcome.estimate, GreedyDecoder::new().decode(&run), "n={n}");
        }
    }

    /// The tentpole equivalence: the gossip threshold selection embedded
    /// in the protocol is bit-identical to the sequential decoder (and
    /// hence to the Batcher path), across noise models and awkward
    /// population sizes — including the tie-heavy noiseless scores.
    #[test]
    fn gossip_strategy_matches_sequential_decoder() {
        for (seed, noise) in [
            (0u64, NoiseModel::Noiseless),
            (1, NoiseModel::z_channel(0.3)),
            (2, NoiseModel::channel(0.2, 0.1)),
            (3, NoiseModel::gaussian(1.5)),
        ] {
            let run = sample_run(96, 3, 60, noise, seed);
            let outcome = run_protocol_with(&run, SelectionStrategy::gossip()).unwrap();
            let sequential = GreedyDecoder::new().decode(&run);
            assert_eq!(outcome.estimate, sequential, "noise={noise}");
            assert_eq!(outcome.missing_assignments, 0);
            assert_eq!(outcome.stale_messages, 0);
        }
        for n in [2usize, 3, 5, 17, 33, 100] {
            let run = sample_run(n, 2.min(n), 30, NoiseModel::Noiseless, 40 + n as u64);
            let outcome = run_protocol_with(&run, SelectionStrategy::gossip()).unwrap();
            assert_eq!(outcome.estimate, GreedyDecoder::new().decode(&run), "n={n}");
        }
    }

    /// The gossip path never materializes the sorting network and decides
    /// every bit locally: no assignment traffic, per-phase accounting adds
    /// up.
    #[test]
    fn gossip_strategy_skips_sorting_network_and_assignments() {
        let run = sample_run(64, 3, 80, NoiseModel::gaussian(1.0), 9);
        let outcome = run_protocol_with(&run, SelectionStrategy::gossip()).unwrap();
        assert_eq!(outcome.strategy, SelectionStrategy::gossip());
        assert_eq!(outcome.sort_depth, 0);
        assert!(outcome.probes > 0, "adaptive bisection must probe");
        let measurement: u64 = run
            .graph()
            .queries()
            .iter()
            .map(|q| q.distinct_len() as u64)
            .sum();
        // All non-measurement traffic belongs to the selection phase.
        assert_eq!(
            outcome.selection_messages,
            outcome.metrics.messages_sent - measurement
        );
        assert_eq!(outcome.selection_rounds, outcome.rounds - 2);
    }

    #[test]
    fn round_count_is_depth_plus_three() {
        let run = sample_run(32, 2, 10, NoiseModel::Noiseless, 1);
        let outcome = run_protocol(&run).unwrap();
        assert_eq!(outcome.rounds, outcome.sort_depth as u64 + 3);
        assert_eq!(outcome.selection_rounds, outcome.sort_depth as u64);
    }

    #[test]
    fn message_budget_matches_formula() {
        // Messages = Σⱼ|∂*aⱼ| (measurements) + 2·comparators (tokens)
        //          + n (assignments).
        let run = sample_run(40, 2, 12, NoiseModel::Noiseless, 2);
        let outcome = run_protocol(&run).unwrap();
        let measurement_msgs: u64 = run
            .graph()
            .queries()
            .iter()
            .map(|q| q.distinct_len() as u64)
            .sum();
        let comparators = SortingNetwork::batcher_odd_even(40).comparator_count() as u64;
        let want = measurement_msgs + 2 * comparators + 40;
        assert_eq!(outcome.metrics.messages_sent, want);
        assert_eq!(outcome.selection_messages, 2 * comparators);
    }

    #[test]
    fn one_exchange_per_query_node() {
        // The paper's headline: each query node broadcasts its measurement
        // exactly once (one active send round, one message per distinct
        // member), and never receives anything.
        let run = sample_run(30, 2, 8, NoiseModel::Noiseless, 3);
        let outcome = run_protocol(&run).unwrap();
        let n = 30;
        for (j, q) in run.graph().queries().iter().enumerate() {
            let t = outcome.node_traffic[n + j];
            assert_eq!(t.active_send_rounds, 1, "query {j}");
            assert_eq!(t.sent, q.distinct_len() as u64, "query {j}");
            assert_eq!(t.received, 0, "query {j}");
        }
        // Agents exchange only during the sort + one assignment: bounded by
        // one message per layer plus the assignment.
        for (i, t) in outcome.node_traffic[..n].iter().enumerate() {
            assert!(
                t.sent <= outcome.sort_depth as u64 + 1,
                "agent {i} sent {} messages",
                t.sent
            );
        }
    }

    #[test]
    fn tiny_populations() {
        for n in [2usize, 3] {
            let run = sample_run(n, 1, 6, NoiseModel::Noiseless, 7);
            let outcome = run_protocol(&run).unwrap();
            assert_eq!(outcome.estimate, GreedyDecoder::new().decode(&run), "n={n}");
        }
    }

    #[test]
    fn survives_measurement_drops_with_generous_queries() {
        // 1% drop rate, twice the necessary queries: reconstruction should
        // still be exact for this seed, and the protocol must terminate.
        // (Fault seed re-picked for the per-message-identity fault RNG.)
        let run = sample_run(64, 2, 120, NoiseModel::Noiseless, 22);
        let faults = FaultConfig::new(0.01, 0.0, 1).unwrap();
        let outcome = run_protocol_with_faults(&run, faults).unwrap();
        assert!(outcome.metrics.messages_dropped > 0);
        assert_eq!(outcome.estimate.ones(), run.ground_truth().ones());
    }

    #[test]
    fn heavy_drops_degrade_but_terminate() {
        let run = sample_run(32, 2, 40, NoiseModel::Noiseless, 22);
        let faults = FaultConfig::new(0.5, 0.0, 6).unwrap();
        let outcome = run_protocol_with_faults(&run, faults).unwrap();
        // Termination and shape are guaranteed; correctness is not.
        assert_eq!(outcome.estimate.bits().len(), 32);
        assert!(outcome.rounds <= outcome.sort_depth as u64 + 5);
    }

    #[test]
    fn duplication_faults_terminate() {
        let run = sample_run(16, 1, 10, NoiseModel::Noiseless, 23);
        let faults = FaultConfig::new(0.0, 0.3, 7).unwrap();
        let outcome = run_protocol_with_faults(&run, faults).unwrap();
        assert_eq!(outcome.estimate.bits().len(), 16);
    }

    /// Regression (stale-token bug): `ProtocolMessage::Token` used to
    /// carry no layer tag, so with delay faults a token from an earlier
    /// layer was consumed by `first_token` as the current layer's partner,
    /// silently corrupting the compare-exchange (verified: the
    /// stale-consuming variant produces a *different* estimate on every
    /// seed below). `first_token` must skip wrong-layer tokens — even when
    /// the stale sender sorts first in the inbox — and report them.
    #[test]
    fn first_token_filters_stale_layers() {
        let stale = ProtocolMessage::Token {
            score: 9.0,
            agent: 0,
            layer: 0,
        };
        let current = ProtocolMessage::Token {
            score: 2.0,
            agent: 5,
            layer: 1,
        };
        // The stale sender (id 0) precedes the current partner (id 5) in
        // the (sender, seq)-sorted inbox — exactly the arrangement the old
        // `first_token` mis-consumed.
        let inbox = vec![
            Envelope {
                from: NodeId(0),
                to: NodeId(3),
                payload: stale,
            },
            Envelope {
                from: NodeId(5),
                to: NodeId(3),
                payload: current,
            },
        ];
        let (found, stale_count) = first_token(&inbox, 1);
        assert_eq!(found, Some((2.0, 5)));
        assert_eq!(stale_count, 1);
        // A fully stale inbox degrades to "no partner" instead of
        // consuming a wrong-layer token.
        let (found, stale_count) = first_token(&inbox[..1], 1);
        assert_eq!(found, None);
        assert_eq!(stale_count, 1);
    }

    /// End-to-end arm of the stale-token regression: delay-only faults
    /// must terminate, surface the filtered tokens in
    /// [`ProtocolOutcome::stale_messages`], and replay deterministically.
    #[test]
    fn delayed_tokens_are_filtered_not_consumed() {
        let mut saw_stale = false;
        for seed in 0..12u64 {
            let run = sample_run(32, 3, 120, NoiseModel::Noiseless, 50 + seed);
            let faults = FaultConfig::new(0.0, 0.0, seed).unwrap().with_max_delay(2);
            let outcome = run_protocol_with_faults(&run, faults).unwrap();
            assert_eq!(outcome.estimate.bits().len(), 32, "seed={seed}");
            saw_stale |= outcome.stale_messages > 0;
        }
        assert!(saw_stale, "no run exercised the stale-token path");
    }

    /// Regression (delay-budget bug): the round budget used to be
    /// `sort_depth + 5`, ignoring `faults.max_delay()`, so a delayed
    /// assignment turned graceful degradation into a spurious
    /// `MaxRoundsExceeded`. With the delay bound in the budget every
    /// delay-only run must terminate cleanly.
    #[test]
    fn delay_only_faults_stay_within_budget() {
        let mut saw_delay = false;
        for seed in 0..10u64 {
            let run = sample_run(24, 2, 60, NoiseModel::Noiseless, 80 + seed);
            let faults = FaultConfig::new(0.0, 0.0, seed).unwrap().with_max_delay(6);
            let outcome = run_protocol_with_faults(&run, faults)
                .unwrap_or_else(|e| panic!("seed={seed}: spurious {e}"));
            assert_eq!(outcome.estimate.bits().len(), 24);
            saw_delay |= outcome.metrics.messages_delayed > 0;
        }
        assert!(saw_delay, "no run drew a delay fault");
    }

    /// The gossip strategy under combined faults: terminates, never
    /// panics, and every agent still decides its own bit (selection is
    /// local, so there are no missing assignments to report).
    #[test]
    fn gossip_strategy_degrades_gracefully_under_faults() {
        for (drop, dup, delay, seed) in [(0.1, 0.0, 0u64, 1u64), (0.0, 0.3, 2, 2), (0.2, 0.2, 3, 3)]
        {
            let run = sample_run(48, 3, 70, NoiseModel::Noiseless, 90 + seed);
            let faults = FaultConfig::new(drop, dup, seed)
                .unwrap()
                .with_max_delay(delay);
            let outcome = run_protocol_configured(&run, SelectionStrategy::gossip(), Some(faults))
                .expect("gossip protocol must terminate under faults");
            assert_eq!(outcome.estimate.bits().len(), 48);
            assert_eq!(outcome.missing_assignments, 0, "gossip decisions are local");
        }
    }

    #[test]
    fn token_order_is_total_and_deterministic() {
        assert!(token_precedes((2.0, 5), (1.0, 0)));
        assert!(!token_precedes((1.0, 0), (2.0, 5)));
        assert!(token_precedes((1.0, 0), (1.0, 1)));
        assert!(!token_precedes((1.0, 1), (1.0, 0)));
    }

    #[test]
    fn strategy_display_names() {
        assert_eq!(SelectionStrategy::BatcherSort.to_string(), "batcher");
        assert_eq!(SelectionStrategy::gossip().to_string(), "gossip");
    }

    /// The acceptance bar of the chaos tentpole: with ~10% of nodes
    /// crashing mid-protocol and ~5% corrupting payloads, both selection
    /// strategies complete cleanly (no panic, no `MaxRoundsExceeded`),
    /// report the achieved quorum, and the runs replay bit-identically.
    #[test]
    fn chaos_crashes_and_corruption_complete_on_both_strategies() {
        let run = sample_run(64, 3, 90, NoiseModel::Noiseless, 77);
        let plan = NodeFaultPlan::new(9)
            .with_crashes(0.10, (1, 6))
            .unwrap()
            .with_corruption(0.05, 1.0)
            .unwrap();
        for strategy in [SelectionStrategy::BatcherSort, SelectionStrategy::gossip()] {
            let options = ProtocolOptions {
                strategy,
                node_faults: Some(plan),
                ..ProtocolOptions::default()
            };
            let outcome = run_protocol_chaos(&run, options)
                .unwrap_or_else(|e| panic!("{strategy}: chaos run must complete: {e}"));
            assert_eq!(outcome.estimate.bits().len(), 64, "{strategy}");
            assert!(outcome.metrics.node_crashes > 0, "{strategy}");
            assert!(outcome.metrics.messages_corrupted > 0, "{strategy}");
            assert!(
                outcome.achieved_quorum < 64 && outcome.achieved_quorum > 32,
                "{strategy}: quorum {}",
                outcome.achieved_quorum
            );
            assert_eq!(outcome.achieved_quorum, 64 - outcome.missing_assignments);
            assert_eq!(outcome.agent_liveness.len(), 64);
            assert!(
                outcome.agent_liveness.iter().any(|&alive| !alive),
                "{strategy}: some agent must be down at the end"
            );
            let replay = run_protocol_chaos(&run, options).unwrap();
            assert_eq!(outcome, replay, "{strategy}: chaos must replay");
        }
    }

    /// Restarted agents rejoin passively instead of panicking on the
    /// missing gossip core (the restart hazard of the embedded selection)
    /// and are reported in the outcome.
    #[test]
    fn restarted_agents_rejoin_passively() {
        let run = sample_run(32, 2, 60, NoiseModel::Noiseless, 31);
        let plan = NodeFaultPlan::new(4)
            .with_crashes(0.25, (1, 4))
            .unwrap()
            .with_restarts(2);
        for strategy in [SelectionStrategy::BatcherSort, SelectionStrategy::gossip()] {
            let outcome = run_protocol_chaos(
                &run,
                ProtocolOptions {
                    strategy,
                    node_faults: Some(plan),
                    ..ProtocolOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("{strategy}: restart run must complete: {e}"));
            assert!(outcome.metrics.node_restarts > 0, "{strategy}");
            assert!(outcome.restarted_agents > 0, "{strategy}");
            // Everyone is back up at the end; the quorum gap is exactly
            // the restarted agents that missed their (re)assignment.
            assert!(outcome.agent_liveness.iter().all(|&alive| alive));
            assert_eq!(outcome.achieved_quorum + outcome.missing_assignments, 32);
        }
    }

    /// At-least-once measurement delivery plus a grace window recovers
    /// the exact fault-free scores under heavy measurement loss: every
    /// retransmitted measurement is folded exactly once (dedup by query
    /// sender), so Ψᵢ matches the sequential decoder bit for bit.
    #[test]
    fn reliable_measurements_with_grace_recover_scores() {
        let run = sample_run(48, 2, 80, NoiseModel::Noiseless, 13);
        let rc = ReliableConfig::new(1, 4);
        let outcome = run_protocol_chaos(
            &run,
            ProtocolOptions {
                strategy: SelectionStrategy::BatcherSort,
                faults: Some(FaultConfig::new(0.15, 0.0, 3).unwrap()),
                reliable: Some(rc),
                grace: rc.worst_case_rounds(),
                ..ProtocolOptions::default()
            },
        )
        .expect("reliable run must complete");
        assert!(outcome.metrics.messages_retransmitted > 0);
        let sequential = GreedyDecoder::new().decode(&run);
        assert_eq!(outcome.estimate.scores(), sequential.scores());
    }

    /// Winsorized accumulation bounds the leverage of corrupted
    /// measurements: every folded value is clamped into `[0, slots]`, so
    /// each agent's score stays within the envelope a *clean* fold could
    /// produce — `Ψᵢ ∈ [0, Σ slots]` — no matter how far the garbler
    /// skewed the payloads.
    #[test]
    fn winsorized_fold_bounds_corrupted_measurements() {
        let run = sample_run(40, 2, 70, NoiseModel::Noiseless, 55);
        let plan = NodeFaultPlan::new(2).with_corruption(0.2, 1.0).unwrap();
        let base = ProtocolOptions {
            strategy: SelectionStrategy::BatcherSort,
            node_faults: Some(plan),
            ..ProtocolOptions::default()
        };
        let raw = run_protocol_chaos(&run, base).unwrap();
        let clamped = run_protocol_chaos(
            &run,
            ProtocolOptions {
                winsorize: true,
                ..base
            },
        )
        .unwrap();
        assert!(raw.metrics.messages_corrupted > 0);
        assert_ne!(
            raw.estimate.scores(),
            clamped.estimate.scores(),
            "the clamp must have engaged on some corrupted value"
        );
        // Clean-fold envelope: Ψᵢ ∈ [0, total slots] and the centering
        // term is at most total·rate, so |score| ≤ total·max(1, rate).
        let total_slots: u64 = run
            .graph()
            .queries()
            .iter()
            .map(|q| q.total_slots() as u64)
            .sum();
        let rate = crate::greedy::second_neighborhood_rate(40, 2, run.instance().noise());
        let bound = total_slots as f64 * rate.max(1.0);
        for (i, s) in clamped.estimate.scores().iter().enumerate() {
            assert!(
                s.abs() <= bound,
                "agent {i}: winsorized score {s} escapes the clean envelope {bound}"
            );
        }
    }

    /// A tightened probe cap shrinks the gossip round budget but the
    /// protocol still completes and matches the sequential decoder on
    /// well-conditioned scores.
    #[test]
    fn tight_probe_limit_still_selects() {
        let run = sample_run(48, 3, 70, NoiseModel::gaussian(1.0), 8);
        let outcome =
            run_protocol_with(&run, SelectionStrategy::GossipThreshold { probe_limit: 40 })
                .expect("tight-cap run must complete");
        assert_eq!(outcome.estimate, GreedyDecoder::new().decode(&run));
        assert!(outcome.probes <= 40);
    }
}
