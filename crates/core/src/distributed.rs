//! The fully distributed implementation of Algorithm 1 on the message-
//! passing simulator.
//!
//! Network layout: nodes `0..n` are agents, nodes `n..n+m` are query nodes.
//! The protocol follows the paper line by line:
//!
//! 1. **Measure in parallel** (round 0): each query node sends its noisy
//!    result `σ̂ⱼ` to every *distinct* member `∂*aⱼ`.
//! 2. **Accumulate** (round 1): each agent folds the incoming measurements
//!    into `Ψᵢ` and `Δ*ᵢ` and forms its score `Ψᵢ − Δ*ᵢ·k/2`.
//! 3. **Sort via a sorting network** (rounds `2..2+depth`): agents run a
//!    Batcher odd-even mergesort on score tokens; one network layer per
//!    round, two messages per comparator.
//! 4. **Assign** (final round): the agent holding a token at position `< k`
//!    notifies the token's owner to output bit one.
//!
//! The output is *bit-identical* to [`crate::GreedyDecoder`] (same summation
//! order, same deterministic tie-breaking), which the test-suite asserts —
//! the distributed variant is equivalent, exactly as claimed in Section III.
//!
//! Under fault injection the protocol degrades gracefully rather than
//! deadlocking: a missing partner token leaves the agent's own token in
//! place, and a missing assignment defaults to bit zero (reported in
//! [`ProtocolOutcome::missing_assignments`]).

use crate::greedy::Estimate;
use crate::model::Run;
use npd_netsim::{
    recommended_shards, Activity, Context, Envelope, FaultConfig, MaxRoundsExceeded, Metrics,
    Network, Node, NodeId, NodeTraffic,
};
use npd_sortnet::SortingNetwork;
use std::sync::Arc;

/// Messages exchanged by the protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtocolMessage {
    /// A query's (noisy) measurement, broadcast to its distinct members.
    /// Carries the recipient's multiplicity in the query so the agent can
    /// form the noise-aware score (the query node knows how often it drew
    /// each member).
    Measurement {
        /// The query result `σ̂ⱼ`.
        value: f64,
        /// How often the recipient was drawn into the query.
        multiplicity: u32,
        /// The query's total slot count `|∂aⱼ|` (equals `Γ` on
        /// query-regular designs; carried explicitly so the noise-aware
        /// centering is exact on ragged, degree-balanced designs).
        slots: u32,
    },
    /// A sorting token: the score and the agent it belongs to.
    Token {
        /// Greedy score of the token's owner.
        score: f64,
        /// The owner's agent id.
        agent: u32,
    },
    /// Final bit assignment delivered to the token's owner.
    Assign {
        /// Whether the owner is among the top `k`.
        one: bool,
    },
}

/// Per-position comparator schedule derived from a [`SortingNetwork`].
#[derive(Debug)]
struct SortSchedule {
    depth: usize,
    /// `per_layer[layer][pos] = (partner, is_lo)` if `pos` participates.
    per_layer: Vec<Vec<Option<(u32, bool)>>>,
}

impl SortSchedule {
    fn new(net: &SortingNetwork) -> Self {
        let n = net.size();
        let per_layer = net
            .layers()
            .iter()
            .map(|layer| {
                let mut row = vec![None; n];
                for c in layer {
                    row[c.lo] = Some((c.hi as u32, true));
                    row[c.hi] = Some((c.lo as u32, false));
                }
                row
            })
            .collect::<Vec<_>>();
        Self {
            depth: per_layer.len(),
            per_layer,
        }
    }
}

/// Token ordering: higher score first, ties toward the smaller agent id —
/// the same total order the sequential decoder ranks by.
fn token_precedes(a: (f64, u32), b: (f64, u32)) -> bool {
    if a.0 != b.0 {
        a.0 > b.0
    } else {
        a.1 < b.1
    }
}

/// One network participant: an agent or a query node.
#[derive(Debug)]
enum ProtocolNode {
    Agent(AgentState),
    Query(QueryState),
}

#[derive(Debug)]
struct AgentState {
    k: usize,
    pos: u32,
    /// Per-slot one-read rate of the second neighborhood.
    slot_rate: f64,
    schedule: Arc<SortSchedule>,
    psi: f64,
    distinct: u32,
    multi: u64,
    /// Total slots of the queries heard from (`Σ_{j∈∂*i} |∂aⱼ|`).
    slot_sum: u64,
    score: f64,
    token: (f64, u32),
    output: Option<bool>,
}

#[derive(Debug)]
struct QueryState {
    /// Distinct members with their multiplicities.
    neighbors: Vec<(u32, u32)>,
    result: f64,
    /// Total slot count of this query (including multiplicities).
    slots: u32,
}

impl Node<ProtocolMessage> for ProtocolNode {
    fn on_round(&mut self, ctx: &mut Context<'_, ProtocolMessage>) -> Activity {
        match self {
            ProtocolNode::Query(q) => q.on_round(ctx),
            ProtocolNode::Agent(a) => a.on_round(ctx),
        }
    }
}

impl QueryState {
    fn on_round(&mut self, ctx: &mut Context<'_, ProtocolMessage>) -> Activity {
        if ctx.round() == 0 {
            for &(a, count) in &self.neighbors {
                ctx.send(
                    NodeId(a as usize),
                    ProtocolMessage::Measurement {
                        value: self.result,
                        multiplicity: count,
                        slots: self.slots,
                    },
                );
            }
        }
        Activity::Idle
    }
}

impl AgentState {
    fn on_round(&mut self, ctx: &mut Context<'_, ProtocolMessage>) -> Activity {
        let r = ctx.round();
        if r == 0 {
            // Measurements are still in flight; stay active so round 1
            // happens even in a query-free network.
            return Activity::Active;
        }
        if r == 1 {
            for env in ctx.inbox() {
                if let ProtocolMessage::Measurement {
                    value,
                    multiplicity,
                    slots,
                } = env.payload
                {
                    self.psi += value;
                    self.distinct += 1;
                    self.multi += multiplicity as u64;
                    self.slot_sum += slots as u64;
                }
            }
            // Identical expression (and evaluation order) to the sequential
            // decoder, so the two implementations agree bit-for-bit.
            let slots = (self.slot_sum - self.multi) as f64;
            self.score = self.psi - slots * self.slot_rate;
            self.token = (self.score, self.pos);
            if self.schedule.depth == 0 {
                // Trivial sort (n = 1): assign immediately.
                let one = (self.pos as usize) < self.k;
                ctx.send(
                    NodeId(self.token.1 as usize),
                    ProtocolMessage::Assign { one },
                );
            } else if let Some((partner, _)) = self.schedule.per_layer[0][self.pos as usize] {
                let (score, agent) = self.token;
                ctx.send(
                    NodeId(partner as usize),
                    ProtocolMessage::Token { score, agent },
                );
            }
            return Activity::Idle;
        }

        let resolved_layer = (r - 2) as usize;
        if resolved_layer < self.schedule.depth {
            // Resolve the compare-exchange whose tokens arrived this round.
            if let Some((_, is_lo)) = self.schedule.per_layer[resolved_layer][self.pos as usize] {
                if let Some(theirs) = first_token(ctx.inbox()) {
                    let mine_first = token_precedes(self.token, theirs);
                    // `lo` keeps the preceding token, `hi` the other.
                    self.token = if is_lo == mine_first {
                        self.token
                    } else {
                        theirs
                    };
                }
                // A dropped partner token leaves our token in place —
                // degraded but deadlock-free (see module docs).
            }
            let next = resolved_layer + 1;
            if next < self.schedule.depth {
                if let Some((partner, _)) = self.schedule.per_layer[next][self.pos as usize] {
                    let (score, agent) = self.token;
                    ctx.send(
                        NodeId(partner as usize),
                        ProtocolMessage::Token { score, agent },
                    );
                }
            } else {
                // Sorting finished: position < k ⇒ the token's owner is one.
                let one = (self.pos as usize) < self.k;
                ctx.send(
                    NodeId(self.token.1 as usize),
                    ProtocolMessage::Assign { one },
                );
            }
        } else if resolved_layer == self.schedule.depth {
            for env in ctx.inbox() {
                if let ProtocolMessage::Assign { one } = env.payload {
                    self.output = Some(one);
                }
            }
        }
        Activity::Idle
    }
}

/// First token in an inbox (duplicates from fault injection are ignored).
fn first_token(inbox: &[Envelope<ProtocolMessage>]) -> Option<(f64, u32)> {
    inbox.iter().find_map(|env| match env.payload {
        ProtocolMessage::Token { score, agent } => Some((score, agent)),
        _ => None,
    })
}

/// Result of a protocol run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolOutcome {
    /// The reconstruction (bits plus the scores the agents computed).
    pub estimate: Estimate,
    /// Synchronous rounds until quiescence.
    pub rounds: u64,
    /// Full communication metrics from the simulator.
    pub metrics: Metrics,
    /// Depth of the sorting network used in phase II.
    pub sort_depth: usize,
    /// Agents that never received an assignment (non-zero only under
    /// fault injection); they default to bit zero.
    pub missing_assignments: usize,
    /// Per-node traffic: agents first (`0..n`), then query nodes
    /// (`n..n+m`). Backs the paper's per-node communication claim.
    pub node_traffic: Vec<NodeTraffic>,
}

/// Runs the distributed protocol for a sampled [`Run`] on a fault-free
/// network.
///
/// # Errors
///
/// Returns [`MaxRoundsExceeded`] if the network fails to quiesce — which
/// indicates a bug, as the fault-free protocol always terminates after
/// `depth + 3` rounds.
///
/// # Examples
///
/// ```
/// use npd_core::{distributed, Decoder, GreedyDecoder, Instance};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let run = Instance::builder(64).k(2).queries(60).build().unwrap().sample(&mut rng);
/// let outcome = distributed::run_protocol(&run).unwrap();
/// assert_eq!(outcome.estimate, GreedyDecoder::new().decode(&run));
/// ```
pub fn run_protocol(run: &Run) -> Result<ProtocolOutcome, MaxRoundsExceeded> {
    run_protocol_inner(run, None)
}

/// Runs the distributed protocol with message fault injection.
///
/// See the module docs for the degradation semantics; correctness of the
/// sort requires reliable delivery, so dropped token or assignment messages
/// surface as reconstruction errors and
/// [`missing_assignments`](ProtocolOutcome::missing_assignments), never as
/// deadlock.
///
/// # Errors
///
/// Returns [`MaxRoundsExceeded`] if the network fails to quiesce.
pub fn run_protocol_with_faults(
    run: &Run,
    faults: FaultConfig,
) -> Result<ProtocolOutcome, MaxRoundsExceeded> {
    run_protocol_inner(run, Some(faults))
}

fn run_protocol_inner(
    run: &Run,
    faults: Option<FaultConfig>,
) -> Result<ProtocolOutcome, MaxRoundsExceeded> {
    let n = run.instance().n();
    let k = run.instance().k();
    let slot_rate = crate::greedy::second_neighborhood_rate(n, k, run.instance().noise());
    let sort_net = SortingNetwork::batcher_odd_even(n);
    let sort_depth = sort_net.depth();
    let schedule = Arc::new(SortSchedule::new(&sort_net));

    let mut nodes: Vec<ProtocolNode> = Vec::with_capacity(n + run.instance().m());
    for pos in 0..n {
        nodes.push(ProtocolNode::Agent(AgentState {
            k,
            pos: pos as u32,
            slot_rate,
            schedule: Arc::clone(&schedule),
            psi: 0.0,
            distinct: 0,
            multi: 0,
            slot_sum: 0,
            score: 0.0,
            token: (0.0, pos as u32),
            output: None,
        }));
    }
    for (j, q) in run.graph().queries().iter().enumerate() {
        nodes.push(ProtocolNode::Query(QueryState {
            neighbors: q.iter().collect(),
            result: run.results()[j],
            slots: q.total_slots(),
        }));
    }

    // One shard per rayon worker; the outcome is bit-identical for any
    // shard count (the netsim engine's core guarantee).
    let shards = recommended_shards(nodes.len());
    let mut network = match faults {
        None => Network::new(nodes),
        Some(cfg) => Network::with_faults(nodes, cfg),
    }
    .with_shards(shards);
    let budget = sort_depth as u64 + 5;
    let report = network.run_until_quiescent_parallel(budget)?;
    let metrics = *network.metrics();
    let node_traffic = network.traffic().to_vec();

    let mut bits = vec![false; n];
    let mut scores = vec![0.0; n];
    let mut missing = 0usize;
    for (i, node) in network.into_nodes().into_iter().take(n).enumerate() {
        if let ProtocolNode::Agent(agent) = node {
            scores[i] = agent.score;
            match agent.output {
                Some(one) => bits[i] = one,
                None => missing += 1,
            }
        }
    }

    Ok(ProtocolOutcome {
        estimate: Estimate::from_parts(bits, scores),
        rounds: report.rounds,
        metrics,
        sort_depth,
        missing_assignments: missing,
        node_traffic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{Decoder, GreedyDecoder};
    use crate::model::Instance;
    use crate::noise::NoiseModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_run(n: usize, k: usize, m: usize, noise: NoiseModel, seed: u64) -> Run {
        Instance::builder(n)
            .k(k)
            .queries(m)
            .noise(noise)
            .build()
            .unwrap()
            .sample(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn matches_sequential_decoder_noiseless() {
        for seed in 0..4 {
            let run = sample_run(64, 3, 50, NoiseModel::Noiseless, seed);
            let outcome = run_protocol(&run).unwrap();
            let sequential = GreedyDecoder::new().decode(&run);
            assert_eq!(outcome.estimate, sequential, "seed={seed}");
            assert_eq!(outcome.missing_assignments, 0);
        }
    }

    #[test]
    fn matches_sequential_decoder_under_noise() {
        let channel = sample_run(50, 2, 40, NoiseModel::z_channel(0.3), 10);
        let gaussian = sample_run(50, 2, 40, NoiseModel::gaussian(2.0), 11);
        for run in [channel, gaussian] {
            let outcome = run_protocol(&run).unwrap();
            assert_eq!(outcome.estimate, GreedyDecoder::new().decode(&run));
        }
    }

    #[test]
    fn matches_sequential_on_non_power_of_two_sizes() {
        for n in [5usize, 17, 33, 100] {
            let run = sample_run(n, 2.min(n), 30, NoiseModel::Noiseless, n as u64);
            let outcome = run_protocol(&run).unwrap();
            assert_eq!(outcome.estimate, GreedyDecoder::new().decode(&run), "n={n}");
        }
    }

    #[test]
    fn round_count_is_depth_plus_three() {
        let run = sample_run(32, 2, 10, NoiseModel::Noiseless, 1);
        let outcome = run_protocol(&run).unwrap();
        assert_eq!(outcome.rounds, outcome.sort_depth as u64 + 3);
    }

    #[test]
    fn message_budget_matches_formula() {
        // Messages = Σⱼ|∂*aⱼ| (measurements) + 2·comparators (tokens)
        //          + n (assignments).
        let run = sample_run(40, 2, 12, NoiseModel::Noiseless, 2);
        let outcome = run_protocol(&run).unwrap();
        let measurement_msgs: u64 = run
            .graph()
            .queries()
            .iter()
            .map(|q| q.distinct_len() as u64)
            .sum();
        let comparators = SortingNetwork::batcher_odd_even(40).comparator_count() as u64;
        let want = measurement_msgs + 2 * comparators + 40;
        assert_eq!(outcome.metrics.messages_sent, want);
    }

    #[test]
    fn one_exchange_per_query_node() {
        // The paper's headline: each query node broadcasts its measurement
        // exactly once (one active send round, one message per distinct
        // member), and never receives anything.
        let run = sample_run(30, 2, 8, NoiseModel::Noiseless, 3);
        let outcome = run_protocol(&run).unwrap();
        let n = 30;
        for (j, q) in run.graph().queries().iter().enumerate() {
            let t = outcome.node_traffic[n + j];
            assert_eq!(t.active_send_rounds, 1, "query {j}");
            assert_eq!(t.sent, q.distinct_len() as u64, "query {j}");
            assert_eq!(t.received, 0, "query {j}");
        }
        // Agents exchange only during the sort + one assignment: bounded by
        // one message per layer plus the assignment.
        for (i, t) in outcome.node_traffic[..n].iter().enumerate() {
            assert!(
                t.sent <= outcome.sort_depth as u64 + 1,
                "agent {i} sent {} messages",
                t.sent
            );
        }
    }

    #[test]
    fn tiny_populations() {
        for n in [2usize, 3] {
            let run = sample_run(n, 1, 6, NoiseModel::Noiseless, 7);
            let outcome = run_protocol(&run).unwrap();
            assert_eq!(outcome.estimate, GreedyDecoder::new().decode(&run), "n={n}");
        }
    }

    #[test]
    fn survives_measurement_drops_with_generous_queries() {
        // 1% drop rate, twice the necessary queries: reconstruction should
        // still be exact for this seed, and the protocol must terminate.
        // (Fault seed re-picked for the per-message-identity fault RNG.)
        let run = sample_run(64, 2, 120, NoiseModel::Noiseless, 22);
        let faults = FaultConfig::new(0.01, 0.0, 1).unwrap();
        let outcome = run_protocol_with_faults(&run, faults).unwrap();
        assert!(outcome.metrics.messages_dropped > 0);
        assert_eq!(outcome.estimate.ones(), run.ground_truth().ones());
    }

    #[test]
    fn heavy_drops_degrade_but_terminate() {
        let run = sample_run(32, 2, 40, NoiseModel::Noiseless, 22);
        let faults = FaultConfig::new(0.5, 0.0, 6).unwrap();
        let outcome = run_protocol_with_faults(&run, faults).unwrap();
        // Termination and shape are guaranteed; correctness is not.
        assert_eq!(outcome.estimate.bits().len(), 32);
        assert!(outcome.rounds <= outcome.sort_depth as u64 + 5);
    }

    #[test]
    fn duplication_faults_terminate() {
        let run = sample_run(16, 1, 10, NoiseModel::Noiseless, 23);
        let faults = FaultConfig::new(0.0, 0.3, 7).unwrap();
        let outcome = run_protocol_with_faults(&run, faults).unwrap();
        assert_eq!(outcome.estimate.bits().len(), 16);
    }

    #[test]
    fn token_order_is_total_and_deterministic() {
        assert!(token_precedes((2.0, 5), (1.0, 0)));
        assert!(!token_precedes((1.0, 0), (2.0, 5)));
        assert!(token_precedes((1.0, 0), (1.0, 1)));
        assert!(!token_precedes((1.0, 1), (1.0, 0)));
    }
}
