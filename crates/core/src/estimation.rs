//! Estimating the channel parameters `(p, q)` from query results.
//!
//! The paper's model assumes the flip probabilities are *known* constants
//! (Section II-A), and the working form of Algorithm 1 — the noise-aware
//! centering — consumes them. In a deployment they must come from
//! somewhere; this module recovers them from the measurements themselves by
//! the method of moments, using only quantities the model already fixes
//! (`n`, `k`, and the design's realized mean query size
//! [`crate::PoolingGraph::mean_query_slots`], which equals `Γ` on
//! query-regular designs):
//!
//! With `c₁ ~ Bin(Γ, k/n)` one-slots per query and per-edge flips,
//!
//! ```text
//! E[σ̂]   = q·Γ + (1−p−q)·Γ·k/n
//! Var[σ̂] = E[c₁](1−p)p + E[c₀]q(1−q) + (1−p−q)²·Γ·(k/n)(1−k/n)
//! ```
//!
//! Two equations, two unknowns. The mean equation expresses `p` as a linear
//! function of `q`; substituting into the variance equation leaves a
//! one-dimensional root-finding problem solved by bisection. For the
//! Z-channel (`q = 0` known a priori) the mean equation alone suffices.

use crate::model::Run;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Estimated channel parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelEstimate {
    /// Estimated false-negative rate.
    pub p: f64,
    /// Estimated false-positive rate.
    pub q: f64,
}

/// Errors from moment-based estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimationError {
    /// Fewer than two queries — no variance information.
    TooFewQueries,
    /// The observed moments are inconsistent with any channel in the model
    /// (e.g. mean above `Γ` or below zero after sampling noise).
    InconsistentMoments,
}

impl fmt::Display for EstimationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimationError::TooFewQueries => {
                write!(f, "need at least two queries to estimate channel noise")
            }
            EstimationError::InconsistentMoments => {
                write!(
                    f,
                    "observed moments are inconsistent with the channel model"
                )
            }
        }
    }
}

impl std::error::Error for EstimationError {}

/// Estimates the Z-channel flip rate `p` (assuming `q = 0`) from the mean
/// query result: `p̂ = 1 − mean(σ̂)·n/(Γ·k)`, clamped into `[0, 1)`.
///
/// # Errors
///
/// Returns [`EstimationError::TooFewQueries`] for runs with fewer than two
/// queries.
///
/// # Examples
///
/// ```
/// use npd_core::{estimation, Instance, NoiseModel};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let run = Instance::builder(1_000)
///     .k(6)
///     .queries(400)
///     .noise(NoiseModel::z_channel(0.3))
///     .build()
///     .unwrap()
///     .sample(&mut rng);
/// let p_hat = estimation::estimate_z_channel(&run).unwrap();
/// assert!((p_hat - 0.3).abs() < 0.05);
/// ```
pub fn estimate_z_channel(run: &Run) -> Result<f64, EstimationError> {
    if run.results().len() < 2 {
        return Err(EstimationError::TooFewQueries);
    }
    let mean = run.results().iter().sum::<f64>() / run.results().len() as f64;
    let instance = run.instance();
    // The realized mean query size: Γ exactly on query-regular designs,
    // the right normalizer on ragged (degree-balanced) designs.
    let expected_ones = run.graph().mean_query_slots() * instance.k() as f64 / instance.n() as f64;
    let p = 1.0 - mean / expected_ones;
    Ok(p.clamp(0.0, 1.0 - f64::EPSILON))
}

/// Estimates the per-slot one-read rate `q + k(1−p−q)/n` directly from the
/// first moment: `rate ≈ mean(σ̂)/Γ`.
///
/// This is the quantity the noise-aware centering of Algorithm 1 actually
/// consumes ([`crate::Centering::NoiseAware`]), and unlike `p` it is
/// *sharply* identified: the estimator's standard error is
/// `O(√(Var[σ̂]/m)/Γ)`. In other words, the working algorithm never needs
/// `p` and `q` separately — [`decode_with_estimated_noise`] exploits this.
///
/// # Errors
///
/// Returns [`EstimationError::TooFewQueries`] for runs with fewer than two
/// queries.
pub fn estimate_slot_rate(run: &Run) -> Result<f64, EstimationError> {
    if run.results().len() < 2 {
        return Err(EstimationError::TooFewQueries);
    }
    let mean = run.results().iter().sum::<f64>() / run.results().len() as f64;
    Ok((mean / run.graph().mean_query_slots()).max(0.0))
}

/// Runs the greedy decoder with the slot rate *estimated from the data*
/// instead of derived from known channel parameters.
///
/// This is the deployment-grade variant of Algorithm 1: it requires no
/// prior knowledge of `p` or `q` and matches the known-parameter decoder's
/// output on all but borderline instances (the estimated rate differs from
/// the true one by `O(1/(Γ√m))`).
///
/// # Errors
///
/// Returns [`EstimationError::TooFewQueries`] for runs with fewer than two
/// queries.
pub fn decode_with_estimated_noise(run: &Run) -> Result<crate::Estimate, EstimationError> {
    let rate = estimate_slot_rate(run)?;
    let scores = crate::GreedyDecoder::new().scores_with_slot_rate(run, rate);
    Ok(crate::Estimate::from_scores(scores, run.instance().k()))
}

/// Flags queries whose results look corrupted, by a robust outlier rule on
/// the per-slot read rates `σ̂ⱼ/|∂aⱼ|`.
///
/// Under every channel in the model the per-slot rates concentrate around a
/// common mean, so a measurement garbled in flight (see
/// `npd_netsim::NodeFaultPlan` corruption faults) shows up as a rate far
/// from the pack. The rule is median/MAD based — a corrupted minority
/// cannot drag the location or scale estimate the way it drags the mean
/// and variance: flag query `j` iff its rate is non-finite or
///
/// ```text
/// |rateⱼ − median| > z · 1.4826 · MAD
/// ```
///
/// (`1.4826·MAD` is the usual consistency scaling to the standard
/// deviation under Gaussian spread). `z = 5` is a sensible default: wide
/// enough that binomial sampling spread on clean runs survives, tight
/// enough to catch the multiplicative garbling the chaos fault injector
/// applies. With fewer than three queries nothing is flagged — there is no
/// meaningful spread to compare against.
pub fn flag_corrupted_queries(run: &Run, z: f64) -> Vec<bool> {
    let results = run.results();
    let queries = run.graph().queries();
    if results.len() < 3 {
        return vec![false; results.len()];
    }
    let rates: Vec<f64> = results
        .iter()
        .zip(queries)
        .map(|(&r, q)| r / q.total_slots().max(1) as f64)
        .collect();
    let median_of = |values: &mut Vec<f64>| -> f64 {
        values.sort_by(f64::total_cmp);
        let mid = values.len() / 2;
        if values.len() % 2 == 1 {
            values[mid]
        } else {
            (values[mid - 1] + values[mid]) / 2.0
        }
    };
    // Non-finite rates are corrupt by definition and must not poison the
    // median; compute location/scale on the finite ones only.
    let mut finite: Vec<f64> = rates.iter().copied().filter(|r| r.is_finite()).collect();
    if finite.len() < 3 {
        return rates.iter().map(|r| !r.is_finite()).collect();
    }
    let median = median_of(&mut finite);
    let mut deviations: Vec<f64> = finite.iter().map(|r| (r - median).abs()).collect();
    let mad = median_of(&mut deviations);
    let threshold = z * 1.4826 * mad.max(1e-12);
    rates
        .iter()
        .map(|&r| !r.is_finite() || (r - median).abs() > threshold)
        .collect()
}

/// [`estimate_slot_rate`] restricted to the queries *not* flagged in
/// `exclude` — the robust moment estimate to pair with
/// [`crate::GreedyDecoder::scores_trimmed_with_slot_rate`]: a handful of
/// garbled results shift the plain first moment by an unbounded amount,
/// so the trimmed decoder must not center with it.
///
/// # Errors
///
/// Returns [`EstimationError::TooFewQueries`] when fewer than two queries
/// survive the exclusion.
///
/// # Panics
///
/// Panics if `exclude.len() != m`.
pub fn estimate_slot_rate_trimmed(run: &Run, exclude: &[bool]) -> Result<f64, EstimationError> {
    let results = run.results();
    assert_eq!(
        exclude.len(),
        results.len(),
        "estimate_slot_rate_trimmed: exclusion mask length must equal the query count"
    );
    let mut sum = 0.0;
    let mut slots = 0.0;
    let mut kept = 0usize;
    for (j, &r) in results.iter().enumerate() {
        if !exclude[j] {
            sum += r;
            slots += run.graph().queries()[j].total_slots() as f64;
            kept += 1;
        }
    }
    if kept < 2 {
        return Err(EstimationError::TooFewQueries);
    }
    Ok((sum / slots).max(0.0))
}

/// Corruption-robust deployment decoding: flag outlier measurements,
/// re-estimate the slot rate from the survivors, and run the greedy
/// decoder with the flagged queries excluded from the accumulation.
///
/// This is the sequential counterpart of the distributed protocol's
/// winsorized fold, but strictly stronger where it applies: winsorizing
/// caps a corrupted measurement's contribution at the feasible range,
/// trimming removes it entirely — both the garbled result *and* its degree
/// terms leave the centering, so the surviving scores are exactly those of
/// a run in which the flagged queries were never asked. On clean runs
/// nothing is flagged (at the default `z = 5`) and the output matches
/// [`decode_with_estimated_noise`].
///
/// # Errors
///
/// Returns [`EstimationError::TooFewQueries`] when fewer than two queries
/// survive the outlier filter.
pub fn decode_trimmed(run: &Run, z: f64) -> Result<crate::Estimate, EstimationError> {
    let exclude = flag_corrupted_queries(run, z);
    let rate = estimate_slot_rate_trimmed(run, &exclude)?;
    let scores = crate::GreedyDecoder::new().scores_trimmed_with_slot_rate(run, rate, &exclude);
    Ok(crate::Estimate::from_scores(scores, run.instance().k()))
}

/// Estimates both channel parameters `(p, q)` by the method of moments.
///
/// # Accuracy
///
/// The two parameters are *very* differently identified. The mean equation
/// pins `q` to a window of width `≈ Γ·(k/n)/Γ = k/n`, so `q̂` is sharp. `p`
/// enters only through `s = 1−p−q = (mean − qΓ)·n/(Γk)`, so any error in
/// `q` is amplified by `n/k` — with the paper's sparse regimes `p̂` carries
/// an `O(0.1–0.4)` error at realistic query counts. This asymmetry is
/// intrinsic to pooled measurements (each query contains only `Γk/n ≈ k/2`
/// one-slots to learn `p` from); use [`estimate_slot_rate`] for decoding,
/// which sidesteps the problem entirely.
///
/// # Errors
///
/// Returns [`EstimationError::TooFewQueries`] with fewer than two queries
/// and [`EstimationError::InconsistentMoments`] when no `(p, q)` with
/// `p + q < 1` reproduces the observed moments (heavy sampling noise on
/// very small runs).
pub fn estimate_channel(run: &Run) -> Result<ChannelEstimate, EstimationError> {
    let results = run.results();
    if results.len() < 2 {
        return Err(EstimationError::TooFewQueries);
    }
    let m = results.len() as f64;
    let mean = results.iter().sum::<f64>() / m;
    let var = results.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / (m - 1.0);

    let instance = run.instance();
    let gamma = run.graph().mean_query_slots();
    let rate = instance.k() as f64 / instance.n() as f64; // k/n
    let e_c1 = gamma * rate;
    let e_c0 = gamma - e_c1;
    let var_c1 = gamma * rate * (1.0 - rate);

    // Mean equation: mean = qΓ + (1−p−q)·e_c1 ⇒ for a given q,
    //   s := 1−p−q = (mean − qΓ)/e_c1,  p = 1 − q − s.
    //
    // Admissibility (s ∈ (0, 1], p ∈ [0, 1)) confines q to the narrow
    // window [max(0, (mean−e_c1)/(Γ−e_c1)), mean/Γ): the mean pins q up to
    // the small correction the variance equation resolves.
    let p_of_q = |q: f64| -> Option<(f64, f64)> {
        let s = (mean - q * gamma) / e_c1;
        let p = 1.0 - q - s;
        if !(0.0..1.0).contains(&p) || s <= 0.0 || s > 1.0 {
            None
        } else {
            Some((p, s))
        }
    };
    let residual = |q: f64| -> Option<f64> {
        let (p, s) = p_of_q(q)?;
        let model_var = e_c1 * (1.0 - p) * p + e_c0 * q * (1.0 - q) + s * s * var_c1;
        Some((model_var - var).abs())
    };

    let q_lo = ((mean - e_c1) / (gamma - e_c1)).max(0.0);
    let q_hi = (mean / gamma).min(1.0 - f64::EPSILON);
    // `!(q_lo < q_hi)` also rejects NaN windows, which `q_lo >= q_hi`
    // would let through.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(q_lo < q_hi) || !mean.is_finite() || mean < 0.0 {
        return Err(EstimationError::InconsistentMoments);
    }
    // The residual is not monotone across the window and the window is
    // tiny, so a dense grid plus local refinement is both simple and
    // robust.
    let best_on = |lo: f64, hi: f64, steps: usize| -> Option<(f64, f64)> {
        let mut best: Option<(f64, f64)> = None;
        for i in 0..=steps {
            let q = lo + (hi - lo) * i as f64 / steps as f64;
            if let Some(r) = residual(q) {
                if best.is_none_or(|(_, br)| r < br) {
                    best = Some((q, r));
                }
            }
        }
        best
    };
    let (coarse_q, _) = best_on(q_lo, q_hi, 400).ok_or(EstimationError::InconsistentMoments)?;
    let span = (q_hi - q_lo) / 400.0;
    let (q, _) = best_on(
        (coarse_q - span).max(q_lo),
        (coarse_q + span).min(q_hi),
        100,
    )
    .ok_or(EstimationError::InconsistentMoments)?;
    let (p, _) = p_of_q(q).ok_or(EstimationError::InconsistentMoments)?;
    Ok(ChannelEstimate { p, q })
}

/// Estimates the number of one-agents `k` from the first moment, given the
/// noise parameters (known per the model, or zero for the noiseless and
/// Gaussian models).
///
/// The model fixes `E[σ̂] = qΓ + (1−p−q)·Γ·k/n`, so
/// `k̂ = n·(mean(σ̂)/Γ − q)/(1−p−q)` rounded and clamped into `[0, n]`.
/// The standard error is `≈ n·√(Var[σ̂]/m)/(Γ(1−p−q))` — a handful of
/// queries suffice for the exact `k` in the sparse regime, which is what
/// makes the "k known" model assumption harmless in practice.
///
/// # Errors
///
/// Returns [`EstimationError::TooFewQueries`] for runs with fewer than two
/// queries.
///
/// # Examples
///
/// ```
/// use npd_core::{estimation, Instance, NoiseModel};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let run = Instance::builder(1_000)
///     .k(6)
///     .queries(300)
///     .noise(NoiseModel::z_channel(0.2))
///     .build()
///     .unwrap()
///     .sample(&mut rng);
/// assert_eq!(estimation::estimate_k(&run).unwrap(), 6);
/// ```
pub fn estimate_k(run: &Run) -> Result<usize, EstimationError> {
    if run.results().len() < 2 {
        return Err(EstimationError::TooFewQueries);
    }
    let instance = run.instance();
    let (p, q) = match *instance.noise() {
        crate::NoiseModel::Channel { p, q } => (p, q),
        crate::NoiseModel::Noiseless | crate::NoiseModel::Query { .. } => (0.0, 0.0),
    };
    let mean = run.results().iter().sum::<f64>() / run.results().len() as f64;
    let slot_rate = mean / run.graph().mean_query_slots();
    let k = instance.n() as f64 * (slot_rate - q) / (1.0 - p - q);
    Ok((k.round().max(0.0) as usize).min(instance.n()))
}

/// Estimates `k` by blending the moment estimate with a per-agent prior.
///
/// Structured population models carry per-agent marginals
/// `πᵢ = P(σᵢ = 1)` (see the `npd-workloads` crate); their mass
/// `k₀ = Σπᵢ` is an estimate of `k` *before any query is read*, with
/// variance `Σπᵢ(1−πᵢ)` under an independent-marginals approximation. The
/// moment estimator of [`estimate_k`] is unbiased with variance
/// `≈ (n/(Γ̄(1−p−q)))²·Var[σ̂]/m` (realized mean query size `Γ̄`, as
/// everywhere in this module). This function returns the precision-weighted
/// blend of the two — the posterior mean under Gaussian approximations —
/// rounded and clamped into `[0, n]`: with few queries the prior dominates,
/// with many the data does.
///
/// # Errors
///
/// Returns [`EstimationError::TooFewQueries`] for runs with fewer than two
/// queries.
///
/// # Panics
///
/// Panics if `prior.len() != n` or any `πᵢ ∉ [0, 1]`.
pub fn estimate_k_with_prior(run: &Run, prior: &[f64]) -> Result<usize, EstimationError> {
    let instance = run.instance();
    assert_eq!(
        prior.len(),
        instance.n(),
        "estimate_k_with_prior: prior length must equal n"
    );
    let results = run.results();
    if results.len() < 2 {
        return Err(EstimationError::TooFewQueries);
    }
    let (p, q) = match *instance.noise() {
        crate::NoiseModel::Channel { p, q } => (p, q),
        crate::NoiseModel::Noiseless | crate::NoiseModel::Query { .. } => (0.0, 0.0),
    };
    let m = results.len() as f64;
    let mean = results.iter().sum::<f64>() / m;
    let var = results.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / (m - 1.0);
    let gbar = run.graph().mean_query_slots();
    let n = instance.n() as f64;

    let k_mom = n * (mean / gbar - q) / (1.0 - p - q);
    let var_mom = (n / (gbar * (1.0 - p - q))).powi(2) * var / m;

    let mut k0 = 0.0;
    let mut var0 = 0.0;
    for (i, &pi) in prior.iter().enumerate() {
        assert!(
            (0.0..=1.0).contains(&pi),
            "estimate_k_with_prior: prior[{i}]={pi} not a probability"
        );
        k0 += pi;
        var0 += pi * (1.0 - pi);
    }
    // Degenerate corners: a zero-variance moment estimate (constant
    // results) pins k̂ to the data; a degenerate all-{0,1} prior pins it to
    // the prior mass.
    let blended = if !(var_mom.is_finite() && var_mom > 0.0) {
        k_mom
    } else if var0 <= 0.0 {
        k0
    } else {
        (k_mom / var_mom + k0 / var0) / (1.0 / var_mom + 1.0 / var0)
    };
    Ok((blended.round().max(0.0) as usize).min(instance.n()))
}

/// Prior-aware deployment decoding: posterior top-`k̂` with both the rank
/// cut and the scores informed by the population prior.
///
/// Combines [`estimate_k_with_prior`] (posterior `k̂`) with
/// [`crate::GreedyDecoder::posterior_scores`] (per-agent log-prior-odds in
/// the ranking); the structured-workload counterpart of
/// [`decode_with_estimated_k`].
///
/// # Errors
///
/// Returns [`EstimationError::TooFewQueries`] for runs with fewer than two
/// queries.
///
/// # Panics
///
/// Panics if `prior.len() != n` or any `πᵢ ∉ [0, 1]`.
pub fn decode_with_prior(run: &Run, prior: &[f64]) -> Result<crate::Estimate, EstimationError> {
    let k_hat = estimate_k_with_prior(run, prior)?;
    let scores = crate::GreedyDecoder::new().posterior_scores(run, prior);
    Ok(crate::Estimate::from_scores(scores, k_hat))
}

/// Runs the greedy decoder with `k` *estimated from the data* instead of
/// taken from the model: the estimated `k̂` drives both the noise-aware
/// centering and the rank cut.
///
/// Together with [`decode_with_estimated_noise`] this removes every
/// non-observable input of Algorithm 1; the remaining gap to the oracle
/// decoder is the event `k̂ ≠ k`, whose probability vanishes with the
/// query count.
///
/// # Errors
///
/// Returns [`EstimationError::TooFewQueries`] for runs with fewer than two
/// queries.
pub fn decode_with_estimated_k(run: &Run) -> Result<crate::Estimate, EstimationError> {
    let k_hat = estimate_k(run)?;
    let instance = run.instance();
    let (p, q) = match *instance.noise() {
        crate::NoiseModel::Channel { p, q } => (p, q),
        crate::NoiseModel::Noiseless | crate::NoiseModel::Query { .. } => (0.0, 0.0),
    };
    // The analysis' slot rate with the estimated k: q + k̂(1−p−q)/(n−1).
    let rate = q + k_hat as f64 * (1.0 - p - q) / (instance.n() as f64 - 1.0);
    let scores = crate::GreedyDecoder::new().scores_with_slot_rate(run, rate);
    Ok(crate::Estimate::from_scores(scores, k_hat))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Instance;
    use crate::noise::NoiseModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_with(noise: NoiseModel, m: usize, seed: u64) -> Run {
        Instance::builder(2_000)
            .k(10)
            .queries(m)
            .noise(noise)
            .build()
            .unwrap()
            .sample(&mut StdRng::seed_from_u64(seed))
    }

    /// Smaller population for the decoding round-trip (keeps debug-mode
    /// test time reasonable at the same relative query budget).
    fn small_run_with(noise: NoiseModel, m: usize, seed: u64) -> Run {
        Instance::builder(1_000)
            .k(8)
            .queries(m)
            .noise(noise)
            .build()
            .unwrap()
            .sample(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn z_channel_estimate_is_accurate() {
        for &p in &[0.1, 0.3, 0.5] {
            let run = run_with(NoiseModel::z_channel(p), 600, 42);
            let p_hat = estimate_z_channel(&run).unwrap();
            assert!((p_hat - p).abs() < 0.06, "p={p}: estimated {p_hat}");
        }
    }

    #[test]
    fn z_channel_estimate_of_noiseless_is_zero() {
        let run = run_with(NoiseModel::Noiseless, 300, 7);
        let p_hat = estimate_z_channel(&run).unwrap();
        assert!(p_hat.abs() < 0.05, "estimated {p_hat}");
    }

    #[test]
    fn general_channel_estimate_recovers_q_sharply() {
        // q is sharply identified; p only loosely (see the accuracy note on
        // `estimate_channel`).
        let (p, q) = (0.15, 0.05);
        let run = run_with(NoiseModel::channel(p, q), 3_000, 11);
        let est = estimate_channel(&run).unwrap();
        assert!((est.q - q).abs() < 0.01, "q: {est:?}");
        assert!((est.p - p).abs() < 0.75, "p wildly off: {est:?}");
        // The combination the decoder consumes is recovered accurately.
        let true_rate = q + 10.0 * (1.0 - p - q) / 2_000.0;
        let est_rate = est.q + 10.0 * (1.0 - est.p - est.q) / 2_000.0;
        assert!(
            (est_rate - true_rate).abs() < 0.005,
            "slot rate: {est_rate} vs {true_rate}"
        );
    }

    #[test]
    fn general_channel_estimate_detects_pure_z_channel() {
        let run = run_with(NoiseModel::z_channel(0.2), 3_000, 13);
        let est = estimate_channel(&run).unwrap();
        assert!(est.q < 0.01, "q should be near zero: {est:?}");
    }

    #[test]
    fn slot_rate_estimate_matches_model_rate() {
        let (p, q) = (0.2, 0.03);
        let run = run_with(NoiseModel::channel(p, q), 2_000, 17);
        let rate = estimate_slot_rate(&run).unwrap();
        let model = q + 10.0 * (1.0 - p - q) / 2_000.0;
        assert!(
            (rate - model).abs() < 0.003,
            "estimated {rate} vs model {model}"
        );
    }

    #[test]
    fn decoding_with_estimated_noise_matches_known_parameters() {
        // The deployment pipeline: no prior p, q knowledge. On instances
        // with a comfortable margin it reproduces the known-parameter
        // decoder's reconstruction exactly.
        use crate::greedy::{Decoder, GreedyDecoder};
        // m ≈ 2.3× the Theorem-1 bound for this configuration, so both
        // decoders sit well inside the recovery region and the tiny rate
        // perturbation cannot flip a rank.
        for seed in 0..4 {
            let run = small_run_with(NoiseModel::channel(0.1, 0.05), 4_500, 300 + seed);
            let known = GreedyDecoder::new().decode(&run);
            let estimated = decode_with_estimated_noise(&run).unwrap();
            assert_eq!(
                estimated.ones(),
                known.ones(),
                "seed {seed}: estimated-rate decoding diverged"
            );
        }
    }

    /// Rebuilds `run` with the given (e.g. tampered) result vector.
    fn with_results(run: &Run, results: Vec<f64>) -> Run {
        run.instance()
            .assemble(run.ground_truth().clone(), run.graph().clone(), results)
            .unwrap()
    }

    #[test]
    fn flagger_catches_garbled_results_and_spares_clean_ones() {
        let run = run_with(NoiseModel::Noiseless, 300, 23);
        let mut tampered = run.results().to_vec();
        let garbled = [4usize, 57, 130, 288];
        for &j in &garbled {
            tampered[j] = tampered[j] * 12.0 + 60.0;
        }
        tampered[199] = f64::NAN; // non-finite is corrupt by definition
        let bad = with_results(&run, tampered);
        let flags = flag_corrupted_queries(&bad, 5.0);
        for &j in garbled.iter().chain([&199]) {
            assert!(flags[j], "garbled query {j} not flagged");
        }
        // Binomial spread on clean queries sits inside 5 robust sds, up to
        // the odd tail straggler the MAD quantization lets through.
        let flagged = flags.iter().filter(|&&f| f).count();
        assert!(
            flagged <= garbled.len() + 1 + 3,
            "too many clean queries flagged: {flagged}"
        );
    }

    #[test]
    fn clean_runs_are_not_flagged_and_decode_unchanged() {
        let run = run_with(NoiseModel::channel(0.1, 0.05), 600, 29);
        let flags = flag_corrupted_queries(&run, 5.0);
        assert!(flags.iter().all(|&f| !f), "clean run produced flags");
        let trimmed = decode_trimmed(&run, 5.0).unwrap();
        let plain = decode_with_estimated_noise(&run).unwrap();
        assert_eq!(trimmed.ones(), plain.ones());
    }

    #[test]
    fn decode_trimmed_survives_garbled_measurements() {
        use crate::greedy::{Decoder, GreedyDecoder};
        let run = Instance::builder(300)
            .k(4)
            .queries(600)
            .build()
            .unwrap()
            .sample(&mut StdRng::seed_from_u64(21));
        // Garble 10% of the measurements with a large multiplicative skew —
        // the profile of a corrupting agent under the chaos fault injector.
        let mut tampered = run.results().to_vec();
        for (j, v) in tampered.iter_mut().enumerate() {
            if j % 10 == 0 {
                *v = *v * 30.0 + 100.0;
            }
        }
        let bad = with_results(&run, tampered);
        // The plain decoder is poisoned; the trimmed pipeline recovers.
        let poisoned = GreedyDecoder::new().decode(&bad);
        assert_ne!(poisoned.ones(), run.ground_truth().ones());
        let trimmed = decode_trimmed(&bad, 5.0).unwrap();
        assert_eq!(trimmed.ones(), run.ground_truth().ones());
    }

    #[test]
    fn trimmed_rate_needs_two_survivors() {
        let run = run_with(NoiseModel::Noiseless, 4, 31);
        let mut exclude = vec![true; 4];
        exclude[0] = false;
        assert_eq!(
            estimate_slot_rate_trimmed(&run, &exclude).unwrap_err(),
            EstimationError::TooFewQueries
        );
        exclude[1] = false;
        assert!(estimate_slot_rate_trimmed(&run, &exclude).is_ok());
        // Tiny runs have no spread to flag against.
        let tiny = run_with(NoiseModel::Noiseless, 2, 33);
        assert_eq!(flag_corrupted_queries(&tiny, 5.0), vec![false, false]);
    }

    #[test]
    fn too_few_queries_is_an_error() {
        let run = run_with(NoiseModel::z_channel(0.1), 1, 1);
        assert_eq!(
            estimate_z_channel(&run).unwrap_err(),
            EstimationError::TooFewQueries
        );
        assert_eq!(
            estimate_channel(&run).unwrap_err(),
            EstimationError::TooFewQueries
        );
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(EstimationError::TooFewQueries.to_string().contains("two"));
        assert!(EstimationError::InconsistentMoments
            .to_string()
            .contains("inconsistent"));
    }

    #[test]
    fn estimates_improve_with_more_queries() {
        // Track the sharply-identified quantities: q and the slot rate.
        let (p, q) = (0.2, 0.03);
        let errs: Vec<f64> = [200usize, 4_000]
            .iter()
            .map(|&m| {
                // Average the error over a few seeds to damp luck.
                let mut total = 0.0;
                for seed in 0..3 {
                    let run = run_with(NoiseModel::channel(p, q), m, 100 + seed);
                    let est = estimate_channel(&run).unwrap();
                    let rate = estimate_slot_rate(&run).unwrap();
                    let model_rate = q + 10.0 * (1.0 - p - q) / 2_000.0;
                    total += (est.q - q).abs() + (rate - model_rate).abs();
                }
                total / 3.0
            })
            .collect();
        assert!(errs[1] <= errs[0] * 1.1, "error did not shrink: {errs:?}");
    }

    #[test]
    fn k_estimation_is_exact_across_models() {
        for (noise, seed) in [
            (NoiseModel::Noiseless, 3u64),
            (NoiseModel::z_channel(0.3), 4),
            (NoiseModel::channel(0.1, 0.05), 5),
            (NoiseModel::gaussian(2.0), 6),
        ] {
            let run = run_with(noise, 400, seed);
            assert_eq!(estimate_k(&run).unwrap(), 10, "noise {noise}");
        }
    }

    #[test]
    fn k_estimation_needs_two_queries() {
        let run = run_with(NoiseModel::Noiseless, 1, 5);
        assert_eq!(
            estimate_k(&run).unwrap_err(),
            EstimationError::TooFewQueries
        );
    }

    #[test]
    fn decode_with_estimated_k_matches_oracle_decoder() {
        use crate::greedy::{Decoder, GreedyDecoder};
        for seed in 0..3 {
            let run = run_with(NoiseModel::z_channel(0.1), 700, 40 + seed);
            let blind = decode_with_estimated_k(&run).unwrap();
            let oracle = GreedyDecoder::new().decode(&run);
            assert_eq!(blind.ones(), oracle.ones(), "seed {seed}");
            assert_eq!(blind.ones(), run.ground_truth().ones());
        }
    }

    #[test]
    fn estimated_k_is_clamped_to_population() {
        // A tiny, heavily noisy run can overshoot; the estimate must stay
        // within [0, n] rather than panic downstream.
        let run = Instance::builder(4)
            .k(2)
            .queries(3)
            .noise(NoiseModel::gaussian(50.0))
            .build()
            .unwrap()
            .sample(&mut StdRng::seed_from_u64(6));
        let k_hat = estimate_k(&run).unwrap();
        assert!(k_hat <= 4);
    }
}
