//! Two-step decoding: the local error-correction extension.
//!
//! The paper closes with an open question: “whether a two-step algorithm
//! that locally tries to correct errors can be analyzed rigorously and
//! performs even better”. This module implements the natural candidate, a
//! single residual-refinement pass on top of the greedy estimate:
//!
//! 1. Run the greedy decoder to obtain `σ̂⁰`.
//! 2. For each query `j`, compute the residual
//!    `rⱼ = σ̂ⱼ_scaled − (A·σ̂⁰)ⱼ`, where `σ̂ⱼ_scaled` unbiases the channel
//!    noise (`(σ̂ⱼ − qΓ)/(1−p−q)`) so residuals are centered.
//! 3. Re-score each agent by its *leave-one-out* residual sum
//!    `Ψ'ᵢ = Σ_{j∈∂*i} (rⱼ + Aⱼᵢ·σ̂⁰ᵢ)` — the evidence for agent `i` once
//!    the estimated contribution of everyone else is subtracted — and take
//!    the top `k`.
//!
//! When the first-stage estimate is mostly correct, the residual isolates
//! each agent's own contribution far more sharply than the raw neighborhood
//! sum (whose variance is dominated by the `≈ k/2` other one-agents per
//! query), so borderline ranking mistakes get corrected. This mirrors the
//! mechanism the paper conjectures lets AMP outperform one-shot greedy.

use crate::greedy::{Decoder, Estimate, GreedyDecoder};
use crate::model::Run;
use crate::noise::NoiseModel;

/// Greedy decoding followed by one residual-refinement pass.
///
/// # Examples
///
/// ```
/// use npd_core::{Decoder, Instance, NoiseModel, TwoStepDecoder};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let run = Instance::builder(300)
///     .k(4)
///     .queries(300)
///     .noise(NoiseModel::z_channel(0.1))
///     .build()
///     .unwrap()
///     .sample(&mut rng);
/// let est = TwoStepDecoder::new().decode(&run);
/// assert_eq!(est.k(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwoStepDecoder {
    _private: (),
}

impl TwoStepDecoder {
    /// Creates the decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The refined scores after one residual pass (exposed for diagnostics,
    /// like [`GreedyDecoder::scores`]).
    pub fn refined_scores(&self, run: &Run) -> Vec<f64> {
        let n = run.instance().n();
        let first = GreedyDecoder::new().decode(run);

        // Unbias channel observations so residuals center at zero:
        // E[σ̂ⱼ | A] = (1−p−q)·(Aσ)ⱼ + q·|∂aⱼ|. The shift uses the query's
        // own slot count — equal to Γ on query-regular designs, exact on
        // ragged (degree-balanced) designs.
        let (scale, flip_q, denom) = match *run.instance().noise() {
            NoiseModel::Channel { p, q } => (1.0 / (1.0 - p - q), q, 1.0 - p - q),
            _ => (1.0, 0.0, 1.0),
        };

        // Residual per query under the first-stage estimate.
        let mut residual = vec![0.0f64; run.instance().m()];
        for (j, q) in run.graph().queries().iter().enumerate() {
            let mut estimated = 0.0f64;
            for (agent, count) in q.iter() {
                if first.bits()[agent as usize] {
                    estimated += count as f64;
                }
            }
            let shift = flip_q * q.total_slots() as f64 / denom;
            residual[j] = run.results()[j] * scale - shift - estimated;
        }

        // Leave-one-out refinement: per distinct query, the residual plus
        // the agent's own estimated contribution (its multiplicity if the
        // first stage called it a one).
        let mut refined = vec![0.0f64; n];
        for (j, q) in run.graph().queries().iter().enumerate() {
            for (agent, count) in q.iter() {
                let own = if first.bits()[agent as usize] {
                    count as f64
                } else {
                    0.0
                };
                refined[agent as usize] += residual[j] + own;
            }
        }
        refined
    }
}

impl Decoder for TwoStepDecoder {
    fn decode(&self, run: &Run) -> Estimate {
        Estimate::from_scores(self.refined_scores(run), run.instance().k())
    }

    fn name(&self) -> &'static str {
        "two-step"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::{exact_recovery, overlap};
    use crate::model::Instance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_with(n: usize, k: usize, m: usize, noise: NoiseModel, seed: u64) -> Run {
        Instance::builder(n)
            .k(k)
            .queries(m)
            .noise(noise)
            .build()
            .unwrap()
            .sample(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn matches_greedy_in_easy_regime() {
        // Well above threshold both decoders are exact.
        let run = run_with(300, 4, 500, NoiseModel::z_channel(0.1), 1);
        let two = TwoStepDecoder::new().decode(&run);
        assert!(exact_recovery(&two, run.ground_truth()));
    }

    #[test]
    fn never_changes_k() {
        let run = run_with(100, 7, 50, NoiseModel::gaussian(1.0), 2);
        assert_eq!(TwoStepDecoder::new().decode(&run).k(), 7);
    }

    #[test]
    fn improves_mean_overlap_near_threshold() {
        // Near the phase transition the refinement should help on average.
        // Averaged over seeds with a small tolerance to keep the test
        // robust to the exact noise realization.
        let mut greedy_sum = 0.0;
        let mut two_sum = 0.0;
        let trials = 20;
        for seed in 0..trials {
            let run = run_with(400, 5, 150, NoiseModel::z_channel(0.2), 100 + seed);
            greedy_sum += overlap(&GreedyDecoder::new().decode(&run), run.ground_truth());
            two_sum += overlap(&TwoStepDecoder::new().decode(&run), run.ground_truth());
        }
        let greedy_mean = greedy_sum / trials as f64;
        let two_mean = two_sum / trials as f64;
        assert!(
            two_mean >= greedy_mean - 0.02,
            "two-step {two_mean:.3} clearly below greedy {greedy_mean:.3}"
        );
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(TwoStepDecoder::new().name(), "two-step");
    }
}
