//! Problem instances: regimes, ground truth, configuration and sampling.

use crate::design::{DesignSpec, PoolingDesign, PoolingGraph, Sampling};
use crate::noise::NoiseModel;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the number of one-agents `k` scales with the population size `n`.
///
/// The paper distinguishes the *sublinear* regime `k = n^θ` (early epidemic
/// spread, rare traits) from the *linear* regime `k = ζ·n` (computational
/// biology, traffic monitoring, confidential data transfer).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Regime {
    /// `k = n^θ` with `θ ∈ (0, 1)`.
    Sublinear {
        /// Exponent θ.
        theta: f64,
    },
    /// `k = ζ·n` with `ζ ∈ (0, 1)`.
    Linear {
        /// Density ζ.
        zeta: f64,
    },
    /// `k` given explicitly (used when reproducing a fixed scenario).
    Explicit {
        /// The exact number of one-agents.
        k: usize,
    },
}

impl Regime {
    /// Sublinear regime `k = n^θ`.
    ///
    /// # Panics
    ///
    /// Panics if `θ ∉ (0, 1)`.
    pub fn sublinear(theta: f64) -> Self {
        assert!(
            theta > 0.0 && theta < 1.0,
            "Regime::sublinear: theta={theta} must be in (0,1)"
        );
        Regime::Sublinear { theta }
    }

    /// Linear regime `k = ζ·n`.
    ///
    /// # Panics
    ///
    /// Panics if `ζ ∉ (0, 1)`.
    pub fn linear(zeta: f64) -> Self {
        assert!(
            zeta > 0.0 && zeta < 1.0,
            "Regime::linear: zeta={zeta} must be in (0,1)"
        );
        Regime::Linear { zeta }
    }

    /// Explicit `k`.
    pub fn explicit(k: usize) -> Self {
        Regime::Explicit { k }
    }

    /// The number of one-agents for a population of `n` (rounded to the
    /// nearest integer, clamped into `[1, n]`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn k_for(&self, n: usize) -> usize {
        assert!(n > 0, "Regime::k_for: n must be positive");
        let k = match *self {
            Regime::Sublinear { theta } => (n as f64).powf(theta).round() as usize,
            Regime::Linear { zeta } => (zeta * n as f64).round() as usize,
            Regime::Explicit { k } => k,
        };
        k.clamp(1, n)
    }
}

impl fmt::Display for Regime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regime::Sublinear { theta } => write!(f, "sublinear(θ={theta})"),
            Regime::Linear { zeta } => write!(f, "linear(ζ={zeta})"),
            Regime::Explicit { k } => write!(f, "explicit(k={k})"),
        }
    }
}

/// The hidden assignment `σ ∈ {0,1}ⁿ` with Hamming weight `k`.
///
/// Sampled uniformly among all weight-`k` binary vectors, as the model
/// section of the paper prescribes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruth {
    bits: Vec<bool>,
    ones: Vec<u32>,
}

impl GroundTruth {
    /// Samples a uniform weight-`k` assignment via a partial Fisher–Yates
    /// shuffle.
    ///
    /// # Panics
    ///
    /// Panics if `k > n` or `n` exceeds `u32::MAX`.
    pub fn sample<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Self {
        assert!(k <= n, "GroundTruth::sample: k={k} exceeds n={n}");
        assert!(
            n <= u32::MAX as usize,
            "GroundTruth::sample: n={n} exceeds u32 range"
        );
        let mut idx: Vec<u32> = (0..n as u32).collect();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            idx.swap(i, j);
        }
        let mut ones: Vec<u32> = idx[..k].to_vec();
        ones.sort_unstable();
        let mut bits = vec![false; n];
        for &o in &ones {
            bits[o as usize] = true;
        }
        Self { bits, ones }
    }

    /// Builds a ground truth from an explicit bit vector.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        let ones = bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i as u32)
            .collect();
        Self { bits, ones }
    }

    /// Builds a ground truth over `n` agents from the indices of its
    /// one-agents (in any order, duplicates ignored).
    ///
    /// Structured population models (the `npd-workloads` crate) assemble
    /// their assignments as one-agent lists; this is the direct
    /// constructor for that shape.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= n`.
    pub fn from_ones(n: usize, ones: impl IntoIterator<Item = u32>) -> Self {
        let mut bits = vec![false; n];
        for o in ones {
            assert!(
                (o as usize) < n,
                "GroundTruth::from_ones: agent {o} out of range for n={n}"
            );
            bits[o as usize] = true;
        }
        Self::from_bits(bits)
    }

    /// Population size `n`.
    pub fn n(&self) -> usize {
        self.bits.len()
    }

    /// Number of one-agents `k`.
    pub fn k(&self) -> usize {
        self.ones.len()
    }

    /// Whether agent `i` holds bit one.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn is_one(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// The sorted indices of the one-agents.
    pub fn ones(&self) -> &[u32] {
        &self.ones
    }

    /// The raw bit vector.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }
}

/// A fully specified experiment configuration: population size, regime,
/// query count, query size and noise model.
///
/// Construct through [`Instance::builder`]; sampling an instance yields a
/// [`Run`] holding the concrete pooling graph, ground truth and query
/// results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    n: usize,
    k: usize,
    m: usize,
    gamma: usize,
    noise: NoiseModel,
    #[serde(default)]
    design: DesignSpec,
}

impl Instance {
    /// Starts building an instance over `n` agents.
    pub fn builder(n: usize) -> InstanceBuilder {
        InstanceBuilder {
            n,
            regime: None,
            m: None,
            gamma: None,
            noise: NoiseModel::Noiseless,
            design: DesignSpec::Iid,
        }
    }

    /// Population size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of one-agents `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of queries `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Slots per query `Γ`.
    pub fn gamma(&self) -> usize {
        self.gamma
    }

    /// The noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// The pooling design sampled by [`Instance::sample`].
    pub fn design(&self) -> DesignSpec {
        self.design
    }

    /// Samples ground truth, pooling graph and noisy query results.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Run {
        let truth = GroundTruth::sample(self.n, self.k, rng);
        // The legacy schemes go through `sample_with` so their RNG streams
        // stay bit-identical to the pre-trait sampler; the structured
        // designs dispatch through the `PoolingDesign` trait object.
        let graph = match self.design.legacy_sampling() {
            Some(sampling) => PoolingGraph::sample_with(self.n, self.m, self.gamma, sampling, rng),
            None => {
                let mut r = &mut *rng;
                self.design.sample(self.n, self.m, self.gamma, &mut r)
            }
        };
        let results = graph.measure(&truth, &self.noise, rng);
        Run {
            instance: self.clone(),
            truth,
            graph,
            results,
        }
    }

    /// Assembles a run from explicit parts (for tests and custom designs).
    ///
    /// # Errors
    ///
    /// Returns [`InstanceError::Inconsistent`] when the parts disagree on
    /// `n` or `m`.
    pub fn assemble(
        &self,
        truth: GroundTruth,
        graph: PoolingGraph,
        results: Vec<f64>,
    ) -> Result<Run, InstanceError> {
        if truth.n() != self.n
            || graph.n() != self.n
            || graph.query_count() != self.m
            || results.len() != self.m
            || truth.k() != self.k
        {
            return Err(InstanceError::Inconsistent);
        }
        Ok(Run {
            instance: self.clone(),
            truth,
            graph,
            results,
        })
    }
}

/// Builder for [`Instance`] (see [`Instance::builder`]).
#[derive(Debug, Clone)]
pub struct InstanceBuilder {
    n: usize,
    regime: Option<Regime>,
    m: Option<usize>,
    gamma: Option<usize>,
    noise: NoiseModel,
    design: DesignSpec,
}

impl InstanceBuilder {
    /// Sets the regime that determines `k`.
    pub fn regime(mut self, regime: Regime) -> Self {
        self.regime = Some(regime);
        self
    }

    /// Sets `k` directly (shorthand for an explicit regime).
    pub fn k(mut self, k: usize) -> Self {
        self.regime = Some(Regime::explicit(k));
        self
    }

    /// Sets the number of queries `m`.
    pub fn queries(mut self, m: usize) -> Self {
        self.m = Some(m);
        self
    }

    /// Sets the query size `Γ` (defaults to `n/2`, the paper's choice).
    pub fn query_size(mut self, gamma: usize) -> Self {
        self.gamma = Some(gamma);
        self
    }

    /// Sets the noise model (defaults to noiseless).
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the sampling scheme (defaults to with-replacement, the paper's
    /// design). Shorthand for [`design`](Self::design) with the
    /// corresponding legacy [`DesignSpec`].
    pub fn sampling(self, sampling: Sampling) -> Self {
        self.design(DesignSpec::from(sampling))
    }

    /// Sets the pooling design (defaults to [`DesignSpec::Iid`], the
    /// paper's scheme).
    pub fn design(mut self, design: DesignSpec) -> Self {
        self.design = design;
        self
    }

    /// Validates and builds the instance.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] describing the first violated
    /// constraint: `n ≥ 2`, a regime must be given, `1 ≤ k ≤ n`, `m` must be
    /// given, and `Γ ≥ 1`.
    pub fn build(self) -> Result<Instance, InstanceError> {
        if self.n < 2 {
            return Err(InstanceError::PopulationTooSmall { n: self.n });
        }
        let regime = self.regime.ok_or(InstanceError::MissingRegime)?;
        let k = regime.k_for(self.n);
        if k == 0 || k > self.n {
            return Err(InstanceError::InvalidK { k, n: self.n });
        }
        let m = self.m.ok_or(InstanceError::MissingQueries)?;
        let gamma = self.gamma.unwrap_or(self.n / 2);
        if gamma == 0 {
            return Err(InstanceError::EmptyQuery);
        }
        if self.design == DesignSpec::GammaSubset && gamma > self.n {
            return Err(InstanceError::QueryLargerThanPopulation { gamma, n: self.n });
        }
        Ok(Instance {
            n: self.n,
            k,
            m,
            gamma,
            noise: self.noise,
            design: self.design,
        })
    }
}

/// Configuration errors raised by [`InstanceBuilder::build`] and
/// [`Instance::assemble`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceError {
    /// `n < 2`.
    PopulationTooSmall {
        /// The offending population size.
        n: usize,
    },
    /// Neither a regime nor an explicit `k` was provided.
    MissingRegime,
    /// The regime produced `k = 0` or `k > n`.
    InvalidK {
        /// The derived number of one-agents.
        k: usize,
        /// The population size.
        n: usize,
    },
    /// The number of queries was not provided.
    MissingQueries,
    /// `Γ = 0`.
    EmptyQuery,
    /// Without-replacement sampling with `Γ > n`.
    QueryLargerThanPopulation {
        /// Requested query size.
        gamma: usize,
        /// Population size.
        n: usize,
    },
    /// Parts passed to [`Instance::assemble`] disagree on dimensions.
    Inconsistent,
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::PopulationTooSmall { n } => {
                write!(f, "population size n={n} must be at least 2")
            }
            InstanceError::MissingRegime => write!(f, "a regime (or explicit k) is required"),
            InstanceError::InvalidK { k, n } => {
                write!(f, "derived k={k} is outside the valid range [1, {n}]")
            }
            InstanceError::MissingQueries => write!(f, "the number of queries is required"),
            InstanceError::EmptyQuery => write!(f, "query size Γ must be at least 1"),
            InstanceError::QueryLargerThanPopulation { gamma, n } => write!(
                f,
                "query size Γ={gamma} exceeds the population n={n} for without-replacement sampling"
            ),
            InstanceError::Inconsistent => {
                write!(f, "run parts disagree with the instance dimensions")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

/// One sampled experiment: the instance plus concrete ground truth, pooling
/// graph and query results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Run {
    instance: Instance,
    truth: GroundTruth,
    graph: PoolingGraph,
    results: Vec<f64>,
}

impl Run {
    /// The configuration this run was sampled from.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The hidden assignment.
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.truth
    }

    /// The bipartite pooling multigraph.
    pub fn graph(&self) -> &PoolingGraph {
        &self.graph
    }

    /// The (noisy) query results `σ̂ ∈ ℝᵐ`.
    pub fn results(&self) -> &[f64] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn regime_k_values() {
        assert_eq!(Regime::sublinear(0.25).k_for(10_000), 10);
        assert_eq!(Regime::sublinear(0.5).k_for(100), 10);
        assert_eq!(Regime::linear(0.1).k_for(1000), 100);
        assert_eq!(Regime::explicit(7).k_for(1000), 7);
    }

    #[test]
    fn regime_k_clamps() {
        // Tiny n: n^θ rounds to 1; explicit k larger than n clamps to n.
        assert_eq!(Regime::sublinear(0.1).k_for(2), 1);
        assert_eq!(Regime::explicit(500).k_for(10), 10);
        assert_eq!(Regime::explicit(0).k_for(10), 1);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn regime_rejects_bad_theta() {
        Regime::sublinear(1.0);
    }

    #[test]
    #[should_panic(expected = "zeta")]
    fn regime_rejects_bad_zeta() {
        Regime::linear(0.0);
    }

    #[test]
    fn regime_display() {
        assert_eq!(Regime::sublinear(0.25).to_string(), "sublinear(θ=0.25)");
        assert_eq!(Regime::explicit(3).to_string(), "explicit(k=3)");
    }

    #[test]
    fn ground_truth_weight_and_consistency() {
        let mut rng = StdRng::seed_from_u64(1);
        let gt = GroundTruth::sample(100, 13, &mut rng);
        assert_eq!(gt.n(), 100);
        assert_eq!(gt.k(), 13);
        assert_eq!(gt.ones().len(), 13);
        assert!(gt.ones().windows(2).all(|w| w[0] < w[1]));
        for (i, &bit) in gt.bits().iter().enumerate() {
            assert_eq!(bit, gt.ones().contains(&(i as u32)));
        }
    }

    #[test]
    fn ground_truth_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        let all = GroundTruth::sample(5, 5, &mut rng);
        assert_eq!(all.ones(), &[0, 1, 2, 3, 4]);
        let none = GroundTruth::sample(5, 0, &mut rng);
        assert!(none.ones().is_empty());
    }

    #[test]
    fn ground_truth_is_roughly_uniform() {
        // Every agent should be a one-agent in about k/n of samples.
        let mut rng = StdRng::seed_from_u64(3);
        let (n, k, trials) = (20, 5, 20_000);
        let mut hits = vec![0u32; n];
        for _ in 0..trials {
            let gt = GroundTruth::sample(n, k, &mut rng);
            for &o in gt.ones() {
                hits[o as usize] += 1;
            }
        }
        let expected = trials as f64 * k as f64 / n as f64;
        for (i, &h) in hits.iter().enumerate() {
            assert!(
                (h as f64 - expected).abs() < expected * 0.1,
                "agent {i}: {h} vs {expected}"
            );
        }
    }

    #[test]
    fn ground_truth_from_bits() {
        let gt = GroundTruth::from_bits(vec![true, false, true, false]);
        assert_eq!(gt.ones(), &[0, 2]);
        assert_eq!(gt.k(), 2);
        assert!(gt.is_one(0) && !gt.is_one(1));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn ground_truth_rejects_k_above_n() {
        let mut rng = StdRng::seed_from_u64(0);
        GroundTruth::sample(3, 4, &mut rng);
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let inst = Instance::builder(100)
            .k(5)
            .queries(50)
            .build()
            .expect("valid");
        assert_eq!(inst.n(), 100);
        assert_eq!(inst.k(), 5);
        assert_eq!(inst.m(), 50);
        assert_eq!(inst.gamma(), 50); // default n/2
        assert_eq!(*inst.noise(), NoiseModel::Noiseless);

        let inst2 = Instance::builder(100)
            .regime(Regime::sublinear(0.5))
            .queries(10)
            .query_size(25)
            .noise(NoiseModel::z_channel(0.2))
            .build()
            .expect("valid");
        assert_eq!(inst2.k(), 10);
        assert_eq!(inst2.gamma(), 25);
    }

    #[test]
    fn builder_error_paths() {
        assert_eq!(
            Instance::builder(1).k(1).queries(1).build().unwrap_err(),
            InstanceError::PopulationTooSmall { n: 1 }
        );
        assert_eq!(
            Instance::builder(10).queries(5).build().unwrap_err(),
            InstanceError::MissingRegime
        );
        assert_eq!(
            Instance::builder(10).k(3).build().unwrap_err(),
            InstanceError::MissingQueries
        );
        assert_eq!(
            Instance::builder(10)
                .k(3)
                .queries(5)
                .query_size(0)
                .build()
                .unwrap_err(),
            InstanceError::EmptyQuery
        );
    }

    #[test]
    fn instance_error_messages() {
        assert!(InstanceError::MissingRegime.to_string().contains("regime"));
        assert!(InstanceError::EmptyQuery.to_string().contains("Γ"));
        assert!(InstanceError::QueryLargerThanPopulation { gamma: 9, n: 5 }
            .to_string()
            .contains("without-replacement"));
    }

    #[test]
    fn builder_accepts_without_replacement_sampling() {
        let inst = Instance::builder(50)
            .k(2)
            .queries(10)
            .sampling(Sampling::WithoutReplacement)
            .build()
            .unwrap();
        assert_eq!(inst.design(), DesignSpec::GammaSubset);
        let mut rng = StdRng::seed_from_u64(1);
        let run = inst.sample(&mut rng);
        for q in run.graph().queries() {
            assert_eq!(q.distinct_len(), 25);
        }
    }

    #[test]
    fn builder_rejects_oversized_without_replacement_query() {
        let err = Instance::builder(10)
            .k(2)
            .queries(5)
            .query_size(11)
            .sampling(Sampling::WithoutReplacement)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            InstanceError::QueryLargerThanPopulation { gamma: 11, n: 10 }
        );
    }

    #[test]
    fn sample_produces_consistent_run() {
        let mut rng = StdRng::seed_from_u64(4);
        let inst = Instance::builder(50).k(3).queries(20).build().unwrap();
        let run = inst.sample(&mut rng);
        assert_eq!(run.ground_truth().n(), 50);
        assert_eq!(run.ground_truth().k(), 3);
        assert_eq!(run.graph().query_count(), 20);
        assert_eq!(run.results().len(), 20);
        // Noiseless results are exact slot counts on one-agents.
        for (j, &r) in run.results().iter().enumerate() {
            let c1 = run.graph().query(j).one_slots(run.ground_truth());
            assert_eq!(r, c1 as f64);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let inst = Instance::builder(60).k(4).queries(15).build().unwrap();
        let run1 = inst.sample(&mut StdRng::seed_from_u64(9));
        let run2 = inst.sample(&mut StdRng::seed_from_u64(9));
        assert_eq!(run1, run2);
        let run3 = inst.sample(&mut StdRng::seed_from_u64(10));
        assert_ne!(run1, run3);
    }

    #[test]
    fn assemble_validates_dimensions() {
        let mut rng = StdRng::seed_from_u64(5);
        let inst = Instance::builder(30).k(2).queries(4).build().unwrap();
        let truth = GroundTruth::sample(30, 2, &mut rng);
        let graph = PoolingGraph::sample(30, 4, 15, &mut rng);
        let ok = inst.assemble(truth.clone(), graph.clone(), vec![0.0; 4]);
        assert!(ok.is_ok());
        let bad = inst.assemble(truth, graph, vec![0.0; 3]);
        assert_eq!(bad.unwrap_err(), InstanceError::Inconsistent);
    }
}
