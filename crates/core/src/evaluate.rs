//! Reconstruction quality metrics.
//!
//! * [`exact_recovery`] — whole-vector success, the criterion of Figure 6;
//! * [`overlap`] — fraction of one-agents correctly identified, Figure 7;
//! * [`separation`] — the score margin between classes, the termination
//!   criterion of the required-queries experiments (Section V,
//!   “Implementation Details”);
//! * [`hamming_distance`] — raw bit errors.

use crate::greedy::Estimate;
use crate::model::GroundTruth;
use serde::{Deserialize, Serialize};

/// Confusion counts of a reconstruction.
///
/// For the rank-`k` decoders in this workspace `false_positives ==
/// false_negatives` (both vectors have weight `k`), but the type holds for
/// arbitrary-weight estimates too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// One-agents correctly identified.
    pub true_positives: usize,
    /// Zero-agents misreported as ones.
    pub false_positives: usize,
    /// One-agents missed.
    pub false_negatives: usize,
    /// Zero-agents correctly identified.
    pub true_negatives: usize,
}

impl Confusion {
    /// Sensitivity `tp / (tp + fn)`; `1.0` when there are no positives.
    pub fn sensitivity(&self) -> f64 {
        let p = self.true_positives + self.false_negatives;
        if p == 0 {
            1.0
        } else {
            self.true_positives as f64 / p as f64
        }
    }

    /// Specificity `tn / (tn + fp)`; `1.0` when there are no negatives.
    pub fn specificity(&self) -> f64 {
        let q = self.true_negatives + self.false_positives;
        if q == 0 {
            1.0
        } else {
            self.true_negatives as f64 / q as f64
        }
    }
}

/// Full confusion counts of the estimate against the truth.
///
/// # Panics
///
/// Panics if the estimate and truth have different population sizes.
pub fn confusion(estimate: &Estimate, truth: &GroundTruth) -> Confusion {
    assert_eq!(
        estimate.n(),
        truth.n(),
        "confusion: size mismatch ({} vs {})",
        estimate.n(),
        truth.n()
    );
    let mut c = Confusion {
        true_positives: 0,
        false_positives: 0,
        false_negatives: 0,
        true_negatives: 0,
    };
    for (est, real) in estimate.bits().iter().zip(truth.bits()) {
        match (est, real) {
            (true, true) => c.true_positives += 1,
            (true, false) => c.false_positives += 1,
            (false, true) => c.false_negatives += 1,
            (false, false) => c.true_negatives += 1,
        }
    }
    c
}

/// Whether the estimate reproduces the ground truth exactly.
///
/// # Panics
///
/// Panics if the estimate and truth have different population sizes.
pub fn exact_recovery(estimate: &Estimate, truth: &GroundTruth) -> bool {
    assert_eq!(
        estimate.n(),
        truth.n(),
        "exact_recovery: size mismatch ({} vs {})",
        estimate.n(),
        truth.n()
    );
    estimate.ones() == truth.ones()
}

/// The overlap of Figure 7: the fraction of true one-agents the estimate
/// identifies, `|est ∩ truth| / k`.
///
/// Returns `1.0` when `k = 0` (nothing to find).
///
/// # Panics
///
/// Panics if the estimate and truth have different population sizes.
pub fn overlap(estimate: &Estimate, truth: &GroundTruth) -> f64 {
    assert_eq!(
        estimate.n(),
        truth.n(),
        "overlap: size mismatch ({} vs {})",
        estimate.n(),
        truth.n()
    );
    if truth.k() == 0 {
        return 1.0;
    }
    let hits = estimate
        .ones()
        .iter()
        .filter(|&&a| truth.is_one(a as usize))
        .count();
    hits as f64 / truth.k() as f64
}

/// Number of positions where the estimated bits differ from the truth.
///
/// For weight-preserving estimators (both vectors have weight `k`) this is
/// always even: `2·(k − |est ∩ truth|)`.
///
/// # Panics
///
/// Panics if the estimate and truth have different population sizes.
pub fn hamming_distance(estimate: &Estimate, truth: &GroundTruth) -> usize {
    assert_eq!(
        estimate.n(),
        truth.n(),
        "hamming_distance: size mismatch ({} vs {})",
        estimate.n(),
        truth.n()
    );
    estimate
        .bits()
        .iter()
        .zip(truth.bits())
        .filter(|(a, b)| a != b)
        .count()
}

/// The score separation `min_{σᵢ=1} scoreᵢ − max_{σᵢ=0} scoreᵢ`.
///
/// Positive separation means a rank-`k` cut reconstructs exactly; the
/// paper's simulation declares the required number of queries reached once
/// this margin is strictly positive.
///
/// Returns `f64::INFINITY` if either class is empty.
///
/// # Panics
///
/// Panics if `scores.len() != truth.n()`.
pub fn separation(scores: &[f64], truth: &GroundTruth) -> f64 {
    assert_eq!(
        scores.len(),
        truth.n(),
        "separation: got {} scores for {} agents",
        scores.len(),
        truth.n()
    );
    let mut min_one = f64::INFINITY;
    let mut max_zero = f64::NEG_INFINITY;
    for (i, &s) in scores.iter().enumerate() {
        if truth.is_one(i) {
            min_one = min_one.min(s);
        } else {
            max_zero = max_zero.max(s);
        }
    }
    if min_one == f64::INFINITY || max_zero == f64::NEG_INFINITY {
        return f64::INFINITY;
    }
    min_one - max_zero
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(bits: &[bool]) -> GroundTruth {
        GroundTruth::from_bits(bits.to_vec())
    }

    fn estimate(scores: Vec<f64>, k: usize) -> Estimate {
        Estimate::from_scores(scores, k)
    }

    #[test]
    fn exact_recovery_positive_and_negative() {
        let t = truth(&[true, false, true, false]);
        let right = estimate(vec![9.0, 0.0, 8.0, 1.0], 2);
        let wrong = estimate(vec![9.0, 8.0, 0.0, 1.0], 2);
        assert!(exact_recovery(&right, &t));
        assert!(!exact_recovery(&wrong, &t));
    }

    #[test]
    fn overlap_counts_hits() {
        let t = truth(&[true, true, false, false]);
        let half = estimate(vec![9.0, 0.0, 8.0, 1.0], 2); // finds agent 0 only
        assert_eq!(overlap(&half, &t), 0.5);
        let all = estimate(vec![9.0, 8.0, 0.0, 1.0], 2);
        assert_eq!(overlap(&all, &t), 1.0);
        let none = estimate(vec![0.0, 1.0, 8.0, 9.0], 2);
        assert_eq!(overlap(&none, &t), 0.0);
    }

    #[test]
    fn overlap_of_empty_truth_is_one() {
        let t = truth(&[false, false]);
        let e = estimate(vec![1.0, 0.0], 0);
        assert_eq!(overlap(&e, &t), 1.0);
    }

    #[test]
    fn hamming_is_twice_the_misses() {
        let t = truth(&[true, true, false, false]);
        let half = estimate(vec![9.0, 0.0, 8.0, 1.0], 2);
        assert_eq!(hamming_distance(&half, &t), 2);
        let all = estimate(vec![9.0, 8.0, 0.0, 1.0], 2);
        assert_eq!(hamming_distance(&all, &t), 0);
    }

    #[test]
    fn separation_sign_tracks_decodability() {
        let t = truth(&[true, false, true]);
        assert!(separation(&[5.0, 1.0, 4.0], &t) > 0.0);
        assert!(separation(&[5.0, 4.5, 4.0], &t) < 0.0);
        assert_eq!(separation(&[5.0, 4.0, 4.0], &t), 0.0);
    }

    #[test]
    fn separation_empty_class_is_infinite() {
        let t = truth(&[true, true]);
        assert_eq!(separation(&[1.0, 2.0], &t), f64::INFINITY);
    }

    #[test]
    fn confusion_counts_all_quadrants() {
        let t = truth(&[true, true, false, false]);
        let e = estimate(vec![9.0, 0.0, 8.0, 1.0], 2); // picks agents 0 and 2
        let c = confusion(&e, &t);
        assert_eq!(c.true_positives, 1);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.false_negatives, 1);
        assert_eq!(c.true_negatives, 1);
        assert_eq!(c.sensitivity(), 0.5);
        assert_eq!(c.specificity(), 0.5);
    }

    #[test]
    fn confusion_is_consistent_with_overlap_for_rank_k() {
        let t = truth(&[true, false, true, false, false]);
        let e = estimate(vec![5.0, 4.0, 3.0, 2.0, 1.0], 2); // picks 0, 1
        let c = confusion(&e, &t);
        assert_eq!(c.false_positives, c.false_negatives);
        assert!((c.sensitivity() - overlap(&e, &t)).abs() < 1e-12);
    }

    #[test]
    fn confusion_degenerate_classes() {
        let t = truth(&[false, false]);
        let e = estimate(vec![1.0, 0.0], 0);
        let c = confusion(&e, &t);
        assert_eq!(c.sensitivity(), 1.0);
        assert_eq!(c.specificity(), 1.0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_sizes_panic() {
        let t = truth(&[true, false, false]);
        let e = estimate(vec![1.0, 0.0], 1);
        exact_recovery(&e, &t);
    }

    #[test]
    fn positive_separation_implies_exact_topk() {
        // Property link between the two criteria: strictly positive
        // separation means the top-k estimate is the truth.
        use proptest::prelude::*;
        use proptest::test_runner::TestRunner;
        let mut runner = TestRunner::default();
        runner
            .run(
                &(proptest::collection::vec(-10.0f64..10.0, 3..40), 0usize..40),
                |(scores, pick)| {
                    let n = scores.len();
                    let k = pick % n;
                    // Construct a truth from the top-k of the scores with a
                    // strict margin requirement; skip degenerate ties.
                    let est = Estimate::from_scores(scores.clone(), k);
                    let t = GroundTruth::from_bits(est.bits().to_vec());
                    let sep = separation(&scores, &t);
                    if sep > 0.0 {
                        prop_assert!(exact_recovery(&est, &t));
                    }
                    Ok(())
                },
            )
            .unwrap();
    }
}
