//! The pooling-design layer: the bipartite multigraph between agents and
//! queries, and the pluggable schemes that sample it.
//!
//! Following the paper's model section, every query draws `Γ` agents
//! uniformly at random *with replacement* from the population, so an agent
//! can be wired to the same query multiple times (multi-edges). The
//! multigraph is stored query-major as run-length-encoded multisets, which
//! is what both the decoder (scatter query results to distinct members) and
//! the AMP baseline (biadjacency matrix) consume.
//!
//! The paper runs every experiment on that one i.i.d. design, but the
//! follow-up literature shows the design matrix is the main lever for
//! approximate recovery — doubly regular schemes (Hahn-Klimroth, Kaaser &
//! Rau 2023) and sparse constant-column constructions recover with fewer
//! queries at the same noise. This module therefore exposes the design as a
//! plug point:
//!
//! * [`PoolingDesign`] — the object-safe trait every scheme implements:
//!   sample a [`PoolingGraph`] from `(n, m, Γ, rng)` plus metadata (name,
//!   agent/query regularity, expected slot profile).
//! * [`IidDesign`] — the paper's i.i.d. `Γ`-regular multigraph (the
//!   refactored original sampler; bit-identical to [`PoolingGraph::sample`]).
//! * [`DoublyRegularDesign`] — exact agent-regularity *and* balanced pool
//!   sizes via a configuration-model pairing with switch repair.
//! * [`SparseColumnDesign`] — exact constant column weight with free pool
//!   sizes, the classic group-testing design for the sparse regime.
//! * [`SpatiallyCoupledDesign`] — banded queries sliding over the agent
//!   axis, giving the sensing matrix the block-band structure
//!   spatially-coupled AMP exploits.
//! * [`DesignSpec`] — a copyable, serializable name for a design (including
//!   the legacy [`Sampling`] schemes), used by configuration types such as
//!   [`crate::Instance`] and the experiment harness's scenario registry.

use crate::model::GroundTruth;
use crate::noise::NoiseModel;
use npd_numerics::CsrMatrix;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
// xtask:allow(hash-iteration): used only as a multiplicity counter probed by key (see DoublyRegularDesign::sample); never iterated
use std::collections::HashMap;
use std::fmt;

/// How each query's `Γ` slots are drawn from the population.
///
/// The paper uses [`WithReplacement`](Sampling::WithReplacement) (multi-
/// edges allowed), noting it “adapts techniques used in a variety of other
/// statistical inference problems”. The without-replacement design is the
/// classic alternative from the group-testing literature; it touches `Γ`
/// distinct agents per query instead of `≈ γn`, and the ablation study
/// (`repro ablations`) quantifies the resulting query savings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sampling {
    /// Uniform i.i.d. slots; agents may repeat within a query (the paper's
    /// design).
    #[default]
    WithReplacement,
    /// Uniform `Γ`-subsets; every slot is a distinct agent.
    WithoutReplacement,
    /// Doubly-balanced allocation: slots are dealt from a rotating
    /// random-permutation deck that is reshuffled whenever it runs out, so
    /// after `m` queries every agent has degree `⌊mΓ/n⌋` or `⌈mΓ/n⌉` while
    /// every query still has exactly `Γ` slots — the constant-column-weight
    /// idea of the group-testing literature (near-constant tests per item).
    ///
    /// Degree regularity is a double-edged sword here: dealing couples
    /// queries *within* a deck pass. At sparse query sizes (`Γ ≲ n/8`) the
    /// coupling is mild and the design measurably beats the paper's
    /// independent sampling under noise, but at the paper's dense `Γ = n/2`
    /// each pass deals two exactly complementary queries whose results are
    /// perfectly anti-correlated, inflating the score fluctuations of the
    /// maximum-neighborhood rule — `repro designs` quantifies both regimes.
    Balanced,
}

/// One query's multiset of agents, run-length encoded and sorted by agent
/// id.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryMultiset {
    /// Distinct agent ids, ascending.
    agents: Vec<u32>,
    /// Multiplicities, parallel to `agents`.
    counts: Vec<u32>,
    /// Total number of slots (`Σ counts = Γ`).
    total: u32,
}

impl QueryMultiset {
    /// Builds from raw slot samples (unsorted, with repetitions).
    pub fn from_slots(mut slots: Vec<u32>) -> Self {
        slots.sort_unstable();
        let mut agents = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        for &s in &slots {
            match counts.last_mut() {
                Some(c) if agents.last() == Some(&s) => *c += 1,
                _ => {
                    agents.push(s);
                    counts.push(1);
                }
            }
        }
        let total = slots.len() as u32;
        Self {
            agents,
            counts,
            total,
        }
    }

    /// Distinct agents in this query (`∂*a`), ascending.
    pub fn distinct_agents(&self) -> &[u32] {
        &self.agents
    }

    /// Number of distinct agents (`|∂*a|`).
    pub fn distinct_len(&self) -> usize {
        self.agents.len()
    }

    /// Total slots including multiplicities (`|∂a| = Γ`).
    pub fn total_slots(&self) -> u32 {
        self.total
    }

    /// Iterates `(agent, multiplicity)` pairs in ascending agent order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.agents.iter().copied().zip(self.counts.iter().copied())
    }

    /// Multiplicity of `agent` in this query (0 if absent).
    pub fn multiplicity(&self, agent: u32) -> u32 {
        match self.agents.binary_search(&agent) {
            Ok(i) => self.counts[i],
            Err(_) => 0,
        }
    }

    /// Number of slots that land on one-agents under `truth` — the exact
    /// noiseless measurement of this query.
    ///
    /// # Panics
    ///
    /// Panics if an agent id is out of range for `truth`.
    pub fn one_slots(&self, truth: &GroundTruth) -> u64 {
        self.iter()
            .filter(|&(a, _)| truth.is_one(a as usize))
            .map(|(_, c)| c as u64)
            .sum()
    }
}

/// The bipartite pooling multigraph: `n` agents, `m` queries of `Γ` slots
/// each.
///
/// # Examples
///
/// ```
/// use npd_core::PoolingGraph;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let graph = PoolingGraph::sample(100, 20, 50, &mut rng);
/// assert_eq!(graph.query_count(), 20);
/// assert_eq!(graph.query(0).total_slots(), 50);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolingGraph {
    n: usize,
    gamma: usize,
    queries: Vec<QueryMultiset>,
}

impl PoolingGraph {
    /// Samples the random design: `m` queries, each `Γ = gamma` slots drawn
    /// uniformly with replacement (the paper's design; see
    /// [`sample_with`](Self::sample_with) for the without-replacement
    /// variant).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `gamma == 0`, or `n > u32::MAX`.
    pub fn sample<R: Rng + ?Sized>(n: usize, m: usize, gamma: usize, rng: &mut R) -> Self {
        Self::sample_with(n, m, gamma, Sampling::WithReplacement, rng)
    }

    /// Samples the design under an explicit [`Sampling`] scheme.
    ///
    /// # Examples
    ///
    /// ```
    /// use npd_core::{PoolingGraph, Sampling};
    /// use rand::SeedableRng;
    ///
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    /// let graph = PoolingGraph::sample_with(60, 12, 30, Sampling::WithoutReplacement, &mut rng);
    /// // Every query of the Γ-subset design touches Γ *distinct* agents.
    /// assert!(graph.queries().iter().all(|q| q.distinct_len() == 30));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `gamma == 0`, `n > u32::MAX`, or (without
    /// replacement) `gamma > n`.
    pub fn sample_with<R: Rng + ?Sized>(
        n: usize,
        m: usize,
        gamma: usize,
        sampling: Sampling,
        rng: &mut R,
    ) -> Self {
        assert!(n > 0, "PoolingGraph::sample: n must be positive");
        assert!(gamma > 0, "PoolingGraph::sample: gamma must be positive");
        assert!(n <= u32::MAX as usize, "PoolingGraph::sample: n too large");
        let queries = match sampling {
            Sampling::WithReplacement => iid_queries(n, m, gamma, rng),
            Sampling::WithoutReplacement => {
                assert!(
                    gamma <= n,
                    "PoolingGraph::sample_with: gamma={gamma} exceeds n={n} without replacement"
                );
                subset_queries(n, m, gamma, rng)
            }
            Sampling::Balanced => deck_queries(n, m, gamma, rng),
        };
        Self { n, gamma, queries }
    }

    /// Builds a graph from explicit slot lists (one per query).
    ///
    /// All queries must have the same number of slots; this mirrors the
    /// paper's fixed-`Γ` design.
    ///
    /// # Panics
    ///
    /// Panics if a slot references an agent `>= n` or query sizes differ.
    pub fn from_slot_lists(n: usize, slot_lists: Vec<Vec<u32>>) -> Self {
        let gamma = slot_lists.first().map_or(0, Vec::len);
        for (j, slots) in slot_lists.iter().enumerate() {
            assert_eq!(
                slots.len(),
                gamma,
                "PoolingGraph::from_slot_lists: query {j} has {} slots, expected {gamma}",
                slots.len()
            );
            for &s in slots {
                assert!(
                    (s as usize) < n,
                    "PoolingGraph::from_slot_lists: agent {s} out of range for n={n}"
                );
            }
        }
        let queries = slot_lists
            .into_iter()
            .map(QueryMultiset::from_slots)
            .collect();
        Self { n, gamma, queries }
    }

    /// Builds a graph from explicit slot lists whose sizes may differ
    /// (ragged queries), recording `nominal_gamma` as the design's nominal
    /// query size.
    ///
    /// The exactly balanced designs ([`DoublyRegularDesign`],
    /// [`SparseColumnDesign`]) trade the paper's fixed `Γ` for degree
    /// regularity, so their pool sizes can differ by one (or more, for the
    /// free-pool sparse design); this constructor is their entry point.
    /// Consumers that need a per-query size must use
    /// [`QueryMultiset::total_slots`]; [`PoolingGraph::gamma`] only reports
    /// the nominal size.
    ///
    /// # Panics
    ///
    /// Panics if a slot references an agent `>= n` or `nominal_gamma == 0`.
    pub fn from_ragged_slot_lists(
        n: usize,
        nominal_gamma: usize,
        slot_lists: Vec<Vec<u32>>,
    ) -> Self {
        assert!(
            nominal_gamma > 0,
            "PoolingGraph::from_ragged_slot_lists: nominal_gamma must be positive"
        );
        for (j, slots) in slot_lists.iter().enumerate() {
            for &s in slots {
                assert!(
                    (s as usize) < n,
                    "PoolingGraph::from_ragged_slot_lists: query {j}: agent {s} out of range \
                     for n={n}"
                );
            }
        }
        let queries = slot_lists
            .into_iter()
            .map(QueryMultiset::from_slots)
            .collect();
        Self {
            n,
            gamma: nominal_gamma,
            queries,
        }
    }

    /// The running example of Figure 1: `n = 7` agents,
    /// `σ = (1,0,1,0,1,0,0)`, five queries of three slots each whose exact
    /// sums are `(2, 3, 1, 1, 1)`.
    ///
    /// The figure does not list the edges explicitly; this instance is a
    /// minimal multigraph consistent with the printed query results (query 1
    /// contains agent 2 twice, producing the multi-edge the caption points
    /// out).
    pub fn figure1_example() -> (Self, GroundTruth) {
        let truth = GroundTruth::from_bits(vec![true, false, true, false, true, false, false]);
        let graph = Self::from_slot_lists(
            7,
            vec![
                vec![0, 1, 2], // σ₀+σ₁+σ₂ = 2
                vec![0, 2, 2], // multi-edge on agent 2: 1+1+1 = 3
                vec![2, 3, 5], // 1
                vec![3, 4, 6], // 1
                vec![4, 5, 6], // 1
            ],
        );
        (graph, truth)
    }

    /// Population size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Nominal slots per query `Γ`.
    ///
    /// Exact for the query-regular designs (every query has exactly `Γ`
    /// slots); for ragged designs built through
    /// [`from_ragged_slot_lists`](Self::from_ragged_slot_lists) this is the
    /// design's target size and [`mean_query_slots`](Self::mean_query_slots)
    /// gives the realized average.
    pub fn gamma(&self) -> usize {
        self.gamma
    }

    /// Mean realized slots per query (`Σⱼ |∂aⱼ| / m`).
    ///
    /// Equals [`gamma`](Self::gamma) exactly for query-regular designs;
    /// moment-based estimators use this so they stay exact on ragged
    /// designs. Returns the nominal `Γ` for an empty graph.
    pub fn mean_query_slots(&self) -> f64 {
        if self.queries.is_empty() {
            return self.gamma as f64;
        }
        let total: u64 = self.queries.iter().map(|q| q.total_slots() as u64).sum();
        total as f64 / self.queries.len() as f64
    }

    /// Number of queries `m`.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// The `j`-th query.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn query(&self, j: usize) -> &QueryMultiset {
        &self.queries[j]
    }

    /// Iterates all queries in id order.
    pub fn queries(&self) -> &[QueryMultiset] {
        &self.queries
    }

    /// Draws the (noisy) measurement vector `σ̂` for the given ground truth.
    pub fn measure<R: Rng + ?Sized>(
        &self,
        truth: &GroundTruth,
        noise: &NoiseModel,
        rng: &mut R,
    ) -> Vec<f64> {
        assert_eq!(
            truth.n(),
            self.n,
            "PoolingGraph::measure: ground truth size mismatch"
        );
        self.queries
            .iter()
            .map(|q| {
                let ones = q.one_slots(truth);
                let zeros = q.total_slots() as u64 - ones;
                noise.measure(ones, zeros, rng)
            })
            .collect()
    }

    /// Multi-degrees `Δᵢ` (slots per agent, counting multiplicity).
    pub fn multi_degrees(&self) -> Vec<u64> {
        let mut deg = vec![0u64; self.n];
        for q in &self.queries {
            for (a, c) in q.iter() {
                deg[a as usize] += c as u64;
            }
        }
        deg
    }

    /// Distinct degrees `Δ*ᵢ` (number of distinct queries containing each
    /// agent).
    pub fn distinct_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.n];
        for q in &self.queries {
            for &a in q.distinct_agents() {
                deg[a as usize] += 1;
            }
        }
        deg
    }

    /// The `m × n` biadjacency matrix with multiplicities as entries (the
    /// `A` consumed by AMP).
    pub fn to_csr(&self) -> CsrMatrix {
        // Queries are run-length encoded with ascending agent ids — exactly
        // CSR row form — so build directly instead of going through the
        // triplet bucket sort (an order of magnitude cheaper at paper
        // scale, where this conversion is AMP's per-run preprocessing).
        CsrMatrix::from_sorted_rows(
            self.query_count(),
            self.n,
            self.queries
                .iter()
                .map(|q| q.iter().map(|(a, c)| (a, c as f64))),
        )
    }
}

/// The paper's i.i.d. sampler: `m` queries of `gamma` uniform slots each,
/// drawn with replacement. Extracted so [`PoolingGraph::sample_with`] and
/// [`IidDesign`] share one RNG-call sequence (pinned bit-identical by the
/// `iid_design_is_bit_identical_to_legacy_sampler` regression test).
fn iid_queries<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    gamma: usize,
    rng: &mut R,
) -> Vec<QueryMultiset> {
    (0..m)
        .map(|_| {
            let slots: Vec<u32> = (0..gamma).map(|_| rng.gen_range(0..n as u32)).collect();
            QueryMultiset::from_slots(slots)
        })
        .collect()
}

/// Uniform `Γ`-subset queries via a reusable partial Fisher–Yates: after
/// each query the array is still a permutation, so the next draw stays
/// uniform.
fn subset_queries<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    gamma: usize,
    rng: &mut R,
) -> Vec<QueryMultiset> {
    let mut idx: Vec<u32> = (0..n as u32).collect();
    (0..m)
        .map(|_| {
            for i in 0..gamma {
                let j = rng.gen_range(i..n);
                idx.swap(i, j);
            }
            QueryMultiset::from_slots(idx[..gamma].to_vec())
        })
        .collect()
}

/// Rotating-deck queries: deal `Γ` slots per query, reshuffling the full
/// permutation whenever it runs out, so agent degrees stay within one of
/// each other at every prefix of the query sequence.
fn deck_queries<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    gamma: usize,
    rng: &mut R,
) -> Vec<QueryMultiset> {
    let mut deck: Vec<u32> = (0..n as u32).collect();
    let mut pos = n; // empty deck forces the initial shuffle
    (0..m)
        .map(|_| {
            let mut slots = Vec::with_capacity(gamma);
            for _ in 0..gamma {
                if pos == n {
                    for i in (1..n).rev() {
                        let j = rng.gen_range(0..=i);
                        deck.swap(i, j);
                    }
                    pos = 0;
                }
                slots.push(deck[pos]);
                pos += 1;
            }
            QueryMultiset::from_slots(slots)
        })
        .collect()
}

/// Structural metadata of a pooling design at a concrete `(n, m, Γ)`
/// operating point (see [`PoolingDesign::profile`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignProfile {
    /// Whether every agent receives *exactly* the same number of slots.
    pub agent_regular: bool,
    /// Whether every query has *exactly* `Γ` slots.
    pub query_regular: bool,
    /// Expected slots per agent (`Δᵢ`); exact for agent-regular designs.
    pub expected_agent_slots: f64,
    /// Expected slots per query; exact for query-regular designs.
    pub expected_query_slots: f64,
}

/// A scheme for sampling the bipartite pooling multigraph.
///
/// This is the extension point the experiment harness plugs workloads into:
/// a design maps `(n, m, Γ, rng)` to a [`PoolingGraph`] and describes its
/// own structure (name, regularity, expected slot profile). The trait is
/// object-safe so heterogeneous design catalogs can be iterated
/// (`Vec<Box<dyn PoolingDesign>>`), mirroring [`crate::Decoder`].
///
/// # Examples
///
/// ```
/// use npd_core::{DoublyRegularDesign, IidDesign, PoolingDesign};
/// use rand::SeedableRng;
///
/// let designs: Vec<Box<dyn PoolingDesign>> =
///     vec![Box::new(IidDesign), Box::new(DoublyRegularDesign)];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// for design in &designs {
///     let graph = design.sample(100, 40, 20, &mut rng);
///     assert_eq!(graph.query_count(), 40);
///     // The profile's expected per-agent slot count matches the graph.
///     let profile = design.profile(100, 40, 20);
///     let total: u64 = graph.multi_degrees().iter().sum();
///     assert!((total as f64 / 100.0 - profile.expected_agent_slots).abs() < 2.0);
/// }
/// ```
pub trait PoolingDesign {
    /// Short stable identifier (`"iid"`, `"doubly-regular"`, …) used in
    /// reports and the scenario registry.
    fn name(&self) -> &'static str;

    /// Structural metadata at the `(n, m, gamma)` operating point.
    fn profile(&self, n: usize, m: usize, gamma: usize) -> DesignProfile;

    /// Samples the pooling graph: `m` queries over `n` agents with nominal
    /// query size `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `gamma == 0`, or `n > u32::MAX` (designs may add
    /// scheme-specific constraints, documented on each implementation).
    fn sample(&self, n: usize, m: usize, gamma: usize, rng: &mut dyn RngCore) -> PoolingGraph;
}

/// Shared parameter validation for the design implementations.
fn assert_design_params(n: usize, gamma: usize) {
    assert!(n > 0, "PoolingDesign::sample: n must be positive");
    assert!(gamma > 0, "PoolingDesign::sample: gamma must be positive");
    assert!(n <= u32::MAX as usize, "PoolingDesign::sample: n too large");
}

/// Exact agent degree targeted by the agent-regular designs: `m·Γ/n`
/// rounded to the nearest integer, floored at one slot per agent.
fn regular_agent_degree(n: usize, m: usize, gamma: usize) -> usize {
    (((m * gamma) as f64 / n as f64).round() as usize).max(1)
}

/// The paper's design: every slot i.i.d. uniform, multi-edges allowed
/// (`Sampling::WithReplacement` behind the [`PoolingDesign`] interface).
///
/// Query-regular (exactly `Γ` slots per query) but only
/// *concentration*-regular on the agent side: Lemma 3 of the paper bounds
/// the degree spread by `ln n·√Δ`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IidDesign;

impl PoolingDesign for IidDesign {
    fn name(&self) -> &'static str {
        "iid"
    }

    fn profile(&self, n: usize, m: usize, gamma: usize) -> DesignProfile {
        DesignProfile {
            agent_regular: false,
            query_regular: true,
            expected_agent_slots: (m * gamma) as f64 / n as f64,
            expected_query_slots: gamma as f64,
        }
    }

    fn sample(&self, n: usize, m: usize, gamma: usize, rng: &mut dyn RngCore) -> PoolingGraph {
        let mut rng = rng;
        PoolingGraph::sample_with(n, m, gamma, Sampling::WithReplacement, &mut rng)
    }
}

/// Exactly doubly regular design: every agent gets *exactly*
/// `d = round(mΓ/n)` slots and pool sizes are balanced to within one slot,
/// via a configuration-model pairing with switch repair (the doubly regular
/// pooling schemes of Hahn-Klimroth, Kaaser & Rau 2023, arXiv:2303.00043).
///
/// Construction: lay out `n·d` stubs (agent `i` repeated `d` times),
/// shuffle them, and deal contiguous runs into the `m` pools — sizes
/// `⌊nd/m⌋` or `⌈nd/m⌉`. A dealt pool can contain an agent twice; switch
/// repair then exchanges each duplicate slot with a uniformly chosen slot
/// of another pool whenever the exchange removes the duplicate without
/// creating new ones (the same repair style as
/// `npd_netsim::Topology::random_regular`). Switches preserve both agent
/// degrees and pool sizes, so regularity is exact regardless of how many
/// repairs run; in the (never observed at feasible densities) event that
/// the attempt budget is exhausted a residual multi-edge is tolerated.
///
/// Note the realized total `n·d` differs from the i.i.d. design's `m·Γ` by
/// at most `n/2` slots (the rounding of `d`), so pool sizes sit within one
/// of `nd/m ≈ Γ`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DoublyRegularDesign;

impl PoolingDesign for DoublyRegularDesign {
    fn name(&self) -> &'static str {
        "doubly-regular"
    }

    fn profile(&self, n: usize, m: usize, gamma: usize) -> DesignProfile {
        let d = regular_agent_degree(n, m, gamma);
        DesignProfile {
            agent_regular: true,
            query_regular: (n * d).is_multiple_of(m.max(1)),
            expected_agent_slots: d as f64,
            expected_query_slots: (n * d) as f64 / m.max(1) as f64,
        }
    }

    fn sample(&self, n: usize, m: usize, gamma: usize, rng: &mut dyn RngCore) -> PoolingGraph {
        assert_design_params(n, gamma);
        if m == 0 {
            return PoolingGraph::from_ragged_slot_lists(n, gamma, Vec::new());
        }
        let d = regular_agent_degree(n, m, gamma);
        let total = n * d;

        // Configuration model: one stub per (agent, slot), shuffled.
        let mut stubs: Vec<u32> = (0..n as u32)
            .flat_map(|v| std::iter::repeat_n(v, d))
            .collect();
        for i in (1..total).rev() {
            let j = rng.gen_range(0..=i);
            stubs.swap(i, j);
        }

        // Deal contiguous runs into m pools of size ⌊total/m⌋ or ⌈total/m⌉.
        let base = total / m;
        let extra = total % m;
        let mut pools: Vec<Vec<u32>> = Vec::with_capacity(m);
        let mut offset = 0usize;
        for j in 0..m {
            let size = base + usize::from(j < extra);
            pools.push(stubs[offset..offset + size].to_vec());
            offset += size;
        }

        // Switch repair: find within-pool duplicates and exchange them with
        // slots of other pools. Counts track per-pool multiplicities so a
        // proposed switch can be vetoed in O(1).
        //
        // Iteration-order invariant: these maps are only ever *probed* by
        // key (`contains_key` / indexing / `get_mut`); every loop below
        // walks `pools`, never a map, so the per-process hash seed cannot
        // reach the sampled graph. Keep it that way.
        // xtask:allow(hash-iteration): multiplicity counter probed by key; loops iterate `pools`, never the map
        let mut counts: Vec<HashMap<u32, u32>> = pools
            .iter()
            .map(|pool| {
                // xtask:allow(hash-iteration): same membership-only counter as `counts` above
                let mut map = HashMap::with_capacity(pool.len());
                for &a in pool {
                    *map.entry(a).or_insert(0) += 1;
                }
                map
            })
            .collect();
        let mut dups: Vec<(usize, usize)> = Vec::new();
        for (p, pool) in pools.iter().enumerate() {
            let map = &counts[p];
            // xtask:allow(hash-iteration): duplicate detector; entries are probed per pool element in pool order, the map itself is never walked
            let mut seen: HashMap<u32, u32> = HashMap::new();
            for (idx, &a) in pool.iter().enumerate() {
                let c = seen.entry(a).or_insert(0);
                *c += 1;
                // Every occurrence beyond the first is a repair candidate.
                if *c > 1 {
                    debug_assert!(map[&a] >= *c);
                    dups.push((p, idx));
                }
            }
        }
        let mut attempts = 0usize;
        let budget = 200 * dups.len() + 10_000;
        'repair: while let Some((p, idx)) = dups.pop() {
            let a = pools[p][idx];
            if counts[p][&a] <= 1 {
                continue; // an earlier switch already fixed this pool
            }
            loop {
                attempts += 1;
                if attempts > budget {
                    break 'repair; // tolerate the residual multi-edge
                }
                let q = rng.gen_range(0..m);
                if q == p || pools[q].is_empty() {
                    continue;
                }
                let s = rng.gen_range(0..pools[q].len());
                let b = pools[q][s];
                // Accept only switches that strictly remove the duplicate:
                // b must be new to pool p, and a new to pool q.
                if b == a || counts[p].contains_key(&b) || counts[q].contains_key(&a) {
                    continue;
                }
                pools[p][idx] = b;
                pools[q][s] = a;
                #[allow(clippy::expect_used)]
                // xtask:allow(unwrap-audit): `a` was just read out of pools[p], and counts[p] mirrors pools[p] exactly
                let count_a = counts[p].get_mut(&a).expect("a present in pool p");
                *count_a -= 1;
                if counts[p][&a] == 0 {
                    counts[p].remove(&a);
                }
                counts[p].insert(b, 1);
                #[allow(clippy::expect_used)]
                // xtask:allow(unwrap-audit): `b` was just read out of pools[q], and counts[q] mirrors pools[q] exactly
                let count_b = counts[q].get_mut(&b).expect("b present in pool q");
                *count_b -= 1;
                if counts[q][&b] == 0 {
                    counts[q].remove(&b);
                }
                counts[q].insert(a, 1);
                break;
            }
        }
        PoolingGraph::from_ragged_slot_lists(n, gamma, pools)
    }
}

/// Sparse constant-column design: every agent joins *exactly*
/// `d = round(mΓ/n)` distinct pools chosen uniformly at random, with no
/// constraint on pool sizes.
///
/// This is the classic (near-)constant tests-per-item design of the group
/// testing literature, intended for the sparse regime `θ < 1/2` where the
/// informative query size is far below the paper's `Γ = n/2` (see the
/// sparse-regime constructions of arXiv:2312.14588). Pool sizes are sums of
/// independent Bernoulli(`d/m`) indicators — multinomial-tight around
/// `nd/m ≈ Γ` but not balanced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparseColumnDesign;

impl PoolingDesign for SparseColumnDesign {
    fn name(&self) -> &'static str {
        "sparse-column"
    }

    fn profile(&self, n: usize, m: usize, gamma: usize) -> DesignProfile {
        let d = regular_agent_degree(n, m, gamma).min(m.max(1));
        DesignProfile {
            agent_regular: true,
            query_regular: false,
            expected_agent_slots: d as f64,
            expected_query_slots: (n * d) as f64 / m.max(1) as f64,
        }
    }

    fn sample(&self, n: usize, m: usize, gamma: usize, rng: &mut dyn RngCore) -> PoolingGraph {
        assert_design_params(n, gamma);
        if m == 0 {
            return PoolingGraph::from_ragged_slot_lists(n, gamma, Vec::new());
        }
        // Column weight: the agent-regular degree, capped at m since each
        // chosen pool is distinct.
        let d = regular_agent_degree(n, m, gamma).min(m);
        let mut pools: Vec<Vec<u32>> = vec![Vec::new(); m];
        // Reusable partial Fisher–Yates over pool ids (uniform d-subset per
        // agent, exactly like the Γ-subset query sampler transposed).
        let mut idx: Vec<u32> = (0..m as u32).collect();
        for agent in 0..n as u32 {
            for i in 0..d {
                let j = rng.gen_range(i..m);
                idx.swap(i, j);
                pools[idx[i] as usize].push(agent);
            }
        }
        PoolingGraph::from_ragged_slot_lists(n, gamma, pools)
    }
}

/// Spatially-coupled (banded) design: queries cycle through `L` bands laid
/// out along the agent axis, each drawing its `Γ` slots i.i.d. from a
/// window of width `≈ 2n/L` starting at the band's offset (wrapping at
/// `n`).
///
/// Consecutive bands overlap by half a window, so information "couples"
/// across the agent axis the way spatially-coupled sensing matrices do in
/// compressed sensing; the resulting biadjacency matrix is block-banded
/// after sorting queries by band, giving each query node locality (it only
/// ever contacts a window of agents). With `bands == 1` the window is the
/// whole population and the design degenerates to [`IidDesign`].
///
/// **Decoding caveat (measured, not hypothetical):** banding deliberately
/// breaks the exchangeability that both the greedy rule's centering
/// (Lemma 7 averages over a *uniform* second neighborhood) and vanilla
/// AMP's i.i.d.-matrix assumption rest on. Conditional on the truth, a
/// zero-agent whose windows are locally rich in one-agents out-scores an
/// isolated one-agent *in expectation*, so exact recovery by any global
/// top-`k` score rule fails persistently at strong coupling; recovery
/// degrades gracefully as `L` shrinks. The scenario registry measures the
/// surviving *overlap* instead of exact recovery for this design, and a
/// block-aware SC-AMP (per-band state evolution) is the intended future
/// consumer of the structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpatiallyCoupledDesign {
    /// Number of bands `L` (clamped into `[1, n]` at sampling time).
    pub bands: usize,
}

impl SpatiallyCoupledDesign {
    /// The default band count used by the experiment harness: windows of
    /// `n/2` with half-window overlap — strong enough banding to expose
    /// the structure, weak enough that global decoders retain most of
    /// their overlap.
    pub const DEFAULT_BANDS: usize = 4;
}

impl Default for SpatiallyCoupledDesign {
    fn default() -> Self {
        Self {
            bands: Self::DEFAULT_BANDS,
        }
    }
}

/// Band geometry shared by the batch sampler and the incremental
/// simulation: band `b` of `L` covers `[b·n/L, b·n/L + width)` mod `n`.
pub(crate) fn band_window(n: usize, bands: usize, band: usize) -> (usize, usize) {
    let l = bands.clamp(1, n);
    let start = (band % l) * n / l;
    let width = (2 * n).div_ceil(l).min(n);
    (start, width)
}

impl PoolingDesign for SpatiallyCoupledDesign {
    fn name(&self) -> &'static str {
        "spatially-coupled"
    }

    fn profile(&self, n: usize, m: usize, gamma: usize) -> DesignProfile {
        DesignProfile {
            agent_regular: false,
            query_regular: true,
            expected_agent_slots: (m * gamma) as f64 / n as f64,
            expected_query_slots: gamma as f64,
        }
    }

    fn sample(&self, n: usize, m: usize, gamma: usize, rng: &mut dyn RngCore) -> PoolingGraph {
        assert_design_params(n, gamma);
        let pools: Vec<Vec<u32>> = (0..m)
            .map(|j| {
                let (start, width) = band_window(n, self.bands, j);
                (0..gamma)
                    .map(|_| ((start + rng.gen_range(0..width)) % n) as u32)
                    .collect()
            })
            .collect();
        PoolingGraph::from_ragged_slot_lists(n, gamma, pools)
    }
}

/// A copyable, serializable name for a pooling design.
///
/// Configuration types ([`crate::Instance`], the experiment harness's sweep
/// cells and scenario registry) carry a `DesignSpec`; it implements
/// [`PoolingDesign`] itself by delegating to the named scheme, so it can be
/// used anywhere a design is expected.
///
/// The first three variants are the legacy [`Sampling`] schemes (kept so
/// the paper's exact sampler remains reachable and bit-identical); the rest
/// are the structured designs of this module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DesignSpec {
    /// The paper's i.i.d. multigraph ([`IidDesign`],
    /// [`Sampling::WithReplacement`]).
    #[default]
    Iid,
    /// Uniform `Γ`-subset queries ([`Sampling::WithoutReplacement`]).
    GammaSubset,
    /// Rotating-deck balanced allocation ([`Sampling::Balanced`]): the
    /// *anytime* doubly-balanced scheme, degrees within ±1 at every query
    /// prefix.
    BalancedDeck,
    /// Exactly doubly regular batch construction
    /// ([`DoublyRegularDesign`]).
    DoublyRegular,
    /// Sparse constant-column-weight design ([`SparseColumnDesign`]).
    SparseColumn,
    /// Banded/spatially-coupled design ([`SpatiallyCoupledDesign`]).
    SpatiallyCoupled {
        /// Number of bands `L`.
        bands: usize,
    },
}

impl DesignSpec {
    /// The default spatially-coupled spec
    /// (`L =` [`SpatiallyCoupledDesign::DEFAULT_BANDS`]).
    pub fn spatially_coupled() -> Self {
        DesignSpec::SpatiallyCoupled {
            bands: SpatiallyCoupledDesign::DEFAULT_BANDS,
        }
    }

    /// The legacy [`Sampling`] scheme this spec corresponds to, if any.
    pub fn legacy_sampling(&self) -> Option<Sampling> {
        match self {
            DesignSpec::Iid => Some(Sampling::WithReplacement),
            DesignSpec::GammaSubset => Some(Sampling::WithoutReplacement),
            DesignSpec::BalancedDeck => Some(Sampling::Balanced),
            _ => None,
        }
    }

    /// Parses the stable [`name`](PoolingDesign::name) form (`"iid"`,
    /// `"doubly-regular"`, …) back into a spec; parametrized designs get
    /// their defaults (`"spatially-coupled"` →
    /// [`DesignSpec::spatially_coupled`]). Note this is the `name()` form,
    /// not the parametrized `Display` form.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "iid" => Some(DesignSpec::Iid),
            "gamma-subset" => Some(DesignSpec::GammaSubset),
            "balanced-deck" => Some(DesignSpec::BalancedDeck),
            "doubly-regular" => Some(DesignSpec::DoublyRegular),
            "sparse-column" => Some(DesignSpec::SparseColumn),
            "spatially-coupled" => Some(DesignSpec::spatially_coupled()),
            _ => None,
        }
    }
}

impl From<Sampling> for DesignSpec {
    fn from(s: Sampling) -> Self {
        match s {
            Sampling::WithReplacement => DesignSpec::Iid,
            Sampling::WithoutReplacement => DesignSpec::GammaSubset,
            Sampling::Balanced => DesignSpec::BalancedDeck,
        }
    }
}

/// `Display` prints the stable [`PoolingDesign::name`] (plus parameters
/// where the design has any).
impl fmt::Display for DesignSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignSpec::SpatiallyCoupled { bands } => {
                write!(f, "spatially-coupled(L={bands})")
            }
            other => f.write_str(other.name()),
        }
    }
}

impl PoolingDesign for DesignSpec {
    fn name(&self) -> &'static str {
        match self {
            DesignSpec::Iid => "iid",
            DesignSpec::GammaSubset => "gamma-subset",
            DesignSpec::BalancedDeck => "balanced-deck",
            DesignSpec::DoublyRegular => DoublyRegularDesign.name(),
            DesignSpec::SparseColumn => SparseColumnDesign.name(),
            DesignSpec::SpatiallyCoupled { .. } => "spatially-coupled",
        }
    }

    fn profile(&self, n: usize, m: usize, gamma: usize) -> DesignProfile {
        match *self {
            DesignSpec::Iid => IidDesign.profile(n, m, gamma),
            DesignSpec::GammaSubset => DesignProfile {
                agent_regular: false,
                query_regular: true,
                expected_agent_slots: (m * gamma) as f64 / n as f64,
                expected_query_slots: gamma as f64,
            },
            DesignSpec::BalancedDeck => DesignProfile {
                // Deck dealing keeps degrees within ±1 (not exactly equal
                // unless mΓ divides n).
                agent_regular: (m * gamma).is_multiple_of(n),
                query_regular: true,
                expected_agent_slots: (m * gamma) as f64 / n as f64,
                expected_query_slots: gamma as f64,
            },
            DesignSpec::DoublyRegular => DoublyRegularDesign.profile(n, m, gamma),
            DesignSpec::SparseColumn => SparseColumnDesign.profile(n, m, gamma),
            DesignSpec::SpatiallyCoupled { bands } => {
                SpatiallyCoupledDesign { bands }.profile(n, m, gamma)
            }
        }
    }

    fn sample(&self, n: usize, m: usize, gamma: usize, rng: &mut dyn RngCore) -> PoolingGraph {
        let mut r = rng;
        match *self {
            DesignSpec::Iid => {
                PoolingGraph::sample_with(n, m, gamma, Sampling::WithReplacement, &mut r)
            }
            DesignSpec::GammaSubset => {
                PoolingGraph::sample_with(n, m, gamma, Sampling::WithoutReplacement, &mut r)
            }
            DesignSpec::BalancedDeck => {
                PoolingGraph::sample_with(n, m, gamma, Sampling::Balanced, &mut r)
            }
            DesignSpec::DoublyRegular => DoublyRegularDesign.sample(n, m, gamma, r),
            DesignSpec::SparseColumn => SparseColumnDesign.sample(n, m, gamma, r),
            DesignSpec::SpatiallyCoupled { bands } => {
                SpatiallyCoupledDesign { bands }.sample(n, m, gamma, r)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn multiset_run_length_encoding() {
        let q = QueryMultiset::from_slots(vec![3, 1, 3, 3, 0]);
        assert_eq!(q.distinct_agents(), &[0, 1, 3]);
        assert_eq!(q.multiplicity(3), 3);
        assert_eq!(q.multiplicity(2), 0);
        assert_eq!(q.total_slots(), 5);
        assert_eq!(q.distinct_len(), 3);
        let pairs: Vec<_> = q.iter().collect();
        assert_eq!(pairs, vec![(0, 1), (1, 1), (3, 3)]);
    }

    #[test]
    fn multiset_empty() {
        let q = QueryMultiset::from_slots(vec![]);
        assert_eq!(q.total_slots(), 0);
        assert_eq!(q.distinct_len(), 0);
    }

    #[test]
    fn one_slots_counts_multiplicity() {
        let truth = GroundTruth::from_bits(vec![true, false, true]);
        let q = QueryMultiset::from_slots(vec![0, 0, 1, 2]);
        assert_eq!(q.one_slots(&truth), 3); // agent 0 twice + agent 2 once
    }

    #[test]
    fn sample_has_exact_slot_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = PoolingGraph::sample(40, 10, 20, &mut rng);
        assert_eq!(g.n(), 40);
        assert_eq!(g.gamma(), 20);
        for q in g.queries() {
            assert_eq!(q.total_slots(), 20);
            assert!(q.distinct_agents().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn balanced_design_equalizes_degrees() {
        let mut rng = StdRng::seed_from_u64(7);
        let (n, m, gamma) = (60, 13, 25);
        let g = PoolingGraph::sample_with(n, m, gamma, Sampling::Balanced, &mut rng);
        for q in g.queries() {
            assert_eq!(q.total_slots() as usize, gamma);
        }
        let degrees = g.multi_degrees();
        let lo = (m * gamma / n) as u64;
        let hi = lo + u64::from(m * gamma % n != 0);
        for (i, &d) in degrees.iter().enumerate() {
            assert!(
                d == lo || d == hi,
                "agent {i}: degree {d} outside {{{lo}, {hi}}}"
            );
        }
        assert_eq!(degrees.iter().sum::<u64>(), (m * gamma) as u64);
    }

    #[test]
    fn balanced_design_allows_gamma_above_n() {
        // Γ > n simply deals multiple full decks into one query.
        let mut rng = StdRng::seed_from_u64(8);
        let g = PoolingGraph::sample_with(10, 3, 25, Sampling::Balanced, &mut rng);
        for q in g.queries() {
            assert_eq!(q.total_slots(), 25);
        }
        let degrees = g.multi_degrees();
        // 75 slots over 10 agents: degrees 7 or 8.
        assert!(degrees.iter().all(|&d| d == 7 || d == 8));
    }

    #[test]
    fn balanced_design_duplicates_only_at_deck_boundaries() {
        // Within one deck pass all slots are distinct; a query of Γ ≤ n
        // slots can contain an agent at most twice.
        let mut rng = StdRng::seed_from_u64(9);
        let g = PoolingGraph::sample_with(50, 40, 25, Sampling::Balanced, &mut rng);
        for q in g.queries() {
            for (_, c) in q.iter() {
                assert!(c <= 2);
            }
        }
    }

    #[test]
    fn sample_total_slots_match_degrees() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = PoolingGraph::sample(30, 8, 15, &mut rng);
        let total: u64 = g.multi_degrees().iter().sum();
        assert_eq!(total, 8 * 15);
        // Distinct degree never exceeds multi degree or m.
        let multi = g.multi_degrees();
        for (i, &d) in g.distinct_degrees().iter().enumerate() {
            assert!(d as u64 <= multi[i]);
            assert!(d <= 8);
        }
    }

    #[test]
    fn degree_concentration_matches_lemma3() {
        // E[Δᵢ] = mΓ/n; with m = 200 queries of Γ = n/2 slots each, Δ ≈ 100.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 500;
        let g = PoolingGraph::sample(n, 200, n / 2, &mut rng);
        let deg = g.multi_degrees();
        let mean = deg.iter().sum::<u64>() as f64 / n as f64;
        assert!((mean - 100.0).abs() < 1e-9); // exact: total slots fixed
        let min = *deg.iter().min().unwrap() as f64;
        let max = *deg.iter().max().unwrap() as f64;
        // Lemma 3 width ln(n)·√Δ ≈ 62 around 100.
        assert!(min > 100.0 - 65.0, "min={min}");
        assert!(max < 100.0 + 65.0, "max={max}");
    }

    #[test]
    fn distinct_degree_tracks_gamma_constant() {
        // Lemma 4/Corollary 5: E[Δ*] = γ·m with γ = 1 − e^{−1/2}.
        let mut rng = StdRng::seed_from_u64(4);
        let (n, m) = (400, 300);
        let g = PoolingGraph::sample(n, m, n / 2, &mut rng);
        let mean = g.distinct_degrees().iter().map(|&d| d as f64).sum::<f64>() / n as f64;
        let want = npd_theory::GAMMA * m as f64;
        assert!(
            (mean - want).abs() / want < 0.02,
            "mean={mean}, want={want}"
        );
    }

    #[test]
    fn measure_noiseless_equals_one_slots() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = PoolingGraph::sample(20, 6, 10, &mut rng);
        let truth = GroundTruth::sample(20, 4, &mut rng);
        let r = g.measure(&truth, &NoiseModel::Noiseless, &mut rng);
        for (j, &v) in r.iter().enumerate() {
            assert_eq!(v, g.query(j).one_slots(&truth) as f64);
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn measure_rejects_wrong_truth() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = PoolingGraph::sample(20, 2, 10, &mut rng);
        let truth = GroundTruth::sample(21, 4, &mut rng);
        g.measure(&truth, &NoiseModel::Noiseless, &mut rng);
    }

    #[test]
    fn figure1_example_matches_paper() {
        let (graph, truth) = PoolingGraph::figure1_example();
        assert_eq!(graph.n(), 7);
        assert_eq!(truth.ones(), &[0, 2, 4]);
        let mut rng = StdRng::seed_from_u64(0);
        let results = graph.measure(&truth, &NoiseModel::Noiseless, &mut rng);
        assert_eq!(results, vec![2.0, 3.0, 1.0, 1.0, 1.0]);
        // The deliberate multi-edge: agent 2 twice in query 1.
        assert_eq!(graph.query(1).multiplicity(2), 2);
    }

    #[test]
    fn csr_matches_multiset() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = PoolingGraph::sample(15, 5, 8, &mut rng);
        let a = g.to_csr();
        assert_eq!(a.rows(), 5);
        assert_eq!(a.cols(), 15);
        assert_eq!(a.sum(), (5 * 8) as f64);
        for (j, q) in g.queries().iter().enumerate() {
            for (agent, count) in q.iter() {
                assert_eq!(a.get(j, agent as usize), count as f64);
            }
        }
    }

    #[test]
    fn csr_reproduces_noiseless_measurements() {
        // A·σ must equal the noiseless measurement vector.
        let mut rng = StdRng::seed_from_u64(8);
        let g = PoolingGraph::sample(25, 7, 12, &mut rng);
        let truth = GroundTruth::sample(25, 5, &mut rng);
        let sigma: Vec<f64> = truth
            .bits()
            .iter()
            .map(|&b| if b { 1.0 } else { 0.0 })
            .collect();
        let via_matrix = g.to_csr().matvec(&sigma);
        let via_measure = g.measure(&truth, &NoiseModel::Noiseless, &mut rng);
        assert_eq!(via_matrix, via_measure);
    }

    #[test]
    fn without_replacement_slots_are_distinct() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = PoolingGraph::sample_with(50, 20, 25, Sampling::WithoutReplacement, &mut rng);
        for q in g.queries() {
            assert_eq!(q.distinct_len(), 25);
            assert!(q.iter().all(|(_, c)| c == 1));
        }
        // Multi-degree equals distinct degree for a simple design.
        let multi = g.multi_degrees();
        for (i, &d) in g.distinct_degrees().iter().enumerate() {
            assert_eq!(multi[i], d as u64);
        }
    }

    #[test]
    fn without_replacement_coverage_is_uniform() {
        // Each agent appears in a query with probability Γ/n exactly.
        let mut rng = StdRng::seed_from_u64(10);
        let (n, m, gamma) = (40usize, 2_000usize, 20usize);
        let g = PoolingGraph::sample_with(n, m, gamma, Sampling::WithoutReplacement, &mut rng);
        let expected = m as f64 * gamma as f64 / n as f64;
        for (i, &d) in g.distinct_degrees().iter().enumerate() {
            assert!(
                (d as f64 - expected).abs() < expected * 0.12,
                "agent {i}: {d} vs {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "exceeds n")]
    fn without_replacement_rejects_oversized_query() {
        let mut rng = StdRng::seed_from_u64(0);
        PoolingGraph::sample_with(5, 1, 6, Sampling::WithoutReplacement, &mut rng);
    }

    #[test]
    fn sampling_default_is_with_replacement() {
        assert_eq!(Sampling::default(), Sampling::WithReplacement);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_slot_lists_rejects_bad_agent() {
        PoolingGraph::from_slot_lists(3, vec![vec![0, 3, 1]]);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn from_slot_lists_rejects_ragged() {
        PoolingGraph::from_slot_lists(5, vec![vec![0, 1], vec![2]]);
    }

    /// FNV-1a over the full edge structure, used to pin sampler streams.
    fn graph_fingerprint(g: &PoolingGraph) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        mix(g.n() as u64);
        mix(g.query_count() as u64);
        for q in g.queries() {
            mix(u64::from(q.total_slots()));
            for (a, c) in q.iter() {
                mix(u64::from(a));
                mix(u64::from(c));
            }
        }
        h
    }

    #[test]
    fn iid_design_is_bit_identical_to_legacy_sampler() {
        // The refactor moved the paper's sampler behind `PoolingDesign`;
        // the trait path and the original `PoolingGraph::sample` must
        // consume the identical RNG stream.
        for seed in [0u64, 1, 42, 0xDEAD] {
            let legacy = PoolingGraph::sample(257, 31, 128, &mut StdRng::seed_from_u64(seed));
            let mut rng = StdRng::seed_from_u64(seed);
            let via_trait = IidDesign.sample(257, 31, 128, &mut rng);
            assert_eq!(legacy, via_trait, "seed={seed}");
            let mut rng = StdRng::seed_from_u64(seed);
            let via_spec = DesignSpec::Iid.sample(257, 31, 128, &mut rng);
            assert_eq!(legacy, via_spec, "seed={seed}");
        }
        // And the stream itself is pinned: any change to the sampler's RNG
        // call sequence (not just to the refactoring) fails here.
        let g = PoolingGraph::sample(100, 20, 50, &mut StdRng::seed_from_u64(12345));
        assert_eq!(graph_fingerprint(&g), IID_FINGERPRINT);
    }

    /// Fingerprint of `sample(100, 20, 50, seed=12345)` under the vendored
    /// xoshiro256++ StdRng, recorded when the design layer was introduced.
    const IID_FINGERPRINT: u64 = 0x1642_92EA_577C_AA40;

    #[test]
    fn doubly_regular_is_exactly_regular_and_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let (n, m, gamma) = (120usize, 37usize, 45usize);
        let g = DoublyRegularDesign.sample(n, m, gamma, &mut rng);
        let d = (m as f64 * gamma as f64 / n as f64).round() as u64;
        for (i, &deg) in g.multi_degrees().iter().enumerate() {
            assert_eq!(deg, d, "agent {i}");
        }
        let sizes: Vec<u32> = g.queries().iter().map(|q| q.total_slots()).collect();
        let (lo, hi) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
        assert!(hi - lo <= 1, "pool sizes spread {lo}..{hi}");
        // Switch repair converged at this density: all pools are duplicate
        // free.
        for q in g.queries() {
            assert!(q.iter().all(|(_, c)| c == 1));
        }
    }

    #[test]
    fn sparse_column_has_exact_column_weight() {
        let mut rng = StdRng::seed_from_u64(4);
        let (n, m, gamma) = (200usize, 64usize, 25usize);
        let g = SparseColumnDesign.sample(n, m, gamma, &mut rng);
        let d = ((m * gamma) as f64 / n as f64).round() as u64;
        for (i, &deg) in g.multi_degrees().iter().enumerate() {
            assert_eq!(deg, d, "agent {i}");
        }
        // Pools are simple (each agent at most once per pool).
        for q in g.queries() {
            assert!(q.iter().all(|(_, c)| c == 1));
        }
    }

    #[test]
    fn spatially_coupled_is_query_regular_and_banded() {
        let mut rng = StdRng::seed_from_u64(5);
        let (n, m, gamma, bands) = (160usize, 48usize, 40usize, 8usize);
        let g = SpatiallyCoupledDesign { bands }.sample(n, m, gamma, &mut rng);
        for (j, q) in g.queries().iter().enumerate() {
            assert_eq!(q.total_slots() as usize, gamma);
            // Every slot lies inside the query's band window.
            let (start, width) = band_window(n, bands, j);
            for &a in q.distinct_agents() {
                let offset = (a as usize + n - start) % n;
                assert!(offset < width, "query {j}: agent {a} outside its band");
            }
        }
        // Overlapping windows cover every agent across one band cycle.
        let covered = g.distinct_degrees().iter().filter(|&&d| d > 0).count();
        assert!(covered > n * 9 / 10, "only {covered}/{n} agents covered");
    }

    #[test]
    fn spatially_coupled_single_band_degenerates_to_iid_support() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = SpatiallyCoupledDesign { bands: 1 }.sample(50, 10, 25, &mut rng);
        let (start, width) = band_window(50, 1, 0);
        assert_eq!((start, width), (0, 50));
        assert_eq!(g.query_count(), 10);
    }

    #[test]
    fn design_spec_names_parse_and_display() {
        let specs = [
            DesignSpec::Iid,
            DesignSpec::GammaSubset,
            DesignSpec::BalancedDeck,
            DesignSpec::DoublyRegular,
            DesignSpec::SparseColumn,
            DesignSpec::spatially_coupled(),
        ];
        for spec in specs {
            assert_eq!(DesignSpec::parse(spec.name()), Some(spec));
        }
        assert_eq!(DesignSpec::parse("bogus"), None);
        assert_eq!(DesignSpec::default(), DesignSpec::Iid);
        assert_eq!(
            DesignSpec::spatially_coupled().to_string(),
            "spatially-coupled(L=4)"
        );
        assert_eq!(DesignSpec::DoublyRegular.to_string(), "doubly-regular");
    }

    #[test]
    fn design_spec_legacy_sampling_roundtrip() {
        for s in [
            Sampling::WithReplacement,
            Sampling::WithoutReplacement,
            Sampling::Balanced,
        ] {
            assert_eq!(DesignSpec::from(s).legacy_sampling(), Some(s));
        }
        assert_eq!(DesignSpec::DoublyRegular.legacy_sampling(), None);
    }

    #[test]
    fn design_profiles_are_consistent_with_samples() {
        let (n, m, gamma) = (90usize, 30usize, 30usize);
        let designs: Vec<Box<dyn PoolingDesign>> = vec![
            Box::new(IidDesign),
            Box::new(DoublyRegularDesign),
            Box::new(SparseColumnDesign),
            Box::new(SpatiallyCoupledDesign::default()),
        ];
        for (di, design) in designs.iter().enumerate() {
            let profile = design.profile(n, m, gamma);
            let mut rng = StdRng::seed_from_u64(100 + di as u64);
            let g = design.sample(n, m, gamma, &mut rng);
            let degrees = g.multi_degrees();
            if profile.agent_regular {
                let d = degrees[0];
                assert!(
                    degrees.iter().all(|&x| x == d),
                    "{}: profile claims agent regularity",
                    design.name()
                );
                assert_eq!(d as f64, profile.expected_agent_slots, "{}", design.name());
            }
            if profile.query_regular {
                assert!(
                    g.queries()
                        .iter()
                        .all(|q| q.total_slots() as f64 == profile.expected_query_slots),
                    "{}: profile claims query regularity",
                    design.name()
                );
            }
            let mean_deg = degrees.iter().sum::<u64>() as f64 / n as f64;
            assert!(
                (mean_deg - profile.expected_agent_slots).abs() <= 1.0,
                "{}: mean degree {mean_deg} vs profile {}",
                design.name(),
                profile.expected_agent_slots
            );
        }
    }

    #[test]
    fn ragged_constructor_records_nominal_gamma() {
        let g = PoolingGraph::from_ragged_slot_lists(5, 3, vec![vec![0, 1, 2], vec![3, 4]]);
        assert_eq!(g.gamma(), 3);
        assert_eq!(g.query(0).total_slots(), 3);
        assert_eq!(g.query(1).total_slots(), 2);
        assert!((g.mean_query_slots() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ragged_constructor_rejects_bad_agent() {
        PoolingGraph::from_ragged_slot_lists(3, 2, vec![vec![0, 3]]);
    }

    #[test]
    fn mean_query_slots_equals_gamma_on_regular_designs() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = PoolingGraph::sample(40, 12, 17, &mut rng);
        assert_eq!(g.mean_query_slots(), 17.0);
        let empty = PoolingGraph::from_ragged_slot_lists(4, 9, Vec::new());
        assert_eq!(empty.mean_query_slots(), 9.0);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Run-length encoding preserves the multiset exactly.
            #[test]
            fn multiset_preserves_slots(slots in proptest::collection::vec(0u32..50, 0..100)) {
                let q = QueryMultiset::from_slots(slots.clone());
                prop_assert_eq!(q.total_slots() as usize, slots.len());
                // Agents strictly ascending, counts match a manual tally.
                prop_assert!(q.distinct_agents().windows(2).all(|w| w[0] < w[1]));
                for (agent, count) in q.iter() {
                    let manual = slots.iter().filter(|&&s| s == agent).count();
                    prop_assert_eq!(count as usize, manual);
                }
            }

            /// Sampled designs have exactly Γ slots per query under both
            /// schemes, and the biadjacency total equals m·Γ.
            #[test]
            fn sampled_design_invariants(
                n in 2usize..60,
                m in 0usize..20,
                seed in 0u64..100,
                without in proptest::bool::ANY,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let gamma = (n / 2).max(1);
                let sampling = if without {
                    Sampling::WithoutReplacement
                } else {
                    Sampling::WithReplacement
                };
                let g = PoolingGraph::sample_with(n, m, gamma, sampling, &mut rng);
                for q in g.queries() {
                    prop_assert_eq!(q.total_slots() as usize, gamma);
                    if without {
                        prop_assert_eq!(q.distinct_len(), gamma);
                    }
                }
                prop_assert_eq!(g.to_csr().sum(), (m * gamma) as f64);
            }

            /// The doubly regular design is *exactly* agent-regular and its
            /// pool sizes are balanced to ±1, for arbitrary (n, m, Γ, seed)
            /// — the acceptance property of the design layer.
            #[test]
            fn doubly_regular_regularity_property(
                n in 2usize..80,
                m in 1usize..40,
                gamma_frac in 1usize..8,
                seed in 0u64..200,
            ) {
                let gamma = (n / gamma_frac).max(1);
                let mut rng = StdRng::seed_from_u64(seed);
                let g = DoublyRegularDesign.sample(n, m, gamma, &mut rng);
                let d = ((m * gamma) as f64 / n as f64).round().max(1.0) as u64;
                for &deg in &g.multi_degrees() {
                    prop_assert_eq!(deg, d);
                }
                let sizes: Vec<u32> =
                    g.queries().iter().map(|q| q.total_slots()).collect();
                let lo = *sizes.iter().min().expect("m >= 1");
                let hi = *sizes.iter().max().expect("m >= 1");
                prop_assert!(hi - lo <= 1, "pool sizes spread {}..{}", lo, hi);
                prop_assert_eq!(
                    sizes.iter().map(|&s| u64::from(s)).sum::<u64>(),
                    (n as u64) * d
                );
            }

            /// The sparse constant-column design has exact column weight
            /// min(round(mΓ/n), m) with simple pools.
            #[test]
            fn sparse_column_weight_property(
                n in 2usize..80,
                m in 1usize..40,
                gamma_frac in 1usize..8,
                seed in 0u64..200,
            ) {
                let gamma = (n / gamma_frac).max(1);
                let mut rng = StdRng::seed_from_u64(seed);
                let g = SparseColumnDesign.sample(n, m, gamma, &mut rng);
                let d = (((m * gamma) as f64 / n as f64).round().max(1.0) as u64)
                    .min(m as u64);
                for &deg in &g.multi_degrees() {
                    prop_assert_eq!(deg, d);
                }
                for q in g.queries() {
                    prop_assert!(q.iter().all(|(_, c)| c == 1));
                }
            }

            /// Noiseless measurements are always integers in [0, Γ] and
            /// channel measurements never exceed Γ.
            #[test]
            fn measurement_ranges(
                n in 4usize..40,
                k in 1usize..4,
                seed in 0u64..100,
                p in 0.0f64..0.6,
                q in 0.0f64..0.35,
            ) {
                prop_assume!(p + q < 1.0);
                let mut rng = StdRng::seed_from_u64(seed);
                let k = k.min(n);
                let truth = GroundTruth::sample(n, k, &mut rng);
                let g = PoolingGraph::sample(n, 5, n / 2, &mut rng);
                let gamma = (n / 2) as f64;
                for &r in &g.measure(&truth, &NoiseModel::Noiseless, &mut rng) {
                    prop_assert!(r >= 0.0 && r <= gamma && r.fract() == 0.0);
                }
                for &r in &g.measure(&truth, &NoiseModel::channel(p, q), &mut rng) {
                    prop_assert!(r >= 0.0 && r <= gamma);
                }
            }
        }
    }
}
