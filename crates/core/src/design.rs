//! The random pooling design: a bipartite multigraph between agents and
//! queries.
//!
//! Following the paper's model section, every query draws `Γ` agents
//! uniformly at random *with replacement* from the population, so an agent
//! can be wired to the same query multiple times (multi-edges). The
//! multigraph is stored query-major as run-length-encoded multisets, which
//! is what both the decoder (scatter query results to distinct members) and
//! the AMP baseline (biadjacency matrix) consume.

use crate::model::GroundTruth;
use crate::noise::NoiseModel;
use npd_numerics::CsrMatrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How each query's `Γ` slots are drawn from the population.
///
/// The paper uses [`WithReplacement`](Sampling::WithReplacement) (multi-
/// edges allowed), noting it “adapts techniques used in a variety of other
/// statistical inference problems”. The without-replacement design is the
/// classic alternative from the group-testing literature; it touches `Γ`
/// distinct agents per query instead of `≈ γn`, and the ablation study
/// (`repro ablations`) quantifies the resulting query savings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sampling {
    /// Uniform i.i.d. slots; agents may repeat within a query (the paper's
    /// design).
    #[default]
    WithReplacement,
    /// Uniform `Γ`-subsets; every slot is a distinct agent.
    WithoutReplacement,
    /// Doubly-balanced allocation: slots are dealt from a rotating
    /// random-permutation deck that is reshuffled whenever it runs out, so
    /// after `m` queries every agent has degree `⌊mΓ/n⌋` or `⌈mΓ/n⌉` while
    /// every query still has exactly `Γ` slots — the constant-column-weight
    /// idea of the group-testing literature (near-constant tests per item).
    ///
    /// Degree regularity is a double-edged sword here: dealing couples
    /// queries *within* a deck pass. At sparse query sizes (`Γ ≲ n/8`) the
    /// coupling is mild and the design measurably beats the paper's
    /// independent sampling under noise, but at the paper's dense `Γ = n/2`
    /// each pass deals two exactly complementary queries whose results are
    /// perfectly anti-correlated, inflating the score fluctuations of the
    /// maximum-neighborhood rule — `repro designs` quantifies both regimes.
    Balanced,
}

/// One query's multiset of agents, run-length encoded and sorted by agent
/// id.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryMultiset {
    /// Distinct agent ids, ascending.
    agents: Vec<u32>,
    /// Multiplicities, parallel to `agents`.
    counts: Vec<u32>,
    /// Total number of slots (`Σ counts = Γ`).
    total: u32,
}

impl QueryMultiset {
    /// Builds from raw slot samples (unsorted, with repetitions).
    pub fn from_slots(mut slots: Vec<u32>) -> Self {
        slots.sort_unstable();
        let mut agents = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        for &s in &slots {
            if agents.last() == Some(&s) {
                *counts.last_mut().expect("counts parallel to agents") += 1;
            } else {
                agents.push(s);
                counts.push(1);
            }
        }
        let total = slots.len() as u32;
        Self {
            agents,
            counts,
            total,
        }
    }

    /// Distinct agents in this query (`∂*a`), ascending.
    pub fn distinct_agents(&self) -> &[u32] {
        &self.agents
    }

    /// Number of distinct agents (`|∂*a|`).
    pub fn distinct_len(&self) -> usize {
        self.agents.len()
    }

    /// Total slots including multiplicities (`|∂a| = Γ`).
    pub fn total_slots(&self) -> u32 {
        self.total
    }

    /// Iterates `(agent, multiplicity)` pairs in ascending agent order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.agents.iter().copied().zip(self.counts.iter().copied())
    }

    /// Multiplicity of `agent` in this query (0 if absent).
    pub fn multiplicity(&self, agent: u32) -> u32 {
        match self.agents.binary_search(&agent) {
            Ok(i) => self.counts[i],
            Err(_) => 0,
        }
    }

    /// Number of slots that land on one-agents under `truth` — the exact
    /// noiseless measurement of this query.
    ///
    /// # Panics
    ///
    /// Panics if an agent id is out of range for `truth`.
    pub fn one_slots(&self, truth: &GroundTruth) -> u64 {
        self.iter()
            .filter(|&(a, _)| truth.is_one(a as usize))
            .map(|(_, c)| c as u64)
            .sum()
    }
}

/// The bipartite pooling multigraph: `n` agents, `m` queries of `Γ` slots
/// each.
///
/// # Examples
///
/// ```
/// use npd_core::PoolingGraph;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let graph = PoolingGraph::sample(100, 20, 50, &mut rng);
/// assert_eq!(graph.query_count(), 20);
/// assert_eq!(graph.query(0).total_slots(), 50);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolingGraph {
    n: usize,
    gamma: usize,
    queries: Vec<QueryMultiset>,
}

impl PoolingGraph {
    /// Samples the random design: `m` queries, each `Γ = gamma` slots drawn
    /// uniformly with replacement (the paper's design; see
    /// [`sample_with`](Self::sample_with) for the without-replacement
    /// variant).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `gamma == 0`, or `n > u32::MAX`.
    pub fn sample<R: Rng + ?Sized>(n: usize, m: usize, gamma: usize, rng: &mut R) -> Self {
        Self::sample_with(n, m, gamma, Sampling::WithReplacement, rng)
    }

    /// Samples the design under an explicit [`Sampling`] scheme.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `gamma == 0`, `n > u32::MAX`, or (without
    /// replacement) `gamma > n`.
    pub fn sample_with<R: Rng + ?Sized>(
        n: usize,
        m: usize,
        gamma: usize,
        sampling: Sampling,
        rng: &mut R,
    ) -> Self {
        assert!(n > 0, "PoolingGraph::sample: n must be positive");
        assert!(gamma > 0, "PoolingGraph::sample: gamma must be positive");
        assert!(n <= u32::MAX as usize, "PoolingGraph::sample: n too large");
        let queries = match sampling {
            Sampling::WithReplacement => (0..m)
                .map(|_| {
                    let slots: Vec<u32> = (0..gamma).map(|_| rng.gen_range(0..n as u32)).collect();
                    QueryMultiset::from_slots(slots)
                })
                .collect(),
            Sampling::WithoutReplacement => {
                assert!(
                    gamma <= n,
                    "PoolingGraph::sample_with: gamma={gamma} exceeds n={n} without replacement"
                );
                // Reusable partial Fisher–Yates: after each query the array
                // is still a permutation, so the next draw stays uniform.
                let mut idx: Vec<u32> = (0..n as u32).collect();
                (0..m)
                    .map(|_| {
                        for i in 0..gamma {
                            let j = rng.gen_range(i..n);
                            idx.swap(i, j);
                        }
                        QueryMultiset::from_slots(idx[..gamma].to_vec())
                    })
                    .collect()
            }
            Sampling::Balanced => {
                let mut deck: Vec<u32> = (0..n as u32).collect();
                let mut pos = n; // empty deck forces the initial shuffle
                (0..m)
                    .map(|_| {
                        let mut slots = Vec::with_capacity(gamma);
                        for _ in 0..gamma {
                            if pos == n {
                                for i in (1..n).rev() {
                                    let j = rng.gen_range(0..=i);
                                    deck.swap(i, j);
                                }
                                pos = 0;
                            }
                            slots.push(deck[pos]);
                            pos += 1;
                        }
                        QueryMultiset::from_slots(slots)
                    })
                    .collect()
            }
        };
        Self { n, gamma, queries }
    }

    /// Builds a graph from explicit slot lists (one per query).
    ///
    /// All queries must have the same number of slots; this mirrors the
    /// paper's fixed-`Γ` design.
    ///
    /// # Panics
    ///
    /// Panics if a slot references an agent `>= n` or query sizes differ.
    pub fn from_slot_lists(n: usize, slot_lists: Vec<Vec<u32>>) -> Self {
        let gamma = slot_lists.first().map_or(0, Vec::len);
        for (j, slots) in slot_lists.iter().enumerate() {
            assert_eq!(
                slots.len(),
                gamma,
                "PoolingGraph::from_slot_lists: query {j} has {} slots, expected {gamma}",
                slots.len()
            );
            for &s in slots {
                assert!(
                    (s as usize) < n,
                    "PoolingGraph::from_slot_lists: agent {s} out of range for n={n}"
                );
            }
        }
        let queries = slot_lists
            .into_iter()
            .map(QueryMultiset::from_slots)
            .collect();
        Self { n, gamma, queries }
    }

    /// The running example of Figure 1: `n = 7` agents,
    /// `σ = (1,0,1,0,1,0,0)`, five queries of three slots each whose exact
    /// sums are `(2, 3, 1, 1, 1)`.
    ///
    /// The figure does not list the edges explicitly; this instance is a
    /// minimal multigraph consistent with the printed query results (query 1
    /// contains agent 2 twice, producing the multi-edge the caption points
    /// out).
    pub fn figure1_example() -> (Self, GroundTruth) {
        let truth = GroundTruth::from_bits(vec![true, false, true, false, true, false, false]);
        let graph = Self::from_slot_lists(
            7,
            vec![
                vec![0, 1, 2], // σ₀+σ₁+σ₂ = 2
                vec![0, 2, 2], // multi-edge on agent 2: 1+1+1 = 3
                vec![2, 3, 5], // 1
                vec![3, 4, 6], // 1
                vec![4, 5, 6], // 1
            ],
        );
        (graph, truth)
    }

    /// Population size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Slots per query `Γ`.
    pub fn gamma(&self) -> usize {
        self.gamma
    }

    /// Number of queries `m`.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// The `j`-th query.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn query(&self, j: usize) -> &QueryMultiset {
        &self.queries[j]
    }

    /// Iterates all queries in id order.
    pub fn queries(&self) -> &[QueryMultiset] {
        &self.queries
    }

    /// Draws the (noisy) measurement vector `σ̂` for the given ground truth.
    pub fn measure<R: Rng + ?Sized>(
        &self,
        truth: &GroundTruth,
        noise: &NoiseModel,
        rng: &mut R,
    ) -> Vec<f64> {
        assert_eq!(
            truth.n(),
            self.n,
            "PoolingGraph::measure: ground truth size mismatch"
        );
        self.queries
            .iter()
            .map(|q| {
                let ones = q.one_slots(truth);
                let zeros = q.total_slots() as u64 - ones;
                noise.measure(ones, zeros, rng)
            })
            .collect()
    }

    /// Multi-degrees `Δᵢ` (slots per agent, counting multiplicity).
    pub fn multi_degrees(&self) -> Vec<u64> {
        let mut deg = vec![0u64; self.n];
        for q in &self.queries {
            for (a, c) in q.iter() {
                deg[a as usize] += c as u64;
            }
        }
        deg
    }

    /// Distinct degrees `Δ*ᵢ` (number of distinct queries containing each
    /// agent).
    pub fn distinct_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.n];
        for q in &self.queries {
            for &a in q.distinct_agents() {
                deg[a as usize] += 1;
            }
        }
        deg
    }

    /// The `m × n` biadjacency matrix with multiplicities as entries (the
    /// `A` consumed by AMP).
    pub fn to_csr(&self) -> CsrMatrix {
        // Queries are run-length encoded with ascending agent ids — exactly
        // CSR row form — so build directly instead of going through the
        // triplet bucket sort (an order of magnitude cheaper at paper
        // scale, where this conversion is AMP's per-run preprocessing).
        CsrMatrix::from_sorted_rows(
            self.query_count(),
            self.n,
            self.queries
                .iter()
                .map(|q| q.iter().map(|(a, c)| (a, c as f64))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn multiset_run_length_encoding() {
        let q = QueryMultiset::from_slots(vec![3, 1, 3, 3, 0]);
        assert_eq!(q.distinct_agents(), &[0, 1, 3]);
        assert_eq!(q.multiplicity(3), 3);
        assert_eq!(q.multiplicity(2), 0);
        assert_eq!(q.total_slots(), 5);
        assert_eq!(q.distinct_len(), 3);
        let pairs: Vec<_> = q.iter().collect();
        assert_eq!(pairs, vec![(0, 1), (1, 1), (3, 3)]);
    }

    #[test]
    fn multiset_empty() {
        let q = QueryMultiset::from_slots(vec![]);
        assert_eq!(q.total_slots(), 0);
        assert_eq!(q.distinct_len(), 0);
    }

    #[test]
    fn one_slots_counts_multiplicity() {
        let truth = GroundTruth::from_bits(vec![true, false, true]);
        let q = QueryMultiset::from_slots(vec![0, 0, 1, 2]);
        assert_eq!(q.one_slots(&truth), 3); // agent 0 twice + agent 2 once
    }

    #[test]
    fn sample_has_exact_slot_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = PoolingGraph::sample(40, 10, 20, &mut rng);
        assert_eq!(g.n(), 40);
        assert_eq!(g.gamma(), 20);
        for q in g.queries() {
            assert_eq!(q.total_slots(), 20);
            assert!(q.distinct_agents().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn balanced_design_equalizes_degrees() {
        let mut rng = StdRng::seed_from_u64(7);
        let (n, m, gamma) = (60, 13, 25);
        let g = PoolingGraph::sample_with(n, m, gamma, Sampling::Balanced, &mut rng);
        for q in g.queries() {
            assert_eq!(q.total_slots() as usize, gamma);
        }
        let degrees = g.multi_degrees();
        let lo = (m * gamma / n) as u64;
        let hi = lo + u64::from(m * gamma % n != 0);
        for (i, &d) in degrees.iter().enumerate() {
            assert!(
                d == lo || d == hi,
                "agent {i}: degree {d} outside {{{lo}, {hi}}}"
            );
        }
        assert_eq!(degrees.iter().sum::<u64>(), (m * gamma) as u64);
    }

    #[test]
    fn balanced_design_allows_gamma_above_n() {
        // Γ > n simply deals multiple full decks into one query.
        let mut rng = StdRng::seed_from_u64(8);
        let g = PoolingGraph::sample_with(10, 3, 25, Sampling::Balanced, &mut rng);
        for q in g.queries() {
            assert_eq!(q.total_slots(), 25);
        }
        let degrees = g.multi_degrees();
        // 75 slots over 10 agents: degrees 7 or 8.
        assert!(degrees.iter().all(|&d| d == 7 || d == 8));
    }

    #[test]
    fn balanced_design_duplicates_only_at_deck_boundaries() {
        // Within one deck pass all slots are distinct; a query of Γ ≤ n
        // slots can contain an agent at most twice.
        let mut rng = StdRng::seed_from_u64(9);
        let g = PoolingGraph::sample_with(50, 40, 25, Sampling::Balanced, &mut rng);
        for q in g.queries() {
            for (_, c) in q.iter() {
                assert!(c <= 2);
            }
        }
    }

    #[test]
    fn sample_total_slots_match_degrees() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = PoolingGraph::sample(30, 8, 15, &mut rng);
        let total: u64 = g.multi_degrees().iter().sum();
        assert_eq!(total, 8 * 15);
        // Distinct degree never exceeds multi degree or m.
        let multi = g.multi_degrees();
        for (i, &d) in g.distinct_degrees().iter().enumerate() {
            assert!(d as u64 <= multi[i]);
            assert!(d <= 8);
        }
    }

    #[test]
    fn degree_concentration_matches_lemma3() {
        // E[Δᵢ] = mΓ/n; with m = 200 queries of Γ = n/2 slots each, Δ ≈ 100.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 500;
        let g = PoolingGraph::sample(n, 200, n / 2, &mut rng);
        let deg = g.multi_degrees();
        let mean = deg.iter().sum::<u64>() as f64 / n as f64;
        assert!((mean - 100.0).abs() < 1e-9); // exact: total slots fixed
        let min = *deg.iter().min().unwrap() as f64;
        let max = *deg.iter().max().unwrap() as f64;
        // Lemma 3 width ln(n)·√Δ ≈ 62 around 100.
        assert!(min > 100.0 - 65.0, "min={min}");
        assert!(max < 100.0 + 65.0, "max={max}");
    }

    #[test]
    fn distinct_degree_tracks_gamma_constant() {
        // Lemma 4/Corollary 5: E[Δ*] = γ·m with γ = 1 − e^{−1/2}.
        let mut rng = StdRng::seed_from_u64(4);
        let (n, m) = (400, 300);
        let g = PoolingGraph::sample(n, m, n / 2, &mut rng);
        let mean = g.distinct_degrees().iter().map(|&d| d as f64).sum::<f64>() / n as f64;
        let want = npd_theory::GAMMA * m as f64;
        assert!(
            (mean - want).abs() / want < 0.02,
            "mean={mean}, want={want}"
        );
    }

    #[test]
    fn measure_noiseless_equals_one_slots() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = PoolingGraph::sample(20, 6, 10, &mut rng);
        let truth = GroundTruth::sample(20, 4, &mut rng);
        let r = g.measure(&truth, &NoiseModel::Noiseless, &mut rng);
        for (j, &v) in r.iter().enumerate() {
            assert_eq!(v, g.query(j).one_slots(&truth) as f64);
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn measure_rejects_wrong_truth() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = PoolingGraph::sample(20, 2, 10, &mut rng);
        let truth = GroundTruth::sample(21, 4, &mut rng);
        g.measure(&truth, &NoiseModel::Noiseless, &mut rng);
    }

    #[test]
    fn figure1_example_matches_paper() {
        let (graph, truth) = PoolingGraph::figure1_example();
        assert_eq!(graph.n(), 7);
        assert_eq!(truth.ones(), &[0, 2, 4]);
        let mut rng = StdRng::seed_from_u64(0);
        let results = graph.measure(&truth, &NoiseModel::Noiseless, &mut rng);
        assert_eq!(results, vec![2.0, 3.0, 1.0, 1.0, 1.0]);
        // The deliberate multi-edge: agent 2 twice in query 1.
        assert_eq!(graph.query(1).multiplicity(2), 2);
    }

    #[test]
    fn csr_matches_multiset() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = PoolingGraph::sample(15, 5, 8, &mut rng);
        let a = g.to_csr();
        assert_eq!(a.rows(), 5);
        assert_eq!(a.cols(), 15);
        assert_eq!(a.sum(), (5 * 8) as f64);
        for (j, q) in g.queries().iter().enumerate() {
            for (agent, count) in q.iter() {
                assert_eq!(a.get(j, agent as usize), count as f64);
            }
        }
    }

    #[test]
    fn csr_reproduces_noiseless_measurements() {
        // A·σ must equal the noiseless measurement vector.
        let mut rng = StdRng::seed_from_u64(8);
        let g = PoolingGraph::sample(25, 7, 12, &mut rng);
        let truth = GroundTruth::sample(25, 5, &mut rng);
        let sigma: Vec<f64> = truth
            .bits()
            .iter()
            .map(|&b| if b { 1.0 } else { 0.0 })
            .collect();
        let via_matrix = g.to_csr().matvec(&sigma);
        let via_measure = g.measure(&truth, &NoiseModel::Noiseless, &mut rng);
        assert_eq!(via_matrix, via_measure);
    }

    #[test]
    fn without_replacement_slots_are_distinct() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = PoolingGraph::sample_with(50, 20, 25, Sampling::WithoutReplacement, &mut rng);
        for q in g.queries() {
            assert_eq!(q.distinct_len(), 25);
            assert!(q.iter().all(|(_, c)| c == 1));
        }
        // Multi-degree equals distinct degree for a simple design.
        let multi = g.multi_degrees();
        for (i, &d) in g.distinct_degrees().iter().enumerate() {
            assert_eq!(multi[i], d as u64);
        }
    }

    #[test]
    fn without_replacement_coverage_is_uniform() {
        // Each agent appears in a query with probability Γ/n exactly.
        let mut rng = StdRng::seed_from_u64(10);
        let (n, m, gamma) = (40usize, 2_000usize, 20usize);
        let g = PoolingGraph::sample_with(n, m, gamma, Sampling::WithoutReplacement, &mut rng);
        let expected = m as f64 * gamma as f64 / n as f64;
        for (i, &d) in g.distinct_degrees().iter().enumerate() {
            assert!(
                (d as f64 - expected).abs() < expected * 0.12,
                "agent {i}: {d} vs {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "exceeds n")]
    fn without_replacement_rejects_oversized_query() {
        let mut rng = StdRng::seed_from_u64(0);
        PoolingGraph::sample_with(5, 1, 6, Sampling::WithoutReplacement, &mut rng);
    }

    #[test]
    fn sampling_default_is_with_replacement() {
        assert_eq!(Sampling::default(), Sampling::WithReplacement);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_slot_lists_rejects_bad_agent() {
        PoolingGraph::from_slot_lists(3, vec![vec![0, 3, 1]]);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn from_slot_lists_rejects_ragged() {
        PoolingGraph::from_slot_lists(5, vec![vec![0, 1], vec![2]]);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Run-length encoding preserves the multiset exactly.
            #[test]
            fn multiset_preserves_slots(slots in proptest::collection::vec(0u32..50, 0..100)) {
                let q = QueryMultiset::from_slots(slots.clone());
                prop_assert_eq!(q.total_slots() as usize, slots.len());
                // Agents strictly ascending, counts match a manual tally.
                prop_assert!(q.distinct_agents().windows(2).all(|w| w[0] < w[1]));
                for (agent, count) in q.iter() {
                    let manual = slots.iter().filter(|&&s| s == agent).count();
                    prop_assert_eq!(count as usize, manual);
                }
            }

            /// Sampled designs have exactly Γ slots per query under both
            /// schemes, and the biadjacency total equals m·Γ.
            #[test]
            fn sampled_design_invariants(
                n in 2usize..60,
                m in 0usize..20,
                seed in 0u64..100,
                without in proptest::bool::ANY,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let gamma = (n / 2).max(1);
                let sampling = if without {
                    Sampling::WithoutReplacement
                } else {
                    Sampling::WithReplacement
                };
                let g = PoolingGraph::sample_with(n, m, gamma, sampling, &mut rng);
                for q in g.queries() {
                    prop_assert_eq!(q.total_slots() as usize, gamma);
                    if without {
                        prop_assert_eq!(q.distinct_len(), gamma);
                    }
                }
                prop_assert_eq!(g.to_csr().sum(), (m * gamma) as f64);
            }

            /// Noiseless measurements are always integers in [0, Γ] and
            /// channel measurements never exceed Γ.
            #[test]
            fn measurement_ranges(
                n in 4usize..40,
                k in 1usize..4,
                seed in 0u64..100,
                p in 0.0f64..0.6,
                q in 0.0f64..0.35,
            ) {
                prop_assume!(p + q < 1.0);
                let mut rng = StdRng::seed_from_u64(seed);
                let k = k.min(n);
                let truth = GroundTruth::sample(n, k, &mut rng);
                let g = PoolingGraph::sample(n, 5, n / 2, &mut rng);
                let gamma = (n / 2) as f64;
                for &r in &g.measure(&truth, &NoiseModel::Noiseless, &mut rng) {
                    prop_assert!(r >= 0.0 && r <= gamma && r.fract() == 0.0);
                }
                for &r in &g.measure(&truth, &NoiseModel::channel(p, q), &mut rng) {
                    prop_assert!(r >= 0.0 && r <= gamma);
                }
            }
        }
    }
}
