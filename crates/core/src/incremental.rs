//! Query-by-query simulation for the *required number of queries*.
//!
//! Figures 2–5 of the paper report, per configuration, the number of queries
//! after which Algorithm 1 first reconstructs the ground truth exactly with
//! a clear score separation. The paper's implementation simulates “one query
//! node after the other in a sequential manner”, updating `Δ*` and `Ψ` after
//! each (Section V, “Implementation Details”).
//!
//! [`IncrementalSim`] reproduces this in `O(n)` memory: the pooling graph is
//! never materialized — each query contributes its (noisy) result to the
//! per-agent accumulators and is then forgotten. This is what makes the
//! `n = 10⁵` sweeps of Figures 2–5 tractable.

use crate::design::{band_window, DesignSpec, Sampling};
use crate::model::GroundTruth;
use crate::noise::NoiseModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Outcome of a successful required-queries search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequiredQueries {
    /// The first query count with exact reconstruction and positive score
    /// separation.
    pub queries: usize,
    /// The separation margin at that point.
    pub separation: f64,
}

/// Error: the search exhausted its query budget without separation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// The budget that was spent.
    pub max_queries: usize,
}

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no exact reconstruction within {} queries",
            self.max_queries
        )
    }
}

impl std::error::Error for BudgetExhausted {}

/// The incremental sampler arm a [`DesignSpec`] maps to (see
/// [`IncrementalSim::with_design`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SamplerKind {
    /// I.i.d. uniform slots with replacement (the paper's design).
    Iid,
    /// Uniform Γ-subset per query.
    Subset,
    /// Rotating-deck balanced dealing (the anytime doubly-regular form).
    Deck,
    /// Bernoulli pools: size `Bin(n, Γ/n)`, then a uniform subset — the
    /// query-major marginal of the constant-column batch design (free pool
    /// sizes, simple entries, concentrated column weights).
    Bernoulli,
    /// Band-cycling windowed draws (spatially coupled).
    Banded { bands: usize },
}

impl SamplerKind {
    fn for_design(design: DesignSpec) -> Self {
        match design {
            DesignSpec::Iid => SamplerKind::Iid,
            DesignSpec::GammaSubset => SamplerKind::Subset,
            DesignSpec::BalancedDeck | DesignSpec::DoublyRegular => SamplerKind::Deck,
            DesignSpec::SparseColumn => SamplerKind::Bernoulli,
            DesignSpec::SpatiallyCoupled { bands } => SamplerKind::Banded { bands },
        }
    }
}

/// Incremental simulation of Algorithm 1 under a fixed ground truth,
/// adding one query at a time.
///
/// # Examples
///
/// ```
/// use npd_core::{IncrementalSim, NoiseModel};
///
/// let mut sim = IncrementalSim::new(500, 5, NoiseModel::z_channel(0.1), 42);
/// let outcome = sim.required_queries(5_000).expect("separates well below budget");
/// assert!(outcome.queries > 0);
/// assert!(outcome.separation > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalSim {
    k: usize,
    gamma: usize,
    noise: NoiseModel,
    truth: GroundTruth,
    /// Neighborhood sums `Ψᵢ`.
    psi: Vec<f64>,
    /// Distinct degrees `Δ*ᵢ`.
    distinct: Vec<u32>,
    /// Multi-degrees `Δᵢ` (slots counting multiplicity).
    multi: Vec<u64>,
    /// Per-agent totals `Σ_{j∈∂*i} |∂aⱼ|` (equals `Δ*ᵢ·Γ` for the
    /// query-regular samplers; tracked explicitly for Bernoulli pools).
    slot_sum: Vec<u64>,
    /// Per-slot one-read rate of the second neighborhood (see
    /// [`crate::Centering::NoiseAware`]).
    slot_rate: f64,
    /// Generation stamps for O(Γ) per-query dedup without allocation.
    stamp: Vec<u32>,
    stamp_gen: u32,
    /// Distinct agents of the query being processed (scratch).
    scratch: Vec<u32>,
    sampler: SamplerKind,
    /// Reusable permutation: partial Fisher–Yates scratch for
    /// without-replacement draws, rotating deck for the balanced design.
    perm: Vec<u32>,
    /// Next undealt deck position (balanced design only).
    deck_pos: usize,
    queries_added: usize,
    rng: StdRng,
}

impl IncrementalSim {
    /// Creates a simulation over `n` agents with `k` one-agents and the
    /// paper's query size `Γ = n/2`.
    ///
    /// The ground truth is sampled from `seed`; all subsequent noise and
    /// pooling randomness comes from the same seeded stream, so a
    /// `(config, seed)` pair identifies a run exactly.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `k` is not in `[1, n]`.
    pub fn new(n: usize, k: usize, noise: NoiseModel, seed: u64) -> Self {
        Self::with_query_size(n, k, n / 2, noise, seed)
    }

    /// Creates a simulation with an explicit query size `Γ`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `k ∉ [1, n]`, or `gamma == 0`.
    pub fn with_query_size(n: usize, k: usize, gamma: usize, noise: NoiseModel, seed: u64) -> Self {
        Self::with_options(n, k, gamma, noise, Sampling::WithReplacement, seed)
    }

    /// Creates a simulation with an explicit query size and sampling
    /// scheme.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `k ∉ [1, n]`, `gamma == 0`, or (without
    /// replacement) `gamma > n`.
    pub fn with_options(
        n: usize,
        k: usize,
        gamma: usize,
        noise: NoiseModel,
        sampling: Sampling,
        seed: u64,
    ) -> Self {
        Self::with_design(n, k, gamma, noise, DesignSpec::from(sampling), seed)
    }

    /// Creates a simulation with an explicit query size and pooling design.
    ///
    /// Every [`DesignSpec`] has an *incremental* (anytime) form here, since
    /// the required-queries experiment grows the design one query at a
    /// time:
    ///
    /// * [`DesignSpec::Iid`] and [`DesignSpec::GammaSubset`] sample each
    ///   query independently, exactly like the batch samplers.
    /// * [`DesignSpec::BalancedDeck`] and [`DesignSpec::DoublyRegular`]
    ///   deal from the rotating deck — the anytime doubly-balanced
    ///   allocation whose agent degrees stay within ±1 at *every* query
    ///   prefix. (The batch doubly-regular construction fixes `m` up
    ///   front, which has no incremental analogue; the deck is the
    ///   standard online counterpart.)
    /// * [`DesignSpec::SparseColumn`] draws Bernoulli pools — size
    ///   `Bin(n, Γ/n)` then a uniform subset, the query-major marginal of
    ///   the batch constant-column design: free pool sizes, simple
    ///   entries, concentrated (not exact) column weights.
    /// * [`DesignSpec::SpatiallyCoupled`] cycles query `t` through band
    ///   `t mod L`, drawing slots from the band's window exactly like the
    ///   batch sampler.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `k ∉ [1, n]`, `gamma == 0`, or (Γ-subset)
    /// `gamma > n`.
    pub fn with_design(
        n: usize,
        k: usize,
        gamma: usize,
        noise: NoiseModel,
        design: DesignSpec,
        seed: u64,
    ) -> Self {
        assert!(n >= 2, "IncrementalSim: n={n} must be at least 2");
        assert!(
            (1..=n).contains(&k),
            "IncrementalSim: k={k} must be in [1, {n}]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let truth = GroundTruth::sample(n, k, &mut rng);
        Self::from_parts(truth, gamma, noise, design, rng)
    }

    /// Creates a simulation over an *externally supplied* ground truth.
    ///
    /// This is the entry point for structured and temporal population
    /// models (the `npd-workloads` crate): the workload samples or evolves
    /// the hidden assignment, and the simulation streams queries against
    /// it. Unlike the seed-sampling constructors, `k = 0` is permitted — a
    /// drifting population may momentarily hold no one-agents.
    ///
    /// All pooling and noise randomness still comes from `seed` alone, so
    /// `(truth, config, seed)` identifies the query stream exactly.
    ///
    /// # Panics
    ///
    /// Panics if `truth.n() < 2`, `gamma == 0`, or (Γ-subset) `gamma > n`.
    pub fn with_truth(
        truth: GroundTruth,
        gamma: usize,
        noise: NoiseModel,
        design: DesignSpec,
        seed: u64,
    ) -> Self {
        Self::from_parts(truth, gamma, noise, design, StdRng::seed_from_u64(seed))
    }

    /// Replaces the ground truth mid-stream (population drift).
    ///
    /// The per-agent accumulators are deliberately **kept**: queries
    /// already streamed were measured against the truth current at their
    /// time, so after a drift step the score landscape mixes fresh and
    /// stale evidence — exactly the tracking problem the temporal
    /// workloads measure. [`IncrementalSim::score`] and
    /// [`IncrementalSim::separation`] evaluate against the new truth from
    /// the next call on.
    ///
    /// # Panics
    ///
    /// Panics if `truth.n()` differs from the simulation's `n`.
    pub fn set_truth(&mut self, truth: GroundTruth) {
        assert_eq!(
            truth.n(),
            self.n(),
            "IncrementalSim::set_truth: population size mismatch"
        );
        self.k = truth.k();
        self.slot_rate = crate::greedy::second_neighborhood_rate(self.n(), self.k, &self.noise);
        self.truth = truth;
    }

    fn from_parts(
        truth: GroundTruth,
        gamma: usize,
        noise: NoiseModel,
        design: DesignSpec,
        rng: StdRng,
    ) -> Self {
        let n = truth.n();
        let k = truth.k();
        assert!(n >= 2, "IncrementalSim: n={n} must be at least 2");
        assert!(gamma > 0, "IncrementalSim: gamma must be positive");
        let sampler = SamplerKind::for_design(design);
        if sampler == SamplerKind::Subset {
            assert!(
                gamma <= n,
                "IncrementalSim: gamma={gamma} exceeds n={n} without replacement"
            );
        }
        let slot_rate = crate::greedy::second_neighborhood_rate(n, k, &noise);
        let perm = match sampler {
            SamplerKind::Iid | SamplerKind::Banded { .. } => Vec::new(),
            SamplerKind::Subset | SamplerKind::Deck | SamplerKind::Bernoulli => {
                (0..n as u32).collect()
            }
        };
        Self {
            k,
            gamma,
            noise,
            truth,
            psi: vec![0.0; n],
            distinct: vec![0; n],
            multi: vec![0; n],
            slot_sum: vec![0; n],
            slot_rate,
            stamp: vec![u32::MAX; n],
            stamp_gen: 0,
            scratch: Vec::with_capacity(gamma),
            sampler,
            perm,
            deck_pos: n,
            queries_added: 0,
            rng,
        }
    }

    /// Population size.
    pub fn n(&self) -> usize {
        self.psi.len()
    }

    /// Number of one-agents.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Queries simulated so far.
    pub fn queries_added(&self) -> usize {
        self.queries_added
    }

    /// The hidden assignment being reconstructed.
    pub fn truth(&self) -> &GroundTruth {
        &self.truth
    }

    /// Neighborhood sum `Ψᵢ` accumulated so far.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn psi(&self, i: usize) -> f64 {
        self.psi[i]
    }

    /// Distinct degree `Δ*ᵢ` accumulated so far.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn distinct_degree(&self, i: usize) -> u32 {
        self.distinct[i]
    }

    /// Multi-degree `Δᵢ` accumulated so far.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn multi_degree(&self, i: usize) -> u64 {
        self.multi[i]
    }

    /// Samples one query, measures it under the noise model and folds the
    /// result into the per-agent accumulators.
    pub fn add_query(&mut self) {
        let n = self.n();
        self.stamp_gen = self.stamp_gen.wrapping_add(1);
        // A stamp generation of 0 after wrap could collide with stale
        // entries; refresh the array on wrap (happens after 2³² queries).
        if self.stamp_gen == 0 {
            self.stamp.fill(u32::MAX);
            self.stamp_gen = 1;
        }
        self.scratch.clear();
        let mut one_slots = 0u64;
        let mut total_slots = self.gamma as u64;
        match self.sampler {
            SamplerKind::Iid => {
                for _ in 0..self.gamma {
                    let a = self.rng.gen_range(0..n);
                    if self.truth.is_one(a) {
                        one_slots += 1;
                    }
                    self.multi[a] += 1;
                    if self.stamp[a] != self.stamp_gen {
                        self.stamp[a] = self.stamp_gen;
                        self.scratch.push(a as u32);
                    }
                }
            }
            SamplerKind::Subset => {
                // Reusable partial Fisher–Yates; the array stays a
                // permutation between queries, so each draw is a uniform
                // Γ-subset.
                for i in 0..self.gamma {
                    let j = self.rng.gen_range(i..n);
                    self.perm.swap(i, j);
                    let a = self.perm[i] as usize;
                    if self.truth.is_one(a) {
                        one_slots += 1;
                    }
                    self.multi[a] += 1;
                    self.scratch.push(a as u32);
                }
            }
            SamplerKind::Deck => {
                // Rotating deck: deal Γ slots, reshuffling the full
                // permutation whenever it is exhausted, so degrees stay
                // within one of each other at all times.
                for _ in 0..self.gamma {
                    if self.deck_pos >= n {
                        for i in (1..n).rev() {
                            let j = self.rng.gen_range(0..=i);
                            self.perm.swap(i, j);
                        }
                        self.deck_pos = 0;
                    }
                    let a = self.perm[self.deck_pos] as usize;
                    self.deck_pos += 1;
                    if self.truth.is_one(a) {
                        one_slots += 1;
                    }
                    self.multi[a] += 1;
                    if self.stamp[a] != self.stamp_gen {
                        self.stamp[a] = self.stamp_gen;
                        self.scratch.push(a as u32);
                    }
                }
            }
            SamplerKind::Bernoulli => {
                // Pool size first (Bin(n, Γ/n)), then a uniform subset via
                // the reusable partial Fisher–Yates: the query-major
                // marginal of the batch constant-column design.
                let p = (self.gamma as f64 / n as f64).min(1.0);
                let size = npd_numerics::rng::binomial(&mut self.rng, n as u64, p) as usize;
                total_slots = size as u64;
                for i in 0..size {
                    let j = self.rng.gen_range(i..n);
                    self.perm.swap(i, j);
                    let a = self.perm[i] as usize;
                    if self.truth.is_one(a) {
                        one_slots += 1;
                    }
                    self.multi[a] += 1;
                    self.scratch.push(a as u32);
                }
            }
            SamplerKind::Banded { bands } => {
                // Query t draws from band t mod L's window (same geometry
                // as the batch spatially-coupled sampler).
                let (start, width) = band_window(n, bands, self.queries_added);
                for _ in 0..self.gamma {
                    let a = (start + self.rng.gen_range(0..width)) % n;
                    if self.truth.is_one(a) {
                        one_slots += 1;
                    }
                    self.multi[a] += 1;
                    if self.stamp[a] != self.stamp_gen {
                        self.stamp[a] = self.stamp_gen;
                        self.scratch.push(a as u32);
                    }
                }
            }
        }
        let zero_slots = total_slots - one_slots;
        let result = self.noise.measure(one_slots, zero_slots, &mut self.rng);
        for &a in &self.scratch {
            self.psi[a as usize] += result;
            self.distinct[a as usize] += 1;
            self.slot_sum[a as usize] += total_slots;
        }
        self.queries_added += 1;
    }

    /// The greedy score of agent `i` with the noise-aware centering
    /// `Ψᵢ − (Δ*ᵢ·Γ − Δᵢ)·(q + k(1−p−q)/(n−1))` (see
    /// [`crate::Centering`]).
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn score(&self, i: usize) -> f64 {
        let slots = (self.slot_sum[i] - self.multi[i]) as f64;
        self.psi[i] - slots * self.slot_rate
    }

    /// All scores as a fresh vector.
    pub fn scores(&self) -> Vec<f64> {
        (0..self.n()).map(|i| self.score(i)).collect()
    }

    /// Current separation `min_{σ=1} score − max_{σ=0} score`.
    pub fn separation(&self) -> f64 {
        let mut min_one = f64::INFINITY;
        let mut max_zero = f64::NEG_INFINITY;
        for i in 0..self.n() {
            let s = self.score(i);
            if self.truth.is_one(i) {
                if s < min_one {
                    min_one = s;
                }
            } else if s > max_zero {
                max_zero = s;
            }
        }
        if min_one == f64::INFINITY || max_zero == f64::NEG_INFINITY {
            f64::INFINITY
        } else {
            min_one - max_zero
        }
    }

    /// Whether the current scores reconstruct the truth exactly with a
    /// strictly positive margin (the paper's termination check).
    pub fn is_separated(&self) -> bool {
        self.separation() > 0.0
    }

    /// Adds queries until separation, returning the required count.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] if `max_queries` are added without
    /// reaching separation (Theorem 2 predicts this outcome for
    /// `λ² = Ω(m)` query noise).
    pub fn required_queries(
        &mut self,
        max_queries: usize,
    ) -> Result<RequiredQueries, BudgetExhausted> {
        while self.queries_added < max_queries {
            self.add_query();
            let sep = self.separation();
            if sep > 0.0 {
                return Ok(RequiredQueries {
                    queries: self.queries_added,
                    separation: sep,
                });
            }
        }
        Err(BudgetExhausted { max_queries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_queries_noiseless_matches_order_of_theory() {
        let mut sim = IncrementalSim::new(1_000, 6, NoiseModel::Noiseless, 7);
        let out = sim.required_queries(5_000).expect("separates");
        // Theorem 1 (noiseless): ≈ 4γ(1.5)²·k·ln n ≈ 245 for n=1000, k=6.
        // Empirical thresholds sit below the worst-case bound; accept a wide
        // bracket that still pins the order of magnitude.
        assert!(out.queries > 20, "queries={}", out.queries);
        assert!(out.queries < 1_200, "queries={}", out.queries);
        assert!(out.separation > 0.0);
    }

    #[test]
    fn noisier_channels_need_more_queries() {
        // Medians over a few seeds to damp variance; p = 0.5 must require
        // clearly more queries than p = 0.1 (Figure 2's vertical ordering).
        let median_for = |p: f64| {
            let mut xs: Vec<usize> = (0..5)
                .map(|seed| {
                    let mut sim = IncrementalSim::new(600, 5, NoiseModel::z_channel(p), 100 + seed);
                    sim.required_queries(20_000).expect("separates").queries
                })
                .collect();
            xs.sort_unstable();
            xs[2]
        };
        let m_low = median_for(0.1);
        let m_high = median_for(0.5);
        assert!(m_high > m_low, "p=0.5 needed {m_high} ≤ p=0.1's {m_low}");
    }

    #[test]
    fn gaussian_noise_increases_required_queries() {
        let median_for = |lambda: f64| {
            let mut xs: Vec<usize> = (0..5)
                .map(|seed| {
                    let mut sim =
                        IncrementalSim::new(600, 5, NoiseModel::gaussian(lambda), 200 + seed);
                    sim.required_queries(20_000).expect("separates").queries
                })
                .collect();
            xs.sort_unstable();
            xs[2]
        };
        assert!(median_for(2.0) > median_for(0.0));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // One query can never separate k=5 ones in a 100-agent population.
        let mut sim = IncrementalSim::new(100, 5, NoiseModel::Noiseless, 1);
        let err = sim.required_queries(1).unwrap_err();
        assert_eq!(err.max_queries, 1);
        assert!(err.to_string().contains("no exact reconstruction"));
    }

    #[test]
    fn accumulators_match_a_single_query() {
        let mut sim = IncrementalSim::new(50, 3, NoiseModel::Noiseless, 3);
        sim.add_query();
        assert_eq!(sim.queries_added(), 1);
        // Every touched agent got the same result value; untouched agents
        // have Δ* = 0 and Ψ = 0. The match over the distinct degree is
        // exhaustive: `add_query` bumps `distinct[i]` at most once per
        // query (the stamp-generation dedup in every sampling arm pushes
        // each agent into `scratch` at most once), so after exactly one
        // query the invariant Δ*ᵢ ≤ queries_added pins the degree to
        // {0, 1} — the `2..` arm is unreachable by construction.
        let mut seen_value = None;
        for i in 0..50 {
            match sim.distinct[i] {
                0 => assert_eq!(sim.psi[i], 0.0),
                1 => {
                    let v = sim.psi[i];
                    if let Some(prev) = seen_value {
                        assert_eq!(v, prev);
                    }
                    seen_value = Some(v);
                }
                2.. => unreachable!(
                    "Δ*ᵢ ≤ queries_added: the per-query stamp dedup adds each \
                     agent to a query's distinct set at most once"
                ),
            }
        }
        assert!(seen_value.is_some());
    }

    #[test]
    fn scores_and_separation_consistency() {
        let mut sim = IncrementalSim::new(200, 4, NoiseModel::Noiseless, 5);
        for _ in 0..400 {
            sim.add_query();
        }
        let scores = sim.scores();
        let sep_direct = crate::evaluate::separation(&scores, sim.truth());
        assert_eq!(sim.separation(), sep_direct);
        if sim.is_separated() {
            // Top-k of the scores must equal the truth.
            let est = crate::greedy::Estimate::from_scores(scores, sim.k());
            assert!(crate::evaluate::exact_recovery(&est, sim.truth()));
        }
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed| {
            let mut sim = IncrementalSim::new(300, 4, NoiseModel::z_channel(0.2), seed);
            sim.required_queries(10_000).unwrap().queries
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn custom_query_size_is_respected() {
        let mut sim = IncrementalSim::with_query_size(100, 2, 10, NoiseModel::Noiseless, 11);
        sim.add_query();
        let total: u32 = sim.distinct.iter().sum();
        assert!(total <= 10);
    }

    #[test]
    #[should_panic(expected = "k=0")]
    fn rejects_zero_k() {
        IncrementalSim::new(10, 0, NoiseModel::Noiseless, 0);
    }

    #[test]
    fn without_replacement_needs_fewer_queries() {
        // A Γ-subset query touches Γ = n/2 distinct agents instead of
        // ≈ 0.39·n, so information accrues faster; the ablation behind
        // `repro ablations`. Compare medians over 5 seeds.
        use crate::design::Sampling;
        let median_for = |sampling: Sampling| {
            let mut xs: Vec<usize> = (0..5)
                .map(|seed| {
                    let mut sim = IncrementalSim::with_options(
                        600,
                        5,
                        300,
                        NoiseModel::z_channel(0.1),
                        sampling,
                        700 + seed,
                    );
                    sim.required_queries(20_000).expect("separates").queries
                })
                .collect();
            xs.sort_unstable();
            xs[2]
        };
        let with = median_for(Sampling::WithReplacement);
        let without = median_for(Sampling::WithoutReplacement);
        assert!(
            without < with,
            "without-replacement median {without} not below with-replacement {with}"
        );
    }

    #[test]
    fn without_replacement_multi_equals_distinct() {
        use crate::design::Sampling;
        let mut sim = IncrementalSim::with_options(
            100,
            3,
            50,
            NoiseModel::Noiseless,
            Sampling::WithoutReplacement,
            3,
        );
        for _ in 0..10 {
            sim.add_query();
        }
        for i in 0..100 {
            assert_eq!(sim.multi[i], sim.distinct[i] as u64);
        }
    }

    #[test]
    fn balanced_sampling_keeps_degrees_within_one() {
        let mut sim =
            IncrementalSim::with_options(60, 4, 25, NoiseModel::Noiseless, Sampling::Balanced, 42);
        for _ in 0..13 {
            sim.add_query();
        }
        let degrees: Vec<u64> = (0..60).map(|i| sim.multi_degree(i)).collect();
        let lo = 13 * 25 / 60;
        assert!(degrees.iter().all(|&d| d == lo || d == lo + 1));
        assert_eq!(degrees.iter().sum::<u64>(), 13 * 25);
    }

    #[test]
    fn bernoulli_pools_have_free_sizes_and_concentrated_columns() {
        // The sparse-column incremental analogue: pool sizes fluctuate
        // around Γ (they are Binomial), entries are simple, and column
        // weights concentrate around mΓ/n without being exactly equal.
        let (n, gamma, m) = (200usize, 50usize, 120usize);
        let mut sim = IncrementalSim::with_design(
            n,
            3,
            gamma,
            NoiseModel::Noiseless,
            DesignSpec::SparseColumn,
            17,
        );
        for _ in 0..m {
            sim.add_query();
        }
        // Simple design: multi degree equals distinct degree.
        for i in 0..n {
            assert_eq!(sim.multi_degree(i), u64::from(sim.distinct_degree(i)));
        }
        // Column weights concentrate: Bin(m, Γ/n) has mean 30, sd ≈ 5.
        let expected = m as f64 * gamma as f64 / n as f64;
        let degrees: Vec<u64> = (0..n).map(|i| sim.multi_degree(i)).collect();
        let mean = degrees.iter().sum::<u64>() as f64 / n as f64;
        assert!((mean - expected).abs() < expected * 0.15, "mean={mean}");
        // Free pool sizes: total slots differ from m·Γ (almost surely).
        let total: u64 = degrees.iter().sum();
        assert_ne!(total, (m * gamma) as u64);
    }

    #[test]
    fn bernoulli_pools_reconstruct() {
        let mut sim = IncrementalSim::with_design(
            300,
            4,
            75,
            NoiseModel::z_channel(0.1),
            DesignSpec::SparseColumn,
            18,
        );
        let out = sim
            .required_queries(10_000)
            .expect("Bernoulli pools separate on an easy instance");
        assert!(out.queries > 0);
    }

    #[test]
    fn balanced_sampling_reconstructs() {
        let mut sim = IncrementalSim::with_options(
            300,
            4,
            150,
            NoiseModel::z_channel(0.1),
            Sampling::Balanced,
            43,
        );
        let m = sim
            .required_queries(5_000)
            .expect("balanced design separates on an easy instance");
        assert!(m.queries > 0);
    }

    #[test]
    fn theorem2_failure_regime_does_not_separate() {
        // λ² = Ω(m): with λ = 50 and a budget of 400 queries on n = 200,
        // λ² = 2500 ≫ m, Theorem 2 predicts failure with positive
        // probability; across 3 seeds at least one must fail (in practice
        // all do).
        let failures = (0..3)
            .filter(|&seed| {
                let mut sim = IncrementalSim::new(200, 3, NoiseModel::gaussian(50.0), 300 + seed);
                sim.required_queries(400).is_err()
            })
            .count();
        assert!(failures >= 1, "noise λ=50 unexpectedly always separated");
    }
}
