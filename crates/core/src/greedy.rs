//! The sequential reference implementation of Algorithm 1.

use crate::model::Run;
use npd_numerics::vector::{resize_fill, top_k_indices};
use serde::{Deserialize, Serialize};

/// A reconstruction of the hidden bits, together with the scores that
/// produced it.
///
/// Exposing the scores (not just the bits) follows the paper's diagnostics:
/// the *separation* between one-agent and zero-agent scores is the
/// termination criterion of the required-queries experiments, and the score
/// landscape drives the two-step extension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    bits: Vec<bool>,
    ones: Vec<u32>,
    scores: Vec<f64>,
}

impl Estimate {
    /// Builds an estimate by taking the `k` highest-scoring agents.
    ///
    /// Ties are broken toward the smaller agent id, deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `k > scores.len()`.
    pub fn from_scores(scores: Vec<f64>, k: usize) -> Self {
        let top = top_k_indices(&scores, k);
        let mut bits = vec![false; scores.len()];
        let ones: Vec<u32> = top
            .into_iter()
            .map(|i| {
                bits[i] = true;
                i as u32
            })
            .collect();
        Self { bits, ones, scores }
    }

    /// Builds an estimate from explicit bits and the scores that produced
    /// them (used by the distributed protocol, where each agent learns its
    /// own bit).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != scores.len()`.
    pub fn from_parts(bits: Vec<bool>, scores: Vec<f64>) -> Self {
        assert_eq!(
            bits.len(),
            scores.len(),
            "Estimate::from_parts: bits/scores length mismatch"
        );
        let ones = bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i as u32)
            .collect();
        Self { bits, ones, scores }
    }

    /// The estimated bit vector.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Sorted indices of agents estimated to hold bit one.
    pub fn ones(&self) -> &[u32] {
        &self.ones
    }

    /// The per-agent scores the estimate was ranked by.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Population size.
    pub fn n(&self) -> usize {
        self.bits.len()
    }

    /// Number of agents estimated as one.
    pub fn k(&self) -> usize {
        self.ones.len()
    }
}

/// A reconstruction algorithm for pooled-data runs.
///
/// Object-safe so harness code can hold heterogeneous decoder collections
/// (`Vec<Box<dyn Decoder>>`) when comparing algorithms.
pub trait Decoder {
    /// Reconstructs the hidden bits of the given run.
    fn decode(&self, run: &Run) -> Estimate;

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// How the neighborhood sum is centered before ranking.
///
/// Algorithm 1 as printed sorts by `Ψᵢ − Δ*ᵢ·k/2`, the noiseless expected
/// second-neighborhood contribution. The paper's *analysis*, however,
/// establishes separation for the noise-aware centering
/// `Ψᵢ − E[Ξ^pq ᵢ | G]` (Equations (3)–(4)), and with `q > 0` only the
/// latter matches the reported experiments: under the printed score the
/// false-positive mass `q·Γ·Δ*ᵢ` fluctuates with `Δ*ᵢ` and inflates the
/// required queries to `Θ(q²n² ln n)`, far beyond Figure 4's axis. Since
/// `p` and `q` are known constants in the model (Section II-A), the
/// noise-aware score is what a real deployment computes; the plain variant
/// is kept for the ablation study.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Centering {
    /// `Ψᵢ − (Δ*ᵢ·Γ − Δᵢ)·(q + k(1−p−q)/(n−1))` — the analysis' centering
    /// (reduces to the printed score as `p, q → 0`). The `Δ*ᵢ·Γ` term is
    /// computed as the *sum of the agent's queries' slot counts*, which
    /// equals `Δ*ᵢ·Γ` exactly on query-regular designs and stays exact on
    /// ragged (degree-balanced) designs where pool sizes differ by one.
    #[default]
    NoiseAware,
    /// `Ψᵢ − Δ*ᵢ·k/2` — Algorithm 1, line 14, verbatim.
    Plain,
}

/// The *noisy maximum neighborhood* decoder (Algorithm 1, steps I–II, run
/// sequentially).
///
/// For each agent `i` it accumulates the neighborhood sum
/// `Ψᵢ = Σ_{j : i ∈ ∂*aⱼ} σ̂ⱼ` over the *distinct* queries containing `i`,
/// subtracts the expected second-neighborhood contribution (see
/// [`Centering`]) and declares the `k` top-ranked agents as ones.
///
/// # Examples
///
/// ```
/// use npd_core::{Decoder, GreedyDecoder, Instance, NoiseModel};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let run = Instance::builder(200)
///     .k(3)
///     .queries(200)
///     .noise(NoiseModel::gaussian(1.0))
///     .build()
///     .unwrap()
///     .sample(&mut rng);
/// let est = GreedyDecoder::new().decode(&run);
/// assert_eq!(est.k(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GreedyDecoder {
    centering: Centering,
}

impl GreedyDecoder {
    /// Creates the decoder with the noise-aware centering.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the decoder with an explicit centering variant.
    pub fn with_centering(centering: Centering) -> Self {
        Self { centering }
    }

    /// The centering variant in use.
    pub fn centering(&self) -> Centering {
        self.centering
    }

    /// Computes the greedy scores without selecting bits.
    ///
    /// Exposed separately so callers can inspect the score landscape (e.g.
    /// the separation diagnostic) without re-deriving it.
    pub fn scores(&self, run: &Run) -> Vec<f64> {
        let mut workspace = GreedyWorkspace::new();
        self.scores_using(run, &mut workspace)
    }

    /// [`GreedyDecoder::scores`] reusing the caller's accumulator buffers:
    /// repeated scorings on same-sized populations touch the allocator only
    /// for the returned score vector. Output is identical to the one-shot
    /// path.
    pub fn scores_using(&self, run: &Run, workspace: &mut GreedyWorkspace) -> Vec<f64> {
        self.scores_inner(
            run,
            self.resolved_rate(run),
            workspace,
            FoldPolicy::default(),
        )
    }

    /// Noise-aware scores with an explicit per-slot one-read rate, for use
    /// when the channel parameters are *estimated* rather than known (see
    /// [`crate::estimation::estimate_slot_rate`]).
    pub fn scores_with_slot_rate(&self, run: &Run, slot_rate: f64) -> Vec<f64> {
        self.scores_inner(
            run,
            Some(slot_rate),
            &mut GreedyWorkspace::new(),
            FoldPolicy::default(),
        )
    }

    /// [`GreedyDecoder::scores`] with each query result winsorized into its
    /// feasible range `[0, |∂*aⱼ|]` before accumulation.
    ///
    /// A measurement legitimately reads at most one per slot, so clamping
    /// bounds the damage any single corrupted payload can do: every
    /// accumulated `Ψᵢ` stays within the clean-fold envelope
    /// `|Ψᵢ| ≤ Σ_{j∈∂*i} |∂aⱼ|`. This is the sequential mirror of the
    /// distributed protocol's winsorized fold
    /// ([`crate::distributed::ProtocolOptions::winsorize`]). Under the
    /// channel noise models clean results always lie inside the range, so
    /// winsorizing is a bit-identical no-op there; only the Gaussian model
    /// can legitimately graze the clamp.
    pub fn scores_winsorized(&self, run: &Run) -> Vec<f64> {
        self.scores_inner(
            run,
            self.resolved_rate(run),
            &mut GreedyWorkspace::new(),
            FoldPolicy {
                winsorize: true,
                exclude: None,
            },
        )
    }

    /// [`GreedyDecoder::scores`] with flagged queries excluded from the
    /// accumulation entirely.
    ///
    /// An excluded query contributes *nothing* — neither its result nor its
    /// degree terms — so the centering of the surviving queries is
    /// undisturbed: the score of an agent is exactly what it would be had
    /// the flagged queries never been asked. This is the trimmed companion
    /// of [`GreedyDecoder::scores_winsorized`]: winsorizing caps what a
    /// corrupted measurement can contribute, trimming removes measurements
    /// known (or suspected) to be corrupted — see
    /// [`crate::estimation::flag_corrupted_queries`] for a data-driven
    /// flagger and [`crate::estimation::decode_trimmed`] for the assembled
    /// pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `exclude.len() != m`.
    pub fn scores_trimmed(&self, run: &Run, exclude: &[bool]) -> Vec<f64> {
        self.scores_inner(
            run,
            self.resolved_rate(run),
            &mut GreedyWorkspace::new(),
            FoldPolicy {
                winsorize: false,
                exclude: Some(exclude),
            },
        )
    }

    /// [`GreedyDecoder::scores_trimmed`] with an explicit per-slot one-read
    /// rate, for when the rate is estimated from the surviving queries
    /// (corrupted results poison the plain moment estimate too — see
    /// [`crate::estimation::estimate_slot_rate_trimmed`]).
    ///
    /// # Panics
    ///
    /// Panics if `exclude.len() != m`.
    pub fn scores_trimmed_with_slot_rate(
        &self,
        run: &Run,
        slot_rate: f64,
        exclude: &[bool],
    ) -> Vec<f64> {
        self.scores_inner(
            run,
            Some(slot_rate),
            &mut GreedyWorkspace::new(),
            FoldPolicy {
                winsorize: false,
                exclude: Some(exclude),
            },
        )
    }

    /// The per-slot one-read rate the configured centering subtracts with
    /// (`None` for the plain `Δ*ᵢ·k/2` centering).
    fn resolved_rate(&self, run: &Run) -> Option<f64> {
        match self.centering {
            Centering::Plain => None,
            Centering::NoiseAware => Some(second_neighborhood_rate(
                run.instance().n(),
                run.instance().k(),
                run.instance().noise(),
            )),
        }
    }

    /// Posterior log-odds scores: the greedy neighborhood statistic folded
    /// with per-agent prior one-probabilities `πᵢ = P(σᵢ = 1)`.
    ///
    /// Algorithm 1 ranks by the centered neighborhood sum alone, which is
    /// the right rule only for an exchangeable (uniform `k`-subset) prior.
    /// Structured populations — community blocks, household clusters,
    /// heavy-tailed hubs (the `npd-workloads` models) — carry per-agent
    /// marginals, and the Bayes rule ranks by posterior log-odds instead.
    /// Under the Gaussian approximation to the noise-aware-centered score
    /// `Xᵢ` (means `Δᵢ·q` for zero-agents and `Δᵢ·(1−p)` for one-agents,
    /// common variance `vᵢ ≈ Δ*ᵢ·Var[σ̂]` estimated from the realized query
    /// results), the posterior log-odds are
    ///
    /// ```text
    /// λᵢ = ((Xᵢ − Δᵢ·q)·gᵢ − gᵢ²/2) / vᵢ + ln(πᵢ/(1−πᵢ)),   gᵢ = Δᵢ·(1−p−q)
    /// ```
    ///
    /// (`q = 0`, `g = Δᵢ` under the noiseless and Gaussian models). With a
    /// uniform prior and an agent-regular design (constant `Δᵢ`, `Δ*ᵢ`)
    /// this is a strictly monotone transform of the plain score, so the
    /// selection is unchanged; an informative prior shifts borderline
    /// agents by their prior log-odds, scaled by how little evidence the
    /// queries have accumulated on them.
    ///
    /// # Panics
    ///
    /// Panics if `prior.len() != n` or any `πᵢ ∉ [0, 1]`.
    pub fn posterior_scores(&self, run: &Run, prior: &[f64]) -> Vec<f64> {
        self.scores_with_posterior(run, prior).1
    }

    /// [`GreedyDecoder::posterior_scores`] returning the noise-aware
    /// scores it is built from as well, in one accumulation pass.
    ///
    /// Prior-blind-vs-prior-aware comparisons need both rankings of the
    /// same run; computing them independently would pay the `O(m·Γ)`
    /// accumulation twice.
    ///
    /// # Panics
    ///
    /// Panics if `prior.len() != n` or any `πᵢ ∉ [0, 1]`.
    pub fn scores_with_posterior(&self, run: &Run, prior: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let n = run.instance().n();
        assert_eq!(
            prior.len(),
            n,
            "GreedyDecoder::posterior_scores: prior length must equal n"
        );
        let (p, q) = match *run.instance().noise() {
            crate::NoiseModel::Channel { p, q } => (p, q),
            crate::NoiseModel::Noiseless | crate::NoiseModel::Query { .. } => (0.0, 0.0),
        };
        let signal = 1.0 - p - q;
        let rate = second_neighborhood_rate(n, run.instance().k(), run.instance().noise());
        let mut ws = GreedyWorkspace::new();
        let scores = self.scores_inner(run, Some(rate), &mut ws, FoldPolicy::default());

        // Empirical per-query result variance: from any one agent's
        // viewpoint (conditioned on its own bit) a query result fluctuates
        // with both the channel noise and the second neighborhood, which is
        // exactly what the realized spread of σ̂ measures.
        let m = run.results().len().max(1) as f64;
        let mean = run.results().iter().sum::<f64>() / m;
        let var = (run
            .results()
            .iter()
            .map(|r| (r - mean).powi(2))
            .sum::<f64>()
            / m)
            .max(1e-9);

        let posterior = scores
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let pi = prior[i];
                assert!(
                    (0.0..=1.0).contains(&pi),
                    "GreedyDecoder::posterior_scores: prior[{i}]={pi} not a probability"
                );
                let pi = pi.clamp(1e-12, 1.0 - 1e-12);
                let log_odds = (pi / (1.0 - pi)).ln();
                let multi = ws.multi[i] as f64;
                let g = multi * signal;
                if g <= 0.0 {
                    // No own slots (or a fully inverting channel): the
                    // queries carry no evidence on this agent.
                    return log_odds;
                }
                let v = (f64::from(ws.distinct[i]) * var).max(1e-12);
                ((x - multi * q) * g - 0.5 * g * g) / v + log_odds
            })
            .collect();
        (scores, posterior)
    }

    fn scores_inner(
        &self,
        run: &Run,
        rate: Option<f64>,
        ws: &mut GreedyWorkspace,
        policy: FoldPolicy<'_>,
    ) -> Vec<f64> {
        let n = run.instance().n();
        let k = run.instance().k();
        if let Some(exclude) = policy.exclude {
            assert_eq!(
                exclude.len(),
                run.results().len(),
                "GreedyDecoder: exclusion mask length must equal the query count"
            );
        }
        ws.reset(n);
        let psi = &mut ws.psi;
        let distinct = &mut ws.distinct;
        let multi = &mut ws.multi;
        let slot_sum = &mut ws.slot_sum;
        for (j, q) in run.graph().queries().iter().enumerate() {
            if policy.exclude.is_some_and(|exclude| exclude[j]) {
                continue;
            }
            // Per-query slot count, not the nominal Γ: identical for the
            // query-regular designs (Σ_{j∈∂*i} Γ = Δ*ᵢ·Γ), exact for ragged
            // designs such as the doubly regular scheme.
            let total = q.total_slots() as u64;
            let mut value = run.results()[j];
            if policy.winsorize {
                value = value.clamp(0.0, total as f64);
            }
            for (a, c) in q.iter() {
                psi[a as usize] += value;
                distinct[a as usize] += 1;
                multi[a as usize] += c as u64;
                slot_sum[a as usize] += total;
            }
        }
        let scores: Vec<f64> = match rate {
            None => {
                let half_k = k as f64 / 2.0;
                psi.iter()
                    .zip(distinct.iter())
                    .map(|(&p, &d)| p - d as f64 * half_k)
                    .collect()
            }
            Some(rate) => (0..n)
                .map(|i| {
                    let slots = (slot_sum[i] - multi[i]) as f64;
                    psi[i] - slots * rate
                })
                .collect(),
        };
        if ws.sink.is_enabled() && k > 0 && k < n {
            // The margin between the last selected and first rejected
            // score: the same deterministic ranking `from_scores` uses.
            let ranked = top_k_indices(&scores, k + 1);
            let margin = scores[ranked[k - 1]] - scores[ranked[k]];
            ws.sink.emit(|| {
                npd_telemetry::Event::instant("greedy.scores")
                    .phase("greedy")
                    .u64("n", n as u64)
                    .u64("k", k as u64)
                    .f64("margin", margin)
            });
        }
        scores
    }
}

/// How [`GreedyDecoder::scores_inner`] treats each query during the fold:
/// winsorize clamps the result into its feasible `[0, slots]` range,
/// exclude drops flagged queries (result *and* degree terms) entirely.
#[derive(Debug, Clone, Copy, Default)]
struct FoldPolicy<'a> {
    winsorize: bool,
    exclude: Option<&'a [bool]>,
}

/// Reusable accumulator buffers for [`GreedyDecoder::scores_using`].
///
/// Holds the per-agent neighborhood sums `Ψ`, distinct degrees `Δ*` and
/// multi-degrees `Δ` so sweeping decoders do not reallocate them per trial.
#[derive(Debug, Clone, Default)]
pub struct GreedyWorkspace {
    psi: Vec<f64>,
    distinct: Vec<u32>,
    multi: Vec<u64>,
    /// `Σ_{j∈∂*i} |∂aⱼ|` — total slots of the queries containing each
    /// agent (equals `Δ*ᵢ·Γ` on query-regular designs).
    slot_sum: Vec<u64>,
    /// Telemetry handle (disabled by default): one `greedy.scores` event
    /// per scoring with the top-`k` selection margin.
    sink: npd_telemetry::TelemetrySink,
}

impl GreedyWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a telemetry sink. Each subsequent scoring records one
    /// `greedy.scores` event carrying the score `margin` between the
    /// `k`-th and `(k+1)`-th ranked agents — the selection's robustness
    /// reserve against noise and message corruption. Computed serially
    /// after the fold, so the stream is bit-identical across thread
    /// counts.
    pub fn set_telemetry(&mut self, sink: npd_telemetry::TelemetrySink) {
        self.sink = sink;
    }

    fn reset(&mut self, n: usize) {
        resize_fill(&mut self.psi, n, 0.0);
        resize_fill(&mut self.distinct, n, 0);
        resize_fill(&mut self.multi, n, 0);
        resize_fill(&mut self.slot_sum, n, 0);
    }
}

/// Probability that one second-neighborhood slot reads as a one:
/// `q + k(1−p−q)/(n−1)` (Lemma 7's `p(0,1) + p(1,1)` with the indicator
/// dropped).
pub(crate) fn second_neighborhood_rate(n: usize, k: usize, noise: &crate::NoiseModel) -> f64 {
    let (p, q) = match *noise {
        crate::NoiseModel::Channel { p, q } => (p, q),
        crate::NoiseModel::Noiseless | crate::NoiseModel::Query { .. } => (0.0, 0.0),
    };
    q + k as f64 * (1.0 - p - q) / (n as f64 - 1.0)
}

impl Decoder for GreedyDecoder {
    fn decode(&self, run: &Run) -> Estimate {
        Estimate::from_scores(self.scores(run), run.instance().k())
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GroundTruth, Instance};
    use crate::noise::NoiseModel;
    use crate::PoolingGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn noiseless_run(n: usize, k: usize, m: usize, seed: u64) -> Run {
        Instance::builder(n)
            .k(k)
            .queries(m)
            .build()
            .unwrap()
            .sample(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn estimate_from_scores_selects_top_k() {
        let est = Estimate::from_scores(vec![1.0, 5.0, 3.0, 5.0], 2);
        assert_eq!(est.ones(), &[1, 3]);
        assert_eq!(est.bits(), &[false, true, false, true]);
        assert_eq!(est.k(), 2);
        assert_eq!(est.n(), 4);
    }

    #[test]
    fn noiseless_recovery_with_generous_queries() {
        // Well above the Theorem-1 budget: recovery must be exact.
        for seed in 0..5 {
            let run = noiseless_run(300, 4, 400, seed);
            let est = GreedyDecoder::new().decode(&run);
            assert_eq!(est.ones(), run.ground_truth().ones(), "seed={seed} failed");
        }
    }

    #[test]
    fn z_channel_recovery_with_generous_queries() {
        let mut rng = StdRng::seed_from_u64(11);
        let run = Instance::builder(300)
            .k(4)
            .queries(600)
            .noise(NoiseModel::z_channel(0.2))
            .build()
            .unwrap()
            .sample(&mut rng);
        let est = GreedyDecoder::new().decode(&run);
        assert_eq!(est.ones(), run.ground_truth().ones());
    }

    #[test]
    fn too_few_queries_fail() {
        // With m = 1 query there is not enough information; the decoder
        // still returns a weight-k estimate but it is (almost surely) wrong.
        let run = noiseless_run(1000, 10, 1, 3);
        let est = GreedyDecoder::new().decode(&run);
        assert_eq!(est.k(), 10);
        assert_ne!(est.ones(), run.ground_truth().ones());
    }

    #[test]
    fn scores_reflect_ground_truth_gap() {
        // Average score of one-agents must exceed that of zero-agents by
        // Δ·(1 − γ) in the noiseless case: the agent's own bit adds Δ
        // (Equation (2) with p = q = 0), while the second neighborhood of a
        // one-agent contains k−1 rather than k ones, which removes
        // n_j/(n−1) ≈ γ·Δ at finite sizes.
        let run = noiseless_run(400, 5, 300, 7);
        let scores = GreedyDecoder::new().scores(&run);
        let truth = run.ground_truth();
        let (mut sum1, mut sum0) = (0.0, 0.0);
        for (i, &s) in scores.iter().enumerate() {
            if truth.is_one(i) {
                sum1 += s;
            } else {
                sum0 += s;
            }
        }
        let mean1 = sum1 / truth.k() as f64;
        let mean0 = sum0 / (truth.n() - truth.k()) as f64;
        let gap = mean1 - mean0;
        let delta = 300.0 / 2.0;
        let want = delta * (1.0 - npd_theory::GAMMA);
        assert!(
            (gap - want).abs() < want * 0.2,
            "gap={gap}, expected ≈ {want}"
        );
    }

    #[test]
    fn decode_on_figure1_instance() {
        // Figure 1 is an illustrative five-query instance, not a decodable
        // one: with Γ = 3 slots the neighborhood sums cannot separate all
        // three one-agents. The decoder must still rank the two strongly
        // covered one-agents (0 and 2) on top.
        let (graph, truth) = PoolingGraph::figure1_example();
        let instance = Instance::builder(7)
            .k(3)
            .queries(5)
            .query_size(3)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let results = graph.measure(&truth, &NoiseModel::Noiseless, &mut rng);
        let run = instance.assemble(truth, graph, results).unwrap();
        let est = GreedyDecoder::new().decode(&run);
        assert!(est.ones().contains(&0));
        assert!(est.ones().contains(&2));
        assert_eq!(est.k(), 3);
        // And the overlap metric sees at least 2 of the 3 ones.
        assert!(crate::evaluate::overlap(&est, run.ground_truth()) >= 2.0 / 3.0);
    }

    #[test]
    fn decoder_name() {
        assert_eq!(GreedyDecoder::new().name(), "greedy");
    }

    #[test]
    fn workspace_reuse_is_bit_identical_to_one_shot() {
        let decoder = GreedyDecoder::new();
        let mut ws = GreedyWorkspace::new();
        // Different sizes through one workspace, including shrinking.
        for (n, seed) in [(300usize, 0u64), (150, 1), (300, 2)] {
            let run = noiseless_run(n, 4, 250, seed);
            let fresh = decoder.scores(&run);
            let reused = decoder.scores_using(&run, &mut ws);
            assert!(
                fresh
                    .iter()
                    .zip(&reused)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "n={n} seed={seed}"
            );
        }
    }

    #[test]
    fn plain_centering_matches_printed_formula() {
        // Hand-check Algorithm 1's literal score Ψᵢ − Δ*ᵢ·k/2 on Figure 1.
        let (graph, truth) = PoolingGraph::figure1_example();
        let instance = Instance::builder(7)
            .k(3)
            .queries(5)
            .query_size(3)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let results = graph.measure(&truth, &NoiseModel::Noiseless, &mut rng);
        let run = instance.assemble(truth, graph, results).unwrap();
        let scores = GreedyDecoder::with_centering(Centering::Plain).scores(&run);
        // Agent 0: Ψ = 2+3 = 5, Δ* = 2 ⇒ 5 − 2·1.5 = 2.
        assert_eq!(scores[0], 2.0);
        // Agent 2: Ψ = 2+3+1 = 6, Δ* = 3 ⇒ 6 − 4.5 = 1.5.
        assert_eq!(scores[2], 1.5);
    }

    #[test]
    fn centerings_coincide_for_noiseless_ranking() {
        // With p = q = 0 both centerings subtract (asymptotically) the same
        // k/2-per-distinct-query term; on a concrete instance the *ranking*
        // must agree even if raw scores differ slightly.
        let run = noiseless_run(300, 4, 300, 42);
        let aware = GreedyDecoder::new().decode(&run);
        let plain = GreedyDecoder::with_centering(Centering::Plain).decode(&run);
        assert_eq!(aware.ones(), plain.ones());
    }

    #[test]
    fn noise_aware_centering_is_required_for_false_positives() {
        // The ablation behind DESIGN.md's centering discussion: at q = 0.1
        // the printed score fails long after the noise-aware score succeeds.
        let mut aware_hits = 0;
        let mut plain_hits = 0;
        let trials = 5;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(900 + seed);
            let run = Instance::builder(316)
                .k(4)
                .queries(1500)
                .noise(NoiseModel::channel(0.1, 0.1))
                .build()
                .unwrap()
                .sample(&mut rng);
            let aware = GreedyDecoder::new().decode(&run);
            let plain = GreedyDecoder::with_centering(Centering::Plain).decode(&run);
            if aware.ones() == run.ground_truth().ones() {
                aware_hits += 1;
            }
            if plain.ones() == run.ground_truth().ones() {
                plain_hits += 1;
            }
        }
        assert!(
            aware_hits > plain_hits,
            "noise-aware {aware_hits}/{trials} vs plain {plain_hits}/{trials}"
        );
        assert!(aware_hits >= 4, "noise-aware centering should succeed here");
    }

    /// Rebuilds `run` with the given (e.g. tampered) result vector.
    fn with_results(run: &Run, results: Vec<f64>) -> Run {
        run.instance()
            .assemble(run.ground_truth().clone(), run.graph().clone(), results)
            .unwrap()
    }

    #[test]
    fn winsorized_scores_are_a_noop_on_channel_runs() {
        // Channel-model results always lie in [0, slots], so winsorizing
        // must not move a single bit.
        let run = noiseless_run(200, 3, 150, 9);
        let decoder = GreedyDecoder::new();
        let raw = decoder.scores(&run);
        let win = decoder.scores_winsorized(&run);
        assert!(raw
            .iter()
            .zip(&win)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn winsorized_scores_clamp_out_of_range_results() {
        let run = noiseless_run(200, 3, 150, 10);
        let mut tampered = run.results().to_vec();
        tampered[7] = 1e6; // way beyond any slot count
        tampered[11] = -250.0; // below the floor
        let bad = with_results(&run, tampered.clone());

        let decoder = GreedyDecoder::new();
        let win = decoder.scores_winsorized(&bad);
        assert_ne!(win, decoder.scores(&bad), "clamp never engaged");

        // Winsorizing is exactly "clamp first, then fold": pre-clamping the
        // results by hand and running the plain fold must agree bit for bit.
        let queries = run.graph().queries();
        for (j, v) in tampered.iter_mut().enumerate() {
            *v = v.clamp(0.0, queries[j].total_slots() as f64);
        }
        let clamped = decoder.scores(&with_results(&run, tampered));
        assert!(win
            .iter()
            .zip(&clamped)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn trimmed_scores_ignore_excluded_queries() {
        let run = noiseless_run(200, 3, 150, 12);
        let decoder = GreedyDecoder::new();
        let m = run.results().len();

        // An all-clear mask is the identity.
        let all_clear = decoder.scores_trimmed(&run, &vec![false; m]);
        assert!(decoder
            .scores(&run)
            .iter()
            .zip(&all_clear)
            .all(|(a, b)| a.to_bits() == b.to_bits()));

        // An excluded query's payload is irrelevant: garbling it arbitrarily
        // must not move the trimmed scores at all.
        let mut exclude = vec![false; m];
        exclude[3] = true;
        exclude[77] = true;
        let clean = decoder.scores_trimmed(&run, &exclude);
        let mut tampered = run.results().to_vec();
        tampered[3] = f64::MAX / 4.0;
        tampered[77] = -1e9;
        let garbled = decoder.scores_trimmed(&with_results(&run, tampered), &exclude);
        assert!(clean
            .iter()
            .zip(&garbled)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        // And trimming two of 150 generous queries must not break recovery.
        let est = Estimate::from_scores(clean, run.instance().k());
        assert_eq!(est.ones(), run.ground_truth().ones());
    }

    #[test]
    #[should_panic(expected = "exclusion mask length")]
    fn trimmed_scores_reject_wrong_mask_length() {
        let run = noiseless_run(50, 2, 40, 1);
        GreedyDecoder::new().scores_trimmed(&run, &[false; 3]);
    }

    #[test]
    fn decoder_is_object_safe() {
        let decoders: Vec<Box<dyn Decoder>> = vec![Box::new(GreedyDecoder::new())];
        let run = noiseless_run(100, 2, 80, 0);
        for d in &decoders {
            let est = d.decode(&run);
            assert_eq!(est.k(), 2);
        }
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Estimate invariants hold for arbitrary score vectors.
            #[test]
            fn estimate_invariants(
                scores in proptest::collection::vec(-100.0f64..100.0, 1..60),
                pick in 0usize..60,
            ) {
                let k = pick % scores.len();
                let est = Estimate::from_scores(scores.clone(), k);
                prop_assert_eq!(est.k(), k);
                prop_assert_eq!(est.n(), scores.len());
                prop_assert!(est.ones().windows(2).all(|w| w[0] < w[1]));
                prop_assert_eq!(
                    est.bits().iter().filter(|&&b| b).count(),
                    k
                );
                // Every selected agent scores at least as high as every
                // unselected one.
                let min_sel = est
                    .ones()
                    .iter()
                    .map(|&i| scores[i as usize])
                    .fold(f64::INFINITY, f64::min);
                let max_unsel = est
                    .bits()
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| !b)
                    .map(|(i, _)| scores[i])
                    .fold(f64::NEG_INFINITY, f64::max);
                if k > 0 && k < scores.len() {
                    prop_assert!(min_sel >= max_unsel);
                }
            }

            /// Decoding always returns a weight-k estimate, whatever the
            /// noise realization.
            #[test]
            fn decode_weight_is_k(seed in 0u64..150, m in 1usize..40) {
                let run = Instance::builder(50)
                    .k(3)
                    .queries(m)
                    .noise(NoiseModel::gaussian(2.0))
                    .build()
                    .unwrap()
                    .sample(&mut StdRng::seed_from_u64(seed));
                let est = GreedyDecoder::new().decode(&run);
                prop_assert_eq!(est.k(), 3);
                prop_assert_eq!(est.scores().len(), 50);
            }
        }
    }

    #[test]
    fn permutation_equivariance() {
        // Relabeling agents permutes the estimate identically: decode on a
        // graph with relabeled agents and compare.
        let n = 60;
        let mut rng = StdRng::seed_from_u64(21);
        let instance = Instance::builder(n).k(3).queries(40).build().unwrap();
        let run = instance.sample(&mut rng);

        // Build the relabeled run: agent i -> (i + 7) mod n.
        let shift = |a: u32| ((a as usize + 7) % n) as u32;
        let slot_lists: Vec<Vec<u32>> = run
            .graph()
            .queries()
            .iter()
            .map(|q| {
                let mut slots = Vec::new();
                for (agent, count) in q.iter() {
                    for _ in 0..count {
                        slots.push(shift(agent));
                    }
                }
                slots
            })
            .collect();
        let graph2 = PoolingGraph::from_slot_lists(n, slot_lists);
        let mut bits2 = vec![false; n];
        for &o in run.ground_truth().ones() {
            bits2[shift(o) as usize] = true;
        }
        let truth2 = GroundTruth::from_bits(bits2);
        let run2 = instance
            .assemble(truth2, graph2, run.results().to_vec())
            .unwrap();

        let est1 = GreedyDecoder::new().decode(&run);
        let est2 = GreedyDecoder::new().decode(&run2);
        let mut mapped: Vec<u32> = est1.ones().iter().map(|&a| shift(a)).collect();
        mapped.sort_unstable();
        assert_eq!(mapped, est2.ones());
    }
}
