//! The two noise models of Section II.

use npd_numerics::rng::{binomial, GaussianSampler};
use npd_numerics::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Noise applied to query measurements.
///
/// * [`Channel`](NoiseModel::Channel) — the *noisy channel* of Section II-A:
///   every individual edge slot flips independently (a one-bit reads as zero
///   with probability `p`, a zero-bit reads as one with probability `q`).
///   A query whose `Γ` slots touch `c₁` one-agents therefore reports
///   `Bin(c₁, 1−p) + Bin(Γ−c₁, q)`.
/// * [`Query`](NoiseModel::Query) — the *noisy query* model of Section II-B:
///   the exact sum plus independent Gaussian `N(0, λ²)` noise (pipetting
///   inaccuracy in the life-sciences setting).
/// * [`Noiseless`](NoiseModel::Noiseless) — the idealized baseline of the
///   prior work the paper extends.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum NoiseModel {
    /// Exact measurements.
    #[default]
    Noiseless,
    /// Per-edge bit flips with false-negative rate `p`, false-positive rate
    /// `q` (`p + q < 1`).
    Channel {
        /// Probability a one-bit reads as zero.
        p: f64,
        /// Probability a zero-bit reads as one.
        q: f64,
    },
    /// Additive Gaussian noise `N(0, λ²)` per query.
    Query {
        /// Standard deviation λ.
        lambda: f64,
    },
}

impl NoiseModel {
    /// General noisy channel with false-negative rate `p` and false-positive
    /// rate `q`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`, `q ∉ [0, 1)`, or `p + q ≥ 1` (the channel
    /// would invert more often than it preserves).
    pub fn channel(p: f64, q: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "NoiseModel::channel: p={p} not in [0,1)"
        );
        assert!(
            (0.0..1.0).contains(&q),
            "NoiseModel::channel: q={q} not in [0,1)"
        );
        assert!(
            p + q < 1.0,
            "NoiseModel::channel: p+q={} must be below 1",
            p + q
        );
        NoiseModel::Channel { p, q }
    }

    /// The Z-channel: only `1 → 0` errors (`q = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`.
    pub fn z_channel(p: f64) -> Self {
        Self::channel(p, 0.0)
    }

    /// Gaussian query noise with standard deviation `λ`.
    ///
    /// # Panics
    ///
    /// Panics if `λ < 0` or not finite.
    pub fn gaussian(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "NoiseModel::gaussian: lambda={lambda} must be a non-negative finite number"
        );
        NoiseModel::Query { lambda }
    }

    /// Whether this model perturbs individual edges (as opposed to whole
    /// query results).
    pub fn is_per_edge(&self) -> bool {
        matches!(self, NoiseModel::Channel { .. })
    }

    /// Draws one noisy measurement for a query whose slots touch `one_slots`
    /// one-agents and `zero_slots` zero-agents.
    ///
    /// The exact (noiseless) measurement would be `one_slots`.
    pub fn measure<R: Rng + ?Sized>(&self, one_slots: u64, zero_slots: u64, rng: &mut R) -> f64 {
        match *self {
            NoiseModel::Noiseless => one_slots as f64,
            NoiseModel::Channel { p, q } => {
                let surviving_ones = binomial(rng, one_slots, 1.0 - p);
                let flipped_zeros = binomial(rng, zero_slots, q);
                (surviving_ones + flipped_zeros) as f64
            }
            NoiseModel::Query { lambda } => {
                let mut gauss = GaussianSampler::new();
                gauss.sample_scaled(rng, one_slots as f64, lambda)
            }
        }
    }

    /// Expected measurement for given slot counts:
    /// `(1−p)·c₁ + q·c₀` under the channel, `c₁` otherwise.
    pub fn expected_measurement(&self, one_slots: u64, zero_slots: u64) -> f64 {
        match *self {
            NoiseModel::Noiseless | NoiseModel::Query { .. } => one_slots as f64,
            NoiseModel::Channel { p, q } => (1.0 - p) * one_slots as f64 + q * zero_slots as f64,
        }
    }

    /// Draws one noisy per-category measurement vector for a query whose
    /// slots touch `slots[c]` agents of category `c` (category `0` is the
    /// healthy/background class, categories `1..d` are the strains).
    ///
    /// The categorical channel generalizes the binary one per slot: a
    /// strain slot keeps its label with probability `1−p` and otherwise
    /// reads as one of the `d−1` other categories uniformly; a background
    /// slot reads as one of the `d−1` strains with probability `q` total.
    /// Gaussian query noise perturbs the reported strain counts only — the
    /// background count is the complement the lab never reports, so it
    /// stays exact.
    ///
    /// **Bit-compatibility contract:** at `d = 2` this consumes the RNG
    /// stream of [`NoiseModel::measure`] draw-for-draw (one binomial for
    /// the strain slots, one for the background slots under the channel;
    /// one Gaussian under query noise), so `out[1]` equals the binary
    /// measurement byte-for-byte. The draw order below (strains ascending,
    /// then background; mover scatters in ascending target order) is
    /// therefore load-bearing and pinned by `tests/determinism.rs`.
    ///
    /// # Panics
    ///
    /// Panics if `slots.len() < 2`.
    pub fn measure_categorical<R: Rng + ?Sized>(&self, slots: &[u64], rng: &mut R) -> Vec<f64> {
        let d = slots.len();
        assert!(d >= 2, "measure_categorical: need at least 2 categories");
        match *self {
            NoiseModel::Noiseless => slots.iter().map(|&s| s as f64).collect(),
            NoiseModel::Channel { p, q } => {
                let mut out = vec![0u64; d];
                // Strain slots first (ascending): survivors stay, movers
                // scatter uniformly over the other categories.
                for c in 1..d {
                    let stayers = binomial(rng, slots[c], 1.0 - p);
                    out[c] += stayers;
                    scatter_uniform(rng, slots[c] - stayers, c, &mut out);
                }
                // Background slots: `q` of them read as some strain.
                let movers = binomial(rng, slots[0], q);
                out[0] += slots[0] - movers;
                scatter_uniform(rng, movers, 0, &mut out);
                out.into_iter().map(|c| c as f64).collect()
            }
            NoiseModel::Query { lambda } => {
                let mut gauss = GaussianSampler::new();
                let mut out = vec![slots[0] as f64; 1];
                for &s in &slots[1..] {
                    out.push(gauss.sample_scaled(rng, s as f64, lambda));
                }
                out
            }
        }
    }

    /// Expected per-category measurement for given slot counts: `Mᵀ·slots`
    /// with `M` the per-slot [confusion matrix](Self::confusion_matrix).
    ///
    /// # Panics
    ///
    /// Panics if `slots.len() < 2`.
    pub fn expected_measurement_categorical(&self, slots: &[u64]) -> Vec<f64> {
        let d = slots.len();
        assert!(
            d >= 2,
            "expected_measurement_categorical: need at least 2 categories"
        );
        match *self {
            NoiseModel::Noiseless | NoiseModel::Query { .. } => {
                slots.iter().map(|&s| s as f64).collect()
            }
            NoiseModel::Channel { .. } => {
                let m = self.confusion_matrix(d);
                let slots_f: Vec<f64> = slots.iter().map(|&s| s as f64).collect();
                m.matvec_t(&slots_f)
            }
        }
    }

    /// The `d × d` per-slot confusion matrix `M` of this noise model:
    /// `M[c][t]` is the probability a slot of true category `c` is observed
    /// as category `t`, so the expected observation is `Mᵀ·slots`.
    ///
    /// Under the channel, `M[0][0] = 1−q` with the `q` mass uniform over
    /// the strains, and `M[c][c] = 1−p` with the `p` mass uniform over the
    /// other categories; at `d = 2` this is the familiar binary channel
    /// with determinant `1−p−q > 0` (guaranteed by [`NoiseModel::channel`]),
    /// so the matrix is always invertible there. Noiseless and Gaussian
    /// query noise have the identity matrix (query noise is additive, not a
    /// per-slot relabeling).
    ///
    /// # Panics
    ///
    /// Panics if `d < 2`.
    pub fn confusion_matrix(&self, d: usize) -> Matrix {
        assert!(d >= 2, "confusion_matrix: need at least 2 categories");
        let mut m = Matrix::zeros(d, d);
        match *self {
            NoiseModel::Noiseless | NoiseModel::Query { .. } => {
                for c in 0..d {
                    *m.get_mut(c, c) = 1.0;
                }
            }
            NoiseModel::Channel { p, q } => {
                let off = (d - 1) as f64;
                *m.get_mut(0, 0) = 1.0 - q;
                for t in 1..d {
                    *m.get_mut(0, t) = q / off;
                }
                for c in 1..d {
                    for t in 0..d {
                        *m.get_mut(c, t) = if t == c { 1.0 - p } else { p / off };
                    }
                }
            }
        }
        m
    }
}

/// Scatters `movers` slots uniformly over the categories other than `from`,
/// in ascending index order via successive conditional binomials; the last
/// target takes the remainder without an RNG draw, so a single-target
/// scatter (`d = 2`) consumes no randomness at all — the bit-compatibility
/// contract of [`NoiseModel::measure_categorical`] depends on this.
fn scatter_uniform<R: Rng + ?Sized>(rng: &mut R, movers: u64, from: usize, out: &mut [u64]) {
    let mut remaining = movers;
    let mut targets_left = out.len() - 1;
    for (t, slot) in out.iter_mut().enumerate() {
        if t == from {
            continue;
        }
        if targets_left == 1 {
            *slot += remaining;
            return;
        }
        let x = binomial(rng, remaining, 1.0 / targets_left as f64);
        *slot += x;
        remaining -= x;
        targets_left -= 1;
    }
}

impl fmt::Display for NoiseModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseModel::Noiseless => write!(f, "noiseless"),
            NoiseModel::Channel { p, q } if *q == 0.0 => write!(f, "z-channel(p={p})"),
            NoiseModel::Channel { p, q } => write!(f, "channel(p={p}, q={q})"),
            NoiseModel::Query { lambda } => write!(f, "gaussian(λ={lambda})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_validate() {
        let z = NoiseModel::z_channel(0.3);
        assert_eq!(z, NoiseModel::Channel { p: 0.3, q: 0.0 });
        let c = NoiseModel::channel(0.2, 0.1);
        assert!(c.is_per_edge());
        assert!(!NoiseModel::gaussian(2.0).is_per_edge());
    }

    #[test]
    #[should_panic(expected = "p+q")]
    fn channel_rejects_saturation() {
        NoiseModel::channel(0.6, 0.5);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn gaussian_rejects_negative() {
        NoiseModel::gaussian(-1.0);
    }

    #[test]
    fn noiseless_is_exact() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(NoiseModel::Noiseless.measure(17, 33, &mut rng), 17.0);
    }

    #[test]
    fn channel_measure_moments() {
        // Bin(100, 0.7) + Bin(100, 0.1): mean 80, var 100·0.21 + 100·0.09 = 30.
        let model = NoiseModel::channel(0.3, 0.1);
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..50_000)
            .map(|_| model.measure(100, 100, &mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
        assert!((mean - 80.0).abs() < 0.2, "mean={mean}");
        assert!((var - 30.0).abs() < 1.0, "var={var}");
        assert_eq!(model.expected_measurement(100, 100), 80.0);
    }

    #[test]
    fn z_channel_never_exceeds_ones() {
        let model = NoiseModel::z_channel(0.4);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let r = model.measure(20, 80, &mut rng);
            assert!((0.0..=20.0).contains(&r));
        }
    }

    #[test]
    fn gaussian_measure_moments() {
        let model = NoiseModel::gaussian(3.0);
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..50_000)
            .map(|_| model.measure(50, 0, &mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
        assert!((mean - 50.0).abs() < 0.1, "mean={mean}");
        assert!((var - 9.0).abs() < 0.3, "var={var}");
    }

    #[test]
    fn gaussian_zero_lambda_is_exact() {
        let model = NoiseModel::gaussian(0.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(model.measure(12, 8, &mut rng), 12.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NoiseModel::Noiseless.to_string(), "noiseless");
        assert_eq!(NoiseModel::z_channel(0.1).to_string(), "z-channel(p=0.1)");
        assert_eq!(
            NoiseModel::channel(0.1, 0.05).to_string(),
            "channel(p=0.1, q=0.05)"
        );
        assert_eq!(NoiseModel::gaussian(2.0).to_string(), "gaussian(λ=2)");
    }

    #[test]
    fn default_is_noiseless() {
        assert_eq!(NoiseModel::default(), NoiseModel::Noiseless);
    }

    #[test]
    fn categorical_noiseless_is_exact() {
        let mut rng = StdRng::seed_from_u64(0);
        let out = NoiseModel::Noiseless.measure_categorical(&[30, 12, 8], &mut rng);
        assert_eq!(out, vec![30.0, 12.0, 8.0]);
    }

    #[test]
    fn categorical_d2_channel_consumes_the_binary_stream() {
        // Same seed, same slot counts: the categorical d=2 path must make
        // exactly the two binomial draws of the binary path, in order.
        let model = NoiseModel::channel(0.3, 0.1);
        for seed in 0..50 {
            let mut rng_bin = StdRng::seed_from_u64(seed);
            let mut rng_cat = StdRng::seed_from_u64(seed);
            let binary = model.measure(40, 60, &mut rng_bin);
            let cat = model.measure_categorical(&[60, 40], &mut rng_cat);
            assert_eq!(cat[1], binary, "seed {seed}");
            assert_eq!(cat[0] + cat[1], 100.0, "seed {seed}: slots not conserved");
            // Streams fully aligned: the next draw agrees too.
            assert_eq!(rng_bin.gen::<u64>(), rng_cat.gen::<u64>(), "seed {seed}");
        }
    }

    #[test]
    fn categorical_d2_gaussian_consumes_the_binary_stream() {
        let model = NoiseModel::gaussian(2.5);
        for seed in 0..50 {
            let mut rng_bin = StdRng::seed_from_u64(seed);
            let mut rng_cat = StdRng::seed_from_u64(seed);
            let binary = model.measure(13, 7, &mut rng_bin);
            let cat = model.measure_categorical(&[7, 13], &mut rng_cat);
            assert_eq!(cat[1], binary, "seed {seed}");
            assert_eq!(cat[0], 7.0, "background count must be exact");
            assert_eq!(rng_bin.gen::<u64>(), rng_cat.gen::<u64>(), "seed {seed}");
        }
    }

    #[test]
    fn confusion_matrix_rows_are_stochastic() {
        for (model, d) in [
            (NoiseModel::Noiseless, 3),
            (NoiseModel::gaussian(1.0), 4),
            (NoiseModel::channel(0.2, 0.1), 2),
            (NoiseModel::channel(0.2, 0.1), 4),
        ] {
            let m = model.confusion_matrix(d);
            for c in 0..d {
                let row_sum: f64 = (0..d).map(|t| m.get(c, t)).sum();
                assert!((row_sum - 1.0).abs() < 1e-12, "{model} d={d} row {c}");
            }
        }
    }

    #[test]
    fn confusion_matrix_d2_matches_binary_expectation() {
        let model = NoiseModel::channel(0.25, 0.05);
        let expected = model.expected_measurement_categorical(&[80, 20]);
        assert!((expected[1] - model.expected_measurement(20, 80)).abs() < 1e-12);
        assert!((expected[0] + expected[1] - 100.0).abs() < 1e-12);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        /// Empirical mean of `measure` vs `expected_measurement`, within a
        /// `5σ/√N` band (σ bounded by the model's worst-case per-slot
        /// variance), so the bound is sound for every parameter draw.
        fn assert_mean_matches(
            model: NoiseModel,
            one_slots: u64,
            zero_slots: u64,
            sd_bound: f64,
            seed: u64,
        ) -> Result<(), proptest::test_runner::TestCaseError> {
            const SAMPLES: usize = 4_000;
            let mut rng = StdRng::seed_from_u64(seed);
            let mean = (0..SAMPLES)
                .map(|_| model.measure(one_slots, zero_slots, &mut rng))
                .sum::<f64>()
                / SAMPLES as f64;
            let expected = model.expected_measurement(one_slots, zero_slots);
            let tol = 5.0 * sd_bound / (SAMPLES as f64).sqrt() + 1e-9;
            prop_assert!(
                (mean - expected).abs() < tol,
                "{model}: empirical mean {mean} vs expected {expected} (tol {tol})"
            );
            Ok(())
        }

        proptest! {
            /// Z-channel: `expected_measurement` is the mean of `measure`.
            #[test]
            fn z_channel_mean_is_pinned(
                p in 0.0f64..0.9,
                ones in 0u64..120,
                zeros in 0u64..120,
                seed in 0u64..1_000,
            ) {
                // Var = ones·p(1−p) ≤ ones/4.
                let sd = (ones as f64 / 4.0).sqrt();
                assert_mean_matches(NoiseModel::z_channel(p), ones, zeros, sd, seed)?;
            }

            /// General channel: mean pinned for any admissible `(p, q)`.
            #[test]
            fn channel_mean_is_pinned(
                p in 0.0f64..0.6,
                q in 0.0f64..0.39,
                ones in 0u64..120,
                zeros in 0u64..120,
                seed in 0u64..1_000,
            ) {
                // Var = ones·p(1−p) + zeros·q(1−q) ≤ (ones+zeros)/4.
                let sd = ((ones + zeros) as f64 / 4.0).sqrt();
                assert_mean_matches(NoiseModel::channel(p, q), ones, zeros, sd, seed)?;
            }

            /// Gaussian query noise: mean pinned for any λ.
            #[test]
            fn gaussian_mean_is_pinned(
                lambda in 0.0f64..5.0,
                ones in 0u64..200,
                zeros in 0u64..200,
                seed in 0u64..1_000,
            ) {
                assert_mean_matches(NoiseModel::gaussian(lambda), ones, zeros, lambda, seed)?;
            }
        }

        /// Per-category empirical means of `measure_categorical` vs
        /// `expected_measurement_categorical`, within a `5σ/√N` band per
        /// category. Every observed category count is a sum of independent
        /// per-slot indicators under the channel (variance ≤ total/4) and
        /// `N(slots[c], λ²)` under query noise, so the bounds are sound for
        /// every parameter draw.
        fn assert_categorical_mean_matches(
            model: NoiseModel,
            slots: &[u64],
            sd_bound: f64,
            seed: u64,
        ) -> Result<(), proptest::test_runner::TestCaseError> {
            const SAMPLES: usize = 3_000;
            let d = slots.len();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut mean = vec![0.0f64; d];
            for _ in 0..SAMPLES {
                let draw = model.measure_categorical(slots, &mut rng);
                for (m, v) in mean.iter_mut().zip(&draw) {
                    *m += v;
                }
            }
            for m in &mut mean {
                *m /= SAMPLES as f64;
            }
            let expected = model.expected_measurement_categorical(slots);
            let tol = 5.0 * sd_bound / (SAMPLES as f64).sqrt() + 1e-9;
            for c in 0..d {
                prop_assert!(
                    (mean[c] - expected[c]).abs() < tol,
                    "{model} d={d} category {c}: empirical mean {} vs expected {} (tol {tol})",
                    mean[c],
                    expected[c]
                );
            }
            Ok(())
        }

        proptest! {
            /// Categorical channel: per-category means pinned for any
            /// admissible `(p, q)` and any category count `d ∈ {2..5}`.
            #[test]
            fn categorical_channel_mean_is_pinned(
                p in 0.0f64..0.6,
                q in 0.0f64..0.39,
                raw_slots in proptest::collection::vec(0u64..80, 2..6),
                seed in 0u64..1_000,
            ) {
                let total: u64 = raw_slots.iter().sum();
                let sd = (total as f64 / 4.0).sqrt();
                assert_categorical_mean_matches(
                    NoiseModel::channel(p, q), &raw_slots, sd, seed,
                )?;
            }

            /// Categorical Gaussian query noise: per-category means pinned.
            #[test]
            fn categorical_gaussian_mean_is_pinned(
                lambda in 0.0f64..5.0,
                raw_slots in proptest::collection::vec(0u64..120, 2..6),
                seed in 0u64..1_000,
            ) {
                assert_categorical_mean_matches(
                    NoiseModel::gaussian(lambda), &raw_slots, lambda, seed,
                )?;
            }

            /// The per-slot relabeling models conserve slots: the observed
            /// category counts always sum to the pool's slot count, on every
            /// single draw (query noise is additive and exempt — it reports
            /// perturbed strain counts, not a relabeling).
            #[test]
            fn categorical_counts_sum_to_slot_count(
                p in 0.0f64..0.6,
                q in 0.0f64..0.39,
                raw_slots in proptest::collection::vec(0u64..200, 2..7),
                seed in 0u64..1_000,
            ) {
                let total: u64 = raw_slots.iter().sum();
                let mut rng = StdRng::seed_from_u64(seed);
                for model in [NoiseModel::Noiseless, NoiseModel::channel(p, q)] {
                    for _ in 0..20 {
                        let draw = model.measure_categorical(&raw_slots, &mut rng);
                        let sum: f64 = draw.iter().sum();
                        prop_assert!(
                            sum == total as f64,
                            "{model}: counts sum to {sum}, expected {total}"
                        );
                        prop_assert!(draw.iter().all(|&v| v >= 0.0));
                    }
                }
            }
        }
    }
}
