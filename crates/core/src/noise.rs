//! The two noise models of Section II.

use npd_numerics::rng::{binomial, GaussianSampler};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Noise applied to query measurements.
///
/// * [`Channel`](NoiseModel::Channel) — the *noisy channel* of Section II-A:
///   every individual edge slot flips independently (a one-bit reads as zero
///   with probability `p`, a zero-bit reads as one with probability `q`).
///   A query whose `Γ` slots touch `c₁` one-agents therefore reports
///   `Bin(c₁, 1−p) + Bin(Γ−c₁, q)`.
/// * [`Query`](NoiseModel::Query) — the *noisy query* model of Section II-B:
///   the exact sum plus independent Gaussian `N(0, λ²)` noise (pipetting
///   inaccuracy in the life-sciences setting).
/// * [`Noiseless`](NoiseModel::Noiseless) — the idealized baseline of the
///   prior work the paper extends.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum NoiseModel {
    /// Exact measurements.
    #[default]
    Noiseless,
    /// Per-edge bit flips with false-negative rate `p`, false-positive rate
    /// `q` (`p + q < 1`).
    Channel {
        /// Probability a one-bit reads as zero.
        p: f64,
        /// Probability a zero-bit reads as one.
        q: f64,
    },
    /// Additive Gaussian noise `N(0, λ²)` per query.
    Query {
        /// Standard deviation λ.
        lambda: f64,
    },
}

impl NoiseModel {
    /// General noisy channel with false-negative rate `p` and false-positive
    /// rate `q`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`, `q ∉ [0, 1)`, or `p + q ≥ 1` (the channel
    /// would invert more often than it preserves).
    pub fn channel(p: f64, q: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "NoiseModel::channel: p={p} not in [0,1)"
        );
        assert!(
            (0.0..1.0).contains(&q),
            "NoiseModel::channel: q={q} not in [0,1)"
        );
        assert!(
            p + q < 1.0,
            "NoiseModel::channel: p+q={} must be below 1",
            p + q
        );
        NoiseModel::Channel { p, q }
    }

    /// The Z-channel: only `1 → 0` errors (`q = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`.
    pub fn z_channel(p: f64) -> Self {
        Self::channel(p, 0.0)
    }

    /// Gaussian query noise with standard deviation `λ`.
    ///
    /// # Panics
    ///
    /// Panics if `λ < 0` or not finite.
    pub fn gaussian(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "NoiseModel::gaussian: lambda={lambda} must be a non-negative finite number"
        );
        NoiseModel::Query { lambda }
    }

    /// Whether this model perturbs individual edges (as opposed to whole
    /// query results).
    pub fn is_per_edge(&self) -> bool {
        matches!(self, NoiseModel::Channel { .. })
    }

    /// Draws one noisy measurement for a query whose slots touch `one_slots`
    /// one-agents and `zero_slots` zero-agents.
    ///
    /// The exact (noiseless) measurement would be `one_slots`.
    pub fn measure<R: Rng + ?Sized>(&self, one_slots: u64, zero_slots: u64, rng: &mut R) -> f64 {
        match *self {
            NoiseModel::Noiseless => one_slots as f64,
            NoiseModel::Channel { p, q } => {
                let surviving_ones = binomial(rng, one_slots, 1.0 - p);
                let flipped_zeros = binomial(rng, zero_slots, q);
                (surviving_ones + flipped_zeros) as f64
            }
            NoiseModel::Query { lambda } => {
                let mut gauss = GaussianSampler::new();
                gauss.sample_scaled(rng, one_slots as f64, lambda)
            }
        }
    }

    /// Expected measurement for given slot counts:
    /// `(1−p)·c₁ + q·c₀` under the channel, `c₁` otherwise.
    pub fn expected_measurement(&self, one_slots: u64, zero_slots: u64) -> f64 {
        match *self {
            NoiseModel::Noiseless | NoiseModel::Query { .. } => one_slots as f64,
            NoiseModel::Channel { p, q } => (1.0 - p) * one_slots as f64 + q * zero_slots as f64,
        }
    }
}

impl fmt::Display for NoiseModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseModel::Noiseless => write!(f, "noiseless"),
            NoiseModel::Channel { p, q } if *q == 0.0 => write!(f, "z-channel(p={p})"),
            NoiseModel::Channel { p, q } => write!(f, "channel(p={p}, q={q})"),
            NoiseModel::Query { lambda } => write!(f, "gaussian(λ={lambda})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_validate() {
        let z = NoiseModel::z_channel(0.3);
        assert_eq!(z, NoiseModel::Channel { p: 0.3, q: 0.0 });
        let c = NoiseModel::channel(0.2, 0.1);
        assert!(c.is_per_edge());
        assert!(!NoiseModel::gaussian(2.0).is_per_edge());
    }

    #[test]
    #[should_panic(expected = "p+q")]
    fn channel_rejects_saturation() {
        NoiseModel::channel(0.6, 0.5);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn gaussian_rejects_negative() {
        NoiseModel::gaussian(-1.0);
    }

    #[test]
    fn noiseless_is_exact() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(NoiseModel::Noiseless.measure(17, 33, &mut rng), 17.0);
    }

    #[test]
    fn channel_measure_moments() {
        // Bin(100, 0.7) + Bin(100, 0.1): mean 80, var 100·0.21 + 100·0.09 = 30.
        let model = NoiseModel::channel(0.3, 0.1);
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..50_000)
            .map(|_| model.measure(100, 100, &mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
        assert!((mean - 80.0).abs() < 0.2, "mean={mean}");
        assert!((var - 30.0).abs() < 1.0, "var={var}");
        assert_eq!(model.expected_measurement(100, 100), 80.0);
    }

    #[test]
    fn z_channel_never_exceeds_ones() {
        let model = NoiseModel::z_channel(0.4);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let r = model.measure(20, 80, &mut rng);
            assert!((0.0..=20.0).contains(&r));
        }
    }

    #[test]
    fn gaussian_measure_moments() {
        let model = NoiseModel::gaussian(3.0);
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..50_000)
            .map(|_| model.measure(50, 0, &mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
        assert!((mean - 50.0).abs() < 0.1, "mean={mean}");
        assert!((var - 9.0).abs() < 0.3, "var={var}");
    }

    #[test]
    fn gaussian_zero_lambda_is_exact() {
        let model = NoiseModel::gaussian(0.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(model.measure(12, 8, &mut rng), 12.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NoiseModel::Noiseless.to_string(), "noiseless");
        assert_eq!(NoiseModel::z_channel(0.1).to_string(), "z-channel(p=0.1)");
        assert_eq!(
            NoiseModel::channel(0.1, 0.05).to_string(),
            "channel(p=0.1, q=0.05)"
        );
        assert_eq!(NoiseModel::gaussian(2.0).to_string(), "gaussian(λ=2)");
    }

    #[test]
    fn default_is_noiseless() {
        assert_eq!(NoiseModel::default(), NoiseModel::Noiseless);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        /// Empirical mean of `measure` vs `expected_measurement`, within a
        /// `5σ/√N` band (σ bounded by the model's worst-case per-slot
        /// variance), so the bound is sound for every parameter draw.
        fn assert_mean_matches(
            model: NoiseModel,
            one_slots: u64,
            zero_slots: u64,
            sd_bound: f64,
            seed: u64,
        ) -> Result<(), proptest::test_runner::TestCaseError> {
            const SAMPLES: usize = 4_000;
            let mut rng = StdRng::seed_from_u64(seed);
            let mean = (0..SAMPLES)
                .map(|_| model.measure(one_slots, zero_slots, &mut rng))
                .sum::<f64>()
                / SAMPLES as f64;
            let expected = model.expected_measurement(one_slots, zero_slots);
            let tol = 5.0 * sd_bound / (SAMPLES as f64).sqrt() + 1e-9;
            prop_assert!(
                (mean - expected).abs() < tol,
                "{model}: empirical mean {mean} vs expected {expected} (tol {tol})"
            );
            Ok(())
        }

        proptest! {
            /// Z-channel: `expected_measurement` is the mean of `measure`.
            #[test]
            fn z_channel_mean_is_pinned(
                p in 0.0f64..0.9,
                ones in 0u64..120,
                zeros in 0u64..120,
                seed in 0u64..1_000,
            ) {
                // Var = ones·p(1−p) ≤ ones/4.
                let sd = (ones as f64 / 4.0).sqrt();
                assert_mean_matches(NoiseModel::z_channel(p), ones, zeros, sd, seed)?;
            }

            /// General channel: mean pinned for any admissible `(p, q)`.
            #[test]
            fn channel_mean_is_pinned(
                p in 0.0f64..0.6,
                q in 0.0f64..0.39,
                ones in 0u64..120,
                zeros in 0u64..120,
                seed in 0u64..1_000,
            ) {
                // Var = ones·p(1−p) + zeros·q(1−q) ≤ (ones+zeros)/4.
                let sd = ((ones + zeros) as f64 / 4.0).sqrt();
                assert_mean_matches(NoiseModel::channel(p, q), ones, zeros, sd, seed)?;
            }

            /// Gaussian query noise: mean pinned for any λ.
            #[test]
            fn gaussian_mean_is_pinned(
                lambda in 0.0f64..5.0,
                ones in 0u64..200,
                zeros in 0u64..200,
                seed in 0u64..1_000,
            ) {
                assert_mean_matches(NoiseModel::gaussian(lambda), ones, zeros, lambda, seed)?;
            }
        }
    }
}
