//! Vendored, dependency-free stand-in for the subset of the `rand` crate
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small API surface it needs: [`RngCore`], [`Rng`] (with
//! `gen`, `gen_range`, `gen_bool`), [`SeedableRng`] and the two named
//! generators [`rngs::StdRng`] and [`rngs::SmallRng`].
//!
//! The generators are xoshiro256++ (StdRng) and xoshiro256+ (SmallRng),
//! seeded through the SplitMix64 expansion — high-quality, fast, and fully
//! deterministic for a given seed. Streams do **not** match the upstream
//! `rand` crate bit-for-bit (upstream StdRng is ChaCha12); every expected
//! value in this repository was produced against these generators.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform range sampling, used by [`Rng::gen_range`].
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 as u64;
                low.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as i128 - low as i128) as u128 as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = low + u * (high - low);
                // Floating rounding can land exactly on `high`; fold back.
                if v >= high { low } else { v }
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let u = <$t as Standard>::sample_standard(rng);
                low + u * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Unbiased uniform draw from `[0, span)`; `span == 0` means the full
/// 64-bit range.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let limit = u64::MAX - u64::MAX % span;
    loop {
        let x = rng.next_u64();
        if x < limit {
            return x % span;
        }
    }
}

/// Range argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`]-samplable type (`f64` in `[0,1)`,
    /// full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from a range (`low..high` or `low..=high`).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a 64-bit seed via the SplitMix64 expansion (the same
    /// scheme `rand_core` uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Shared xoshiro256 state with non-zero guarantee.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0, 0, 0, 0] {
                // The all-zero state is the one fixed point; displace it.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }

        #[inline]
        fn step(&mut self) -> &mut [u64; 4] {
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            &mut self.s
        }
    }

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        inner: Xoshiro256,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &self.inner.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            self.inner.step();
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            Self {
                inner: Xoshiro256::from_seed(seed),
            }
        }
    }

    /// The workspace's small/fast generator: xoshiro256+.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        inner: Xoshiro256,
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.inner.s[0].wrapping_add(self.inner.s[3]);
            self.inner.step();
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            Self {
                inner: Xoshiro256::from_seed(seed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<f64>(), b.gen::<f64>());
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_int_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(5i64..=7);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_negative_int() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            let v = rng.gen_range(-1_000i64..1_000);
            assert!((-1_000..1_000).contains(&v));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(9);
        let total: f64 = (0..50_000).map(|_| rng.gen::<f64>()).sum();
        let mean = total / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
