//! Vendored, dependency-free property-testing harness with a
//! proptest-compatible surface.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of `proptest` its test suites use: the [`proptest!`]
//! macro with `arg in strategy` bindings, [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_assume!`], range and
//! [`collection::vec`] strategies, [`bool::ANY`], and
//! [`test_runner::TestRunner`].
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case
//! reports the generated inputs verbatim. Generation is deterministic —
//! case `i` of every test draws from a fixed-seed RNG stream — so failures
//! reproduce exactly. The case count defaults to 64 and can be raised with
//! the `PROPTEST_CASES` environment variable.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// Strategy trait and implementations for ranges and tuples.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A value generator: the proptest-compatible strategy abstraction
    /// (generation only; no shrinking).
    pub trait Strategy {
        /// The generated value type.
        type Value: std::fmt::Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4)
    );
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<T>` with element strategy and length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `Vec` strategy with lengths drawn from `len` (exclusive upper bound).
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "collection::vec: empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.len.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The fair-coin strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Fair boolean draws.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// Test execution: case errors and the explicit runner.
pub mod test_runner {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assert!`-style failure with a message.
        Fail(String),
        /// `prop_assume!` rejection; the case is skipped.
        Reject,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// A property failure reported by [`TestRunner::run`].
    #[derive(Debug, Clone)]
    pub struct TestError {
        /// Failure message including the offending case.
        pub message: String,
    }

    impl std::fmt::Display for TestError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestError {}

    /// Deterministic per-case RNG stream shared by the runner and the
    /// [`crate::proptest!`] macro.
    pub fn prng_for(case: u64) -> StdRng {
        StdRng::seed_from_u64(0x5EED_CA5E_0000_0000 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Explicit property runner (proptest-compatible subset).
    #[derive(Debug, Default)]
    pub struct TestRunner {}

    impl TestRunner {
        /// Runs `test` against `cases()` generated values.
        ///
        /// # Errors
        ///
        /// Returns the first failing case, with its generated input.
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), TestError>
        where
            S: Strategy,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            for case in 0..super::cases() as u64 {
                let mut rng = prng_for(case);
                let value = strategy.generate(&mut rng);
                let rendered = format!("{value:?}");
                match test(value) {
                    Ok(()) | Err(TestCaseError::Reject) => {}
                    Err(TestCaseError::Fail(msg)) => {
                        return Err(TestError {
                            message: format!("case {case} failed: {msg}; input: {rendered}"),
                        });
                    }
                }
            }
            Ok(())
        }
    }
}

/// Run configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: cases() as u32,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Everything a `use proptest::prelude::*;` is expected to bring in.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports an optional leading `#![proptest_config(expr)]` selecting the
/// case count for the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public surface.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cases = {
                    let cfg: $crate::ProptestConfig = $cfg;
                    cfg.cases as u64
                };
                for case in 0..cases {
                    let mut prng = $crate::test_runner::prng_for(case);
                    let mut rendered = String::new();
                    $(
                        let __npd_generated =
                            $crate::strategy::Strategy::generate(&($strat), &mut prng);
                        rendered.push_str(&format!(
                            "{} = {:?}; ",
                            stringify!($arg),
                            &__npd_generated
                        ));
                        let $arg = __npd_generated;
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(())
                        | ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "property {} failed at case {case}: {msg}\n  inputs: {}",
                                stringify!($name),
                                rendered
                            );
                        }
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a property, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        $crate::prop_assume!($cond)
    };
}

#[cfg(test)]
mod tests {

    proptest! {
        /// Generated integers respect their range.
        #[test]
        fn ranges_respected(x in 0usize..10, y in -5i64..=5) {
            prop_assert!(x < 10);
            prop_assert!((-5..=5).contains(&y));
        }

        /// Vec strategy respects element and length bounds.
        #[test]
        fn vec_strategy(v in crate::collection::vec(-1.0f64..1.0, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        /// prop_assume skips cases without failing them.
        #[test]
        fn assume_skips(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn runner_reports_failures() {
        let mut runner = crate::test_runner::TestRunner::default();
        let result = runner.run(&(0usize..10), |x| {
            prop_assert!(x < 5, "x={x} too big");
            Ok(())
        });
        assert!(result.is_err());
        let ok = runner.run(&(0usize..5), |_| Ok(()));
        assert!(ok.is_ok());
    }

    #[test]
    fn bool_any_generates_both() {
        let mut runner = crate::test_runner::TestRunner::default();
        let mut seen = [false, false];
        runner
            .run(&crate::bool::ANY, |b| {
                seen[b as usize] = true;
                Ok(())
            })
            .unwrap();
        assert!(seen[0] && seen[1]);
    }
}
