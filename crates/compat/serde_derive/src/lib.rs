//! No-op `Serialize`/`Deserialize` derives backing the vendored `serde`
//! stand-in (see that crate's docs for why the workspace vendors these).
//!
//! The marker traits in the local `serde` crate carry blanket
//! implementations, so these derives have nothing to generate; they exist
//! solely so `#[derive(Serialize, Deserialize)]` (and `#[serde(...)]`
//! attributes) parse and expand cleanly.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
