//! Vendored, dependency-free benchmark harness with a criterion-compatible
//! surface.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the `criterion` API its benches use:
//! [`Criterion::benchmark_group`] / [`Criterion::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! [`Bencher::iter`] and the [`criterion_group!`]/[`criterion_main!`]
//! macros.
//!
//! Statistics are deliberately simple: after a short warmup each benchmark
//! collects `sample_size` wall-clock samples (iteration counts chosen so a
//! sample lasts at least a few milliseconds) and reports the median, min
//! and max per-iteration time.
//!
//! # Command line
//!
//! `cargo bench` forwards arguments after `--`:
//!
//! * `--test` — smoke mode: run every benchmark body once and skip timing
//!   (used by CI);
//! * any other non-flag argument — substring filter on benchmark ids.
//!
//! Set `CRITERION_JSON=/path/file.json` to also write a JSON array of
//! `{id, median_ns, min_ns, max_ns, samples}` records — the hook used to
//! produce `BENCH_baseline.json`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One recorded benchmark result, exported via `CRITERION_JSON`.
#[derive(Debug, Clone)]
pub struct Record {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Fastest sample in nanoseconds.
    pub min_ns: f64,
    /// Slowest sample in nanoseconds.
    pub max_ns: f64,
    /// Number of samples.
    pub samples: usize,
}

static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Run configuration parsed from the command line.
#[derive(Debug, Clone, Default)]
struct Config {
    test_mode: bool,
    filter: Option<String>,
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Config::default();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => cfg.test_mode = true,
                // Boolean flags cargo or humans pass that we accept and
                // ignore.
                "--bench" | "--quick" | "--noplot" | "--verbose" | "--discard-baseline"
                | "--list" => {}
                // Value-carrying criterion flags: consume the operand too,
                // so it is not mistaken for a benchmark filter below.
                "--save-baseline"
                | "--baseline"
                | "--baseline-lenient"
                | "--load-baseline"
                | "--measurement-time"
                | "--warm-up-time"
                | "--sample-size"
                | "--profile-time"
                | "--output-format"
                | "--color"
                | "--plotting-backend"
                | "--significance-level"
                | "--confidence-level"
                | "--nresamples"
                | "--noise-threshold" => {
                    args.next();
                }
                other if other.starts_with("--") => {
                    // Unknown flag: refuse to guess whether the next token
                    // is its operand or a filter — silently dropping
                    // benchmarks is worse than stopping.
                    eprintln!("criterion (vendored): unsupported flag {other}");
                    std::process::exit(2);
                }
                filter => cfg.filter = Some(filter.to_string()),
            }
        }
        cfg
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// Top-level benchmark driver (criterion-compatible subset).
#[derive(Debug)]
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            config: Config::from_args(),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id().render(None);
        run_benchmark(&self.config, &id, 20, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the per-iteration throughput (accepted for API
    /// compatibility; the vendored harness reports times only).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks a closure under this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id().render(Some(&self.name));
        run_benchmark(&self.criterion.config, &id, self.sample_size, f);
        self
    }

    /// Benchmarks a closure that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id().render(Some(&self.name));
        run_benchmark(&self.criterion.config, &id, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Per-iteration throughput declaration (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter string.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Id with an explicit function name and parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Id carrying only a parameter (function name comes from the group).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, group: Option<&str>) -> String {
        let mut id = String::new();
        if let Some(g) = group {
            let _ = write!(id, "{g}/");
        }
        if let Some(f) = &self.function {
            let _ = write!(id, "{f}");
        }
        if let Some(p) = &self.parameter {
            if self.function.is_some() {
                let _ = write!(id, "/{p}");
            } else {
                let _ = write!(id, "{p}");
            }
        }
        id
    }
}

/// Conversion into [`BenchmarkId`] (allows plain strings).
pub trait IntoBenchmarkId {
    /// Converts to a benchmark id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self.to_string()),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self),
            parameter: None,
        }
    }
}

/// Timing driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f`, storing per-iteration wall-clock samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warmup and per-sample iteration calibration: aim for samples of
        // at least ~2ms so timer quantization is negligible, but cap the
        // calibration so very slow bodies only run once per sample.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let iters = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(config: &Config, id: &str, sample_size: usize, mut f: F) {
    if !config.matches(id) {
        return;
    }
    let mut bencher = Bencher {
        test_mode: config.test_mode,
        sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    if config.test_mode {
        println!("{id}: ok (smoke)");
        return;
    }
    if bencher.samples_ns.is_empty() {
        println!("{id}: no samples (closure never called iter)");
        return;
    }
    let mut sorted = bencher.samples_ns.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("benchmark samples are finite"));
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    };
    let min = sorted[0];
    let max = *sorted.last().expect("non-empty samples");
    println!(
        "{id}\n                        time:   [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
    RECORDS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Record {
            id: id.to_string(),
            median_ns: median,
            min_ns: min,
            max_ns: max,
            samples: sorted.len(),
        });
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Writes collected records as a JSON array to `CRITERION_JSON` (if set).
/// Called automatically by [`criterion_main!`].
pub fn finalize() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let records = RECORDS.lock().unwrap_or_else(|e| e.into_inner());
    let mut json = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "  {{\"id\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}}}",
            r.id.replace('"', "'"),
            r.median_ns,
            r.min_ns,
            r.max_ns,
            r.samples
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("]\n");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("criterion: could not write {path}: {e}");
    }
}

/// Declares a benchmark group runner (criterion-compatible subset).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("f", "n=10").render(Some("g")), "g/f/n=10");
        assert_eq!(BenchmarkId::from_parameter(7).render(Some("g")), "g/7");
        assert_eq!("plain".into_benchmark_id().render(None), "plain");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            test_mode: false,
            sample_size: 3,
            samples_ns: Vec::new(),
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert_eq!(b.samples_ns.len(), 3);
        assert!(b.samples_ns.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = Bencher {
            test_mode: true,
            sample_size: 10,
            samples_ns: Vec::new(),
        };
        let mut calls = 0;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.samples_ns.is_empty());
    }
}
