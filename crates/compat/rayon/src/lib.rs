//! Vendored, dependency-free stand-in for the subset of `rayon` this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal data-parallelism layer with rayon-compatible surface:
//!
//! * [`prelude`] — `par_iter()` / `into_par_iter()` on slices, `Vec<T>` and
//!   `Range<usize>`, plus `par_chunks_mut()` on mutable slices, with `map`,
//!   `enumerate`, `with_min_len`, `for_each` and `collect::<Vec<_>>()`;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — scoped thread-count
//!   overrides;
//! * [`current_num_threads`] / [`join`].
//!
//! # Execution model and determinism
//!
//! Work is split into contiguous index chunks handed to `std::thread::scope`
//! workers through a shared queue; results are reassembled **in input
//! order**. Each item is processed independently, so for pure per-item
//! closures the output is bit-identical to the sequential map regardless of
//! thread count, scheduling, or chunking — the property the experiment
//! harness's determinism contract relies on.
//!
//! Nested parallel calls run sequentially inline on the worker that issued
//! them (no oversubscription), which likewise cannot change results.
//!
//! The thread count comes from, in priority order: an active
//! [`ThreadPool::install`] override, the `RAYON_NUM_THREADS` environment
//! variable (read once), or `std::thread::available_parallelism()`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::{Mutex, OnceLock};

thread_local! {
    /// Set while executing inside a worker: nested calls run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Per-thread override installed by [`ThreadPool::install`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// The number of worker threads parallel calls on this thread would use.
pub fn current_num_threads() -> usize {
    if IN_WORKER.with(|w| w.get()) {
        return 1;
    }
    OVERRIDE.with(|o| o.get()).unwrap_or_else(env_threads)
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(|| {
            IN_WORKER.with(|w| w.set(true));
            b()
        });
        let ra = a();
        (ra, hb.join().expect("rayon::join: closure panicked"))
    })
}

/// Builder for a [`ThreadPool`] with an explicit thread count.
#[derive(Debug, Clone, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count (`0` means the environment default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in this vendored implementation; the `Result` mirrors the
    /// upstream signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(env_threads),
        })
    }
}

/// Error type mirroring the upstream builder signature (never produced).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A logical thread pool: in this vendored implementation, a scoped
/// thread-count override (workers are spawned per parallel call).
#[derive(Debug, Clone)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `f` with this pool's thread count as the ambient parallelism.
    ///
    /// The previous override is restored even if `f` panics, so a caught
    /// panic cannot leak this pool's thread count onto the calling thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                OVERRIDE.with(|o| o.set(self.0));
            }
        }
        let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(self.num_threads))));
        f()
    }
}

/// Core engine: applies `f` to every item, returning results in input
/// order. Sequential when the ambient thread count is 1, the input is
/// trivially small, or the call is nested inside another parallel region.
fn run_ordered<T, R, F>(items: Vec<T>, min_len: usize, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads();
    let len = items.len();
    if threads <= 1 || len <= 1 || len <= min_len.max(1) {
        return items.into_iter().map(f).collect();
    }

    // Contiguous chunks, at least `min_len` items each, at most 4 per
    // worker so the shared queue still load-balances uneven items.
    let chunk_size = min_len.max(len.div_ceil(threads * 4)).max(1);
    let mut pending: Vec<(usize, Vec<T>)> = Vec::new();
    let mut items = items;
    let mut index = 0usize;
    while !items.is_empty() {
        let take = chunk_size.min(items.len());
        let rest = items.split_off(take);
        pending.push((index, items));
        items = rest;
        index += 1;
    }
    let chunk_count = pending.len();
    // Pop from the front by reversing once: cheap ordered queue.
    pending.reverse();
    let queue = Mutex::new(pending);
    let slots: Vec<Mutex<Option<Vec<R>>>> = (0..chunk_count).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads.min(chunk_count) {
            scope.spawn(|| {
                IN_WORKER.with(|w| w.set(true));
                loop {
                    let job = queue.lock().unwrap_or_else(|e| e.into_inner()).pop();
                    let Some((i, chunk)) = job else { break };
                    let out: Vec<R> = chunk.into_iter().map(f).collect();
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                }
                IN_WORKER.with(|w| w.set(false));
            });
        }
    });

    let mut result = Vec::with_capacity(len);
    for slot in slots {
        let chunk = slot
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .expect("rayon: worker dropped a chunk");
        result.extend(chunk);
    }
    result
}

/// A materialized parallel iterator over owned items.
///
/// Combinators are *eager*: `map` runs the closure across the worker pool
/// immediately. This differs from upstream rayon's lazy plumbing but yields
/// identical results for the pipelines this workspace writes.
#[must_use = "parallel iterators are consumed with collect() or for_each()"]
pub struct ParIter<T> {
    items: Vec<T>,
    min_len: usize,
}

impl<T: Send> ParIter<T> {
    /// Lower bound on the number of items a worker processes at once.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<R: Send, F>(self, f: F) -> ParIter<R>
    where
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: run_ordered(self.items, self.min_len, &f),
            min_len: 1,
        }
    }

    /// Pairs every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
            min_len: self.min_len,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_ordered(self.items, self.min_len, &|item| f(item));
    }

    /// Collects the items (upstream-compatible terminal step).
    pub fn collect<C: FromParIter<T>>(self) -> C {
        C::from_par_iter(self.items)
    }
}

/// Collection target of [`ParIter::collect`].
pub trait FromParIter<T> {
    /// Builds the collection from ordered items.
    fn from_par_iter(items: Vec<T>) -> Self;
}

impl<T> FromParIter<T> for Vec<T> {
    fn from_par_iter(items: Vec<T>) -> Self {
        items
    }
}

/// Types convertible into a [`ParIter`] over owned items.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self,
            min_len: 1,
        }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
            min_len: 1,
        }
    }
}

/// `par_iter()` over borrowed slices.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Parallel iterator over `&T`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
            min_len: 1,
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
            min_len: 1,
        }
    }
}

/// `par_chunks_mut()` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over disjoint mutable chunks of `chunk_size`
    /// elements (last chunk may be shorter).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(
            chunk_size > 0,
            "par_chunks_mut: chunk_size must be positive"
        );
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
            min_len: 1,
        }
    }
}

/// The traits a `use rayon::prelude::*;` is expected to bring in.
pub mod prelude {
    pub use crate::{FromParIter, IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<usize> = (0..100usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out.len(), 100);
        assert_eq!(out[99], 100);
    }

    #[test]
    fn matches_sequential_for_any_thread_count() {
        let input: Vec<u64> = (0..997).collect();
        let seq: Vec<u64> = input.iter().map(|&x| x.wrapping_mul(0x9E3779B9)).collect();
        for threads in [1, 2, 3, 8, 64] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let par: Vec<u64> = pool.install(|| {
                input
                    .par_iter()
                    .map(|&x| x.wrapping_mul(0x9E3779B9))
                    .collect()
            });
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_regions() {
        let mut data = vec![0usize; 1000];
        data.par_chunks_mut(64).enumerate().for_each(|(ci, chunk)| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = ci * 64 + i;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn nested_calls_run_inline() {
        let outer: Vec<usize> = (0..8usize)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<usize> = (0..100usize).into_par_iter().map(|j| j + i).collect();
                inner.len()
            })
            .collect();
        assert_eq!(outer, vec![100; 8]);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn with_min_len_small_input_runs_inline() {
        let out: Vec<usize> = (0..10usize)
            .into_par_iter()
            .with_min_len(512)
            .map(|i| i)
            .collect();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn empty_input() {
        let out: Vec<usize> = Vec::<usize>::new().into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }
}
