//! Vendored stand-in for `serde` used by this offline workspace.
//!
//! The workspace annotates its data types with `#[derive(Serialize,
//! Deserialize)]` to declare them serializable, but nothing in-tree performs
//! actual serde serialization — artifacts are written through the explicit
//! CSV/JSON writers in `npd-experiments` and `npd-bench`. Since the build
//! environment cannot reach crates.io, this crate supplies the two trait
//! names as blanket-implemented markers plus no-op derives, keeping every
//! annotation (and future swap-in of the real `serde`) source-compatible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Marker for serializable types; blanket-implemented for everything.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types; blanket-implemented for everything.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
