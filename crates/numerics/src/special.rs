//! Special functions: error function, normal CDF/quantile, log-gamma.
//!
//! The theory crate evaluates Gaussian tail bounds (Theorem 11 of the paper)
//! and the samplers need `ln Γ` for binomial probabilities. Implementations
//! are the classic published rational approximations, accurate to well below
//! the statistical noise floor of any experiment in this workspace.

/// Error function `erf(x)`, absolute error below `1.5e-7`.
///
/// Uses the Abramowitz–Stegun 7.1.26 rational approximation with the usual
/// odd-symmetry extension.
///
/// # Examples
///
/// ```
/// let v = npd_numerics::special::erf(1.0);
/// assert!((v - 0.8427007929).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    // A&S 7.1.26 coefficients.
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
///
/// For large positive `x` the subtraction `1 − erf(x)` would cancel; this
/// implementation switches to a continued-fraction-free asymptotic-safe form
/// based on the same A&S polynomial, which keeps *relative* accuracy adequate
/// for the tail-bound comparisons in the tests (`x ≤ 6`).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp()
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// # Examples
///
/// ```
/// use npd_numerics::special::normal_cdf;
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
/// assert!((normal_cdf(1.959964) - 0.975).abs() < 1e-4);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal upper tail `P(X ≥ x) = 1 − Φ(x)`.
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile `Φ⁻¹(p)` (Acklam's algorithm, relative error
/// below `1.15e-9` over the open unit interval).
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1)`.
///
/// # Examples
///
/// ```
/// use npd_numerics::special::{normal_cdf, normal_quantile};
/// let x = normal_quantile(0.975);
/// assert!((normal_cdf(x) - 0.975).abs() < 1e-6);
/// ```
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile: p={p} must lie strictly between 0 and 1"
    );
    // Coefficients for Acklam's rational approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step sharpens the approximation to near machine
    // precision, using the analytic density.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Natural log of the gamma function, `ln Γ(x)` for `x > 0` (Lanczos, g=7).
///
/// # Panics
///
/// Panics if `x <= 0`.
///
/// # Examples
///
/// ```
/// use npd_numerics::special::ln_gamma;
/// assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10); // Γ(5) = 4!
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma: x={x} must be positive");
    // Lanczos approximation, g = 7, n = 9.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln(n!)` via `ln Γ(n+1)`, exact table for `n ≤ 20`.
pub fn ln_factorial(n: u64) -> f64 {
    // Exact factorials fit in f64 up to 20!.
    const EXACT: [u64; 21] = [
        1,
        1,
        2,
        6,
        24,
        120,
        720,
        5040,
        40320,
        362880,
        3628800,
        39916800,
        479001600,
        6227020800,
        87178291200,
        1307674368000,
        20922789888000,
        355687428096000,
        6402373705728000,
        121645100408832000,
        2432902008176640000,
    ];
    if n <= 20 {
        (EXACT[n as usize] as f64).ln()
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln C(n, k)`, the log binomial coefficient.
///
/// Returns `f64::NEG_INFINITY` if `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Log of the binomial pmf `P(Bin(n, p) = k)`.
///
/// Handles the degenerate `p ∈ {0, 1}` cases exactly.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn ln_binomial_pmf(n: u64, p: f64, k: u64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "ln_binomial_pmf: p={p} not in [0,1]"
    );
    if k > n {
        return f64::NEG_INFINITY;
    }
    if p == 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    if p == 1.0 {
        return if k == n { 0.0 } else { f64::NEG_INFINITY };
    }
    ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn erf_known_values() {
        // Reference values from tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (-1.0, -0.8427007929),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x})");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-2.0, -0.5, 0.0, 0.3, 1.0, 2.5] {
            assert!((erfc(x) - (1.0 - erf(x))).abs() < 1e-7, "x={x}");
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        for &x in &[0.1, 0.7, 1.3, 2.2] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn normal_sf_is_complement() {
        // Tolerance bounded by the absolute error of the A&S erf
        // approximation (~1.5e-7), which the two expressions reach through
        // different branches.
        for &x in &[-1.0, 0.0, 0.5, 3.0] {
            assert!((normal_sf(x) - (1.0 - normal_cdf(x))).abs() < 5e-7);
        }
    }

    #[test]
    fn normal_quantile_known_values() {
        let cases = [(0.5, 0.0), (0.975, 1.95996398), (0.025, -1.95996398)];
        for (p, want) in cases {
            assert!(
                (normal_quantile(p) - want).abs() < 1e-5,
                "quantile({p}) = {} want {want}",
                normal_quantile(p)
            );
        }
    }

    #[test]
    #[should_panic(expected = "strictly between")]
    fn normal_quantile_rejects_zero() {
        normal_quantile(0.0);
    }

    #[test]
    fn ln_gamma_factorials() {
        for n in 1..15u64 {
            let direct = ln_factorial(n);
            let via_gamma = ln_gamma(n as f64 + 1.0);
            assert!((direct - via_gamma).abs() < 1e-8, "n={n}");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn ln_choose_small_cases() {
        assert!((ln_choose(5, 2) - 10.0f64.ln()).abs() < 1e-10);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
        assert!((ln_choose(10, 0)).abs() < 1e-12);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 12;
        let p = 0.3;
        let total: f64 = (0..=n).map(|k| ln_binomial_pmf(n, p, k).exp()).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn binomial_pmf_degenerate() {
        assert_eq!(ln_binomial_pmf(5, 0.0, 0), 0.0);
        assert_eq!(ln_binomial_pmf(5, 0.0, 1), f64::NEG_INFINITY);
        assert_eq!(ln_binomial_pmf(5, 1.0, 5), 0.0);
        assert_eq!(ln_binomial_pmf(5, 1.0, 4), f64::NEG_INFINITY);
    }

    proptest! {
        /// Quantile/CDF round trip over the bulk of the distribution.
        #[test]
        fn quantile_cdf_roundtrip(p in 1e-6f64..0.999999) {
            let x = normal_quantile(p);
            prop_assert!((normal_cdf(x) - p).abs() < 1e-8);
        }

        /// CDF is monotone.
        #[test]
        fn cdf_monotone(a in -6.0f64..6.0, d in 0.0f64..3.0) {
            prop_assert!(normal_cdf(a + d) >= normal_cdf(a) - 1e-12);
        }

        /// Pascal's rule holds in log space.
        #[test]
        fn pascals_rule(n in 1u64..60, k in 0u64..60) {
            prop_assume!(k <= n);
            let lhs = ln_choose(n + 1, k + 1);
            let a = ln_choose(n, k);
            let b = ln_choose(n, k + 1);
            // log-sum-exp of the two sides.
            let m = a.max(b);
            let rhs = if m == f64::NEG_INFINITY { m } else { m + ((a - m).exp() + (b - m).exp()).ln() };
            prop_assert!((lhs - rhs).abs() < 1e-8, "n={n} k={k}: {lhs} vs {rhs}");
        }
    }
}
