//! Small dense linear algebra for the matrix-AMP layer.
//!
//! The categorical decoder works with `d × d` matrices (`d` = number of
//! categories, single digits in every scenario): the effective-noise
//! covariance `T_t = Z_tᵀZ_t/m`, its inverse inside the simplex denoiser,
//! and a Cholesky square root for drawing `N(0, T)` samples in the matrix
//! state-evolution recursion. All routines are plain sequential
//! `O(d³)` loops — deterministic by construction and far below any
//! parallel threshold — and return `None` instead of panicking when the
//! input is numerically singular, so callers choose their own
//! regularization policy (the AMP layer adds a relative ridge before
//! inverting).

use crate::matrix::Matrix;

/// Minimum acceptable pivot magnitude, relative to the matrix scale.
const PIVOT_TOL: f64 = 1e-13;

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix; returns the lower-triangular factor `L`.
///
/// Returns `None` when `A` is not square or a diagonal pivot is not
/// strictly positive (the matrix is not positive definite to working
/// precision). Only the lower triangle of `A` is read, so a symmetric
/// matrix with floating-point asymmetry in the upper triangle is accepted.
///
/// # Examples
///
/// ```
/// use npd_numerics::{linalg, Matrix};
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0][..], &[2.0, 5.0][..]]);
/// let l = linalg::cholesky(&a).unwrap();
/// assert!((l.get(0, 0) - 2.0).abs() < 1e-12);
/// assert_eq!(l.get(0, 1), 0.0);
/// ```
pub fn cholesky(a: &Matrix) -> Option<Matrix> {
    if a.rows() != a.cols() {
        return None;
    }
    let d = a.rows();
    let scale = (0..d).map(|i| a.get(i, i).abs()).fold(0.0f64, f64::max);
    let tol = PIVOT_TOL * (1.0 + scale);
    let mut l = Matrix::zeros(d, d);
    for i in 0..d {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= tol {
                    return None;
                }
                *l.get_mut(i, j) = sum.sqrt();
            } else {
                *l.get_mut(i, j) = sum / l.get(j, j);
            }
        }
    }
    Some(l)
}

/// Solves `A·x = b` by LU decomposition with partial pivoting.
///
/// Returns `None` when `A` is not square, `b` has the wrong length, or a
/// pivot falls below the relative tolerance (the system is singular to
/// working precision).
///
/// # Examples
///
/// ```
/// use npd_numerics::{linalg, Matrix};
///
/// let a = Matrix::from_rows(&[&[2.0, 1.0][..], &[1.0, 3.0][..]]);
/// let x = linalg::solve(&a, &[3.0, 4.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// ```
pub fn solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    if a.rows() != a.cols() || b.len() != a.rows() {
        return None;
    }
    let d = a.rows();
    // Working copy [A | b] with row swaps applied in place.
    let mut lu: Vec<Vec<f64>> = (0..d).map(|r| a.row(r).to_vec()).collect();
    let mut x = b.to_vec();
    let scale = lu
        .iter()
        .flat_map(|r| r.iter())
        .fold(0.0f64, |m, &v| m.max(v.abs()));
    let tol = PIVOT_TOL * (1.0 + scale);
    for col in 0..d {
        // Partial pivot: the largest magnitude in this column below the
        // diagonal (deterministic: first maximal row wins).
        let mut pivot_row = col;
        let mut pivot_mag = lu[col][col].abs();
        for (r, row) in lu.iter().enumerate().skip(col + 1) {
            if row[col].abs() > pivot_mag {
                pivot_mag = row[col].abs();
                pivot_row = r;
            }
        }
        if pivot_mag <= tol {
            return None;
        }
        if pivot_row != col {
            lu.swap(col, pivot_row);
            x.swap(col, pivot_row);
        }
        let pivot = lu[col][col];
        let pivot_tail: Vec<f64> = lu[col][col..].to_vec();
        for r in col + 1..d {
            let factor = lu[r][col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for (entry, &upper) in lu[r][col..].iter_mut().zip(&pivot_tail) {
                *entry -= factor * upper;
            }
            x[r] -= factor * x[col];
        }
    }
    // Back substitution.
    for col in (0..d).rev() {
        let mut sum = x[col];
        for c in col + 1..d {
            sum -= lu[col][c] * x[c];
        }
        x[col] = sum / lu[col][col];
    }
    Some(x)
}

/// Matrix inverse via [`solve`] against the identity columns.
///
/// Returns `None` when the matrix is not square or singular to working
/// precision. Intended for the `d × d` matrices of the categorical layer;
/// cost is `O(d⁴)` and irrelevant at that size.
///
/// # Examples
///
/// ```
/// use npd_numerics::{linalg, Matrix};
///
/// let a = Matrix::from_rows(&[&[2.0, 0.0][..], &[0.0, 4.0][..]]);
/// let inv = linalg::inverse(&a).unwrap();
/// assert!((inv.get(0, 0) - 0.5).abs() < 1e-12);
/// assert!((inv.get(1, 1) - 0.25).abs() < 1e-12);
/// ```
pub fn inverse(a: &Matrix) -> Option<Matrix> {
    if a.rows() != a.cols() {
        return None;
    }
    let d = a.rows();
    let mut out = Matrix::zeros(d, d);
    let mut e = vec![0.0; d];
    for col in 0..d {
        e[col] = 1.0;
        let x = solve(a, &e)?;
        e[col] = 0.0;
        for (r, &v) in x.iter().enumerate() {
            *out.get_mut(r, col) = v;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // AᵀA + I for a fixed A: symmetric positive definite by construction.
        Matrix::from_rows(&[
            &[6.0, 2.0, 1.0][..],
            &[2.0, 5.0, 2.0][..],
            &[1.0, 2.0, 4.0][..],
        ])
    }

    #[test]
    fn cholesky_reconstructs_the_input() {
        let a = spd3();
        let l = cholesky(&a).expect("SPD");
        for i in 0..3 {
            for j in 0..3 {
                let mut v = 0.0;
                for k in 0..3 {
                    v += l.get(i, k) * l.get(j, k);
                }
                assert!((v - a.get(i, j)).abs() < 1e-12, "({i},{j}): {v}");
            }
        }
        // Upper triangle of L stays zero.
        assert_eq!(l.get(0, 2), 0.0);
        assert_eq!(l.get(0, 1), 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite_and_nonsquare() {
        let indef = Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 1.0][..]]);
        assert!(cholesky(&indef).is_none());
        assert!(cholesky(&Matrix::zeros(2, 3)).is_none());
        assert!(cholesky(&Matrix::zeros(2, 2)).is_none());
    }

    #[test]
    fn solve_matches_direct_multiplication() {
        let a = spd3();
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = solve(&a, &b).expect("nonsingular");
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero leading diagonal: fails without row swaps.
        let a = Matrix::from_rows(&[&[0.0, 1.0][..], &[1.0, 0.0][..]]);
        let x = solve(&a, &[2.0, 3.0]).expect("permutation is invertible");
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 4.0][..]]);
        assert!(solve(&a, &[1.0, 2.0]).is_none());
        assert!(solve(&a, &[1.0]).is_none());
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = inverse(&a).expect("nonsingular");
        for i in 0..3 {
            for j in 0..3 {
                let mut v = 0.0;
                for k in 0..3 {
                    v += inv.get(i, k) * a.get(k, j);
                }
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((v - want).abs() < 1e-10, "({i},{j}): {v}");
            }
        }
    }

    #[test]
    fn inverse_rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 1.0][..], &[1.0, 1.0][..]]);
        assert!(inverse(&a).is_none());
        assert!(inverse(&Matrix::zeros(1, 2)).is_none());
    }
}
