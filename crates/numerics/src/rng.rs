//! Exact distribution samplers on top of any [`rand::Rng`] uniform source.
//!
//! The offline dependency set deliberately excludes `rand_distr`, so this
//! module implements the samplers the reproduction needs:
//!
//! * [`GaussianSampler`] — Marsaglia polar method (caches the spare variate),
//!   used for the noisy query model `N(0, λ²)`.
//! * [`binomial`] — exact binomial sampling: BINV inversion for small
//!   `n·min(p, 1−p)` and a divide-and-conquer beta split for large `n`
//!   (Devroye, ch. X.4), used for per-edge channel noise where a query with
//!   `c₁` one-slots and `c₀` zero-slots reports `Bin(c₁, 1−p) + Bin(c₀, q)`.
//! * [`gamma`] / [`beta`] — Marsaglia–Tsang squeeze method, supporting the
//!   binomial split.
//! * [`multinomial`] — conditional binomials, used by tests that validate the
//!   `Λ_j ~ Mult(n_j, p_j(·,·))` decomposition from Lemma 7 of the paper.
//!
//! All samplers are deterministic functions of the RNG stream, so seeding the
//! RNG reproduces an experiment bit-for-bit.

use rand::Rng;

/// Gaussian sampler using the Marsaglia polar method.
///
/// Holds the spare variate between calls; create one per simulation loop and
/// reuse it.
///
/// # Examples
///
/// ```
/// use npd_numerics::rng::GaussianSampler;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut gauss = GaussianSampler::new();
/// let x = gauss.sample_scaled(&mut rng, 0.0, 2.0); // N(0, 4)
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Default)]
pub struct GaussianSampler {
    spare: Option<f64>,
}

impl GaussianSampler {
    /// Creates a sampler with an empty spare slot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws one standard normal variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        loop {
            let u = rng.gen_range(-1.0f64..1.0);
            let v = rng.gen_range(-1.0f64..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Draws one `N(mean, sd²)` variate.
    ///
    /// # Panics
    ///
    /// Panics if `sd` is negative.
    pub fn sample_scaled<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, sd: f64) -> f64 {
        assert!(sd >= 0.0, "sample_scaled: sd={sd} must be non-negative");
        mean + sd * self.sample(rng)
    }

    /// Fills `out` with standard normal variates.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, out: &mut [f64]) {
        for o in out {
            *o = self.sample(rng);
        }
    }
}

/// Exact binomial sample `Bin(n, p)`.
///
/// Strategy: reduce to `p ≤ 1/2` by symmetry; use BINV sequential inversion
/// while `n·p ≤ 30` or `n ≤ 64`, otherwise split once through the median
/// order statistic (`U₍ᵢ₎ ~ Beta(i, n+1−i)`) and recurse on a half-size
/// subproblem. Expected depth is `O(log n)`, so even `Γ = 5·10⁴` costs only a
/// few dozen uniform/normal draws.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let x = npd_numerics::rng::binomial(&mut rng, 1000, 0.25);
/// assert!(x <= 1000);
/// ```
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "binomial: p={p} not in [0,1]");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    if p > 0.5 {
        return n - binomial(rng, n, 1.0 - p);
    }
    binomial_p_small(rng, n, p)
}

/// Binomial for `p ≤ 1/2`, recursive beta split until BINV applies.
fn binomial_p_small<R: Rng + ?Sized>(rng: &mut R, mut n: u64, mut p: f64) -> u64 {
    let mut acc = 0u64;
    loop {
        if n == 0 || p <= 0.0 {
            return acc;
        }
        if p >= 1.0 {
            return acc + n;
        }
        if p > 0.5 {
            // The split may push p above 1/2; flip by symmetry.
            return acc + n - binomial_p_small(rng, n, 1.0 - p);
        }
        if n <= 64 || (n as f64) * p <= 30.0 {
            return acc + binv(rng, n, p);
        }
        // Median split: the i-th order statistic of n uniforms is
        // Beta(i, n+1−i); conditioning on it halves the problem.
        let i = n / 2 + 1;
        let y = beta(rng, i as f64, (n + 1 - i) as f64);
        if p >= y {
            acc += i;
            n -= i;
            p = (p - y) / (1.0 - y);
        } else {
            n = i - 1;
            p /= y;
        }
    }
}

/// BINV sequential inversion for small `n·p` (Kachitvichyanukul–Schmeiser
/// baseline case). Requires `p ≤ 1/2` and small `n·p` so that `(1−p)^n`
/// does not underflow.
fn binv<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    debug_assert!(p <= 0.5);
    let q = 1.0 - p;
    let s = p / q;
    let a = (n + 1) as f64 * s;
    loop {
        let mut r = (n as f64 * q.ln()).exp();
        let mut u: f64 = rng.gen();
        let mut x = 0u64;
        loop {
            if u < r {
                return x;
            }
            u -= r;
            x += 1;
            if x > n {
                break; // numerical leakage: retry with a fresh uniform
            }
            r *= a / x as f64 - s;
        }
    }
}

/// Gamma sample with the given `shape` and `scale` (Marsaglia–Tsang).
///
/// # Panics
///
/// Panics if `shape` or `scale` is not positive.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let g = npd_numerics::rng::gamma(&mut rng, 2.5, 1.0);
/// assert!(g > 0.0);
/// ```
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    assert!(shape > 0.0, "gamma: shape={shape} must be positive");
    assert!(scale > 0.0, "gamma: scale={scale} must be positive");
    if shape < 1.0 {
        // Boost: Γ(a) = Γ(a+1) · U^{1/a}.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return gamma(rng, shape + 1.0, scale) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    let mut gauss = GaussianSampler::new();
    loop {
        let x = gauss.sample(rng);
        let t = 1.0 + c * x;
        if t <= 0.0 {
            continue;
        }
        let v = t * t * t;
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u < 1.0 - 0.0331 * x.powi(4) {
            return scale * d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return scale * d * v;
        }
    }
}

/// Beta sample `Beta(a, b)` via two gammas.
///
/// # Panics
///
/// Panics if `a` or `b` is not positive.
pub fn beta<R: Rng + ?Sized>(rng: &mut R, a: f64, b: f64) -> f64 {
    assert!(
        a > 0.0 && b > 0.0,
        "beta: shapes ({a}, {b}) must be positive"
    );
    let x = gamma(rng, a, 1.0);
    let y = gamma(rng, b, 1.0);
    // x + y > 0 almost surely; clamp pathological float cases into (0, 1).
    let r = x / (x + y);
    r.clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON)
}

/// Multinomial sample: `n` trials over the given probability vector, via
/// conditional binomials.
///
/// The probabilities must be non-negative; they are normalized internally, so
/// un-normalized weights are accepted.
///
/// # Panics
///
/// Panics if `probs` is empty, contains a negative entry, or sums to zero.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let counts = npd_numerics::rng::multinomial(&mut rng, 100, &[0.25, 0.25, 0.5]);
/// assert_eq!(counts.iter().sum::<u64>(), 100);
/// ```
pub fn multinomial<R: Rng + ?Sized>(rng: &mut R, n: u64, probs: &[f64]) -> Vec<u64> {
    assert!(!probs.is_empty(), "multinomial: empty probability vector");
    assert!(
        probs.iter().all(|&p| p >= 0.0),
        "multinomial: negative probability"
    );
    let total: f64 = probs.iter().sum();
    assert!(total > 0.0, "multinomial: probabilities sum to zero");
    let mut out = vec![0u64; probs.len()];
    let mut remaining = n;
    let mut mass_left = total;
    for (i, &p) in probs.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        if i + 1 == probs.len() {
            out[i] = remaining;
            break;
        }
        let cond = (p / mass_left).clamp(0.0, 1.0);
        let x = binomial(rng, remaining, cond);
        out[i] = x;
        remaining -= x;
        mass_left -= p;
        if mass_left <= 0.0 {
            break;
        }
    }
    out
}

/// Bernoulli trial with success probability `p`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    assert!((0.0..=1.0).contains(&p), "bernoulli: p={p} not in [0,1]");
    if p == 0.0 {
        false
    } else if p == 1.0 {
        true
    } else {
        rng.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut g = GaussianSampler::new();
        let xs: Vec<f64> = (0..200_000).map(|_| g.sample(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }

    #[test]
    fn gaussian_scaled_moments() {
        let mut rng = StdRng::seed_from_u64(43);
        let mut g = GaussianSampler::new();
        let xs: Vec<f64> = (0..100_000)
            .map(|_| g.sample_scaled(&mut rng, 3.0, 2.0))
            .collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 3.0).abs() < 0.03, "mean={mean}");
        assert!((var - 4.0).abs() < 0.1, "var={var}");
    }

    #[test]
    fn gaussian_tail_fraction() {
        // P(|X| > 1.96) ≈ 0.05.
        let mut rng = StdRng::seed_from_u64(44);
        let mut g = GaussianSampler::new();
        let hits = (0..100_000)
            .filter(|_| g.sample(&mut rng).abs() > 1.959964)
            .count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.05).abs() < 0.005, "frac={frac}");
    }

    #[test]
    fn gaussian_fill_length() {
        let mut rng = StdRng::seed_from_u64(45);
        let mut g = GaussianSampler::new();
        let mut buf = vec![0.0; 7];
        g.fill(&mut rng, &mut buf);
        assert!(buf.iter().all(|v| v.is_finite()));
        assert!(buf.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn binomial_degenerate_cases() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(binomial(&mut rng, 10, 1.0), 10);
    }

    #[test]
    fn binomial_small_n_moments() {
        let mut rng = StdRng::seed_from_u64(46);
        let (n, p) = (20u64, 0.3);
        let xs: Vec<f64> = (0..100_000)
            .map(|_| binomial(&mut rng, n, p) as f64)
            .collect();
        let (mean, var) = moments(&xs);
        assert!((mean - n as f64 * p).abs() < 0.05, "mean={mean}");
        assert!((var - n as f64 * p * (1.0 - p)).abs() < 0.1, "var={var}");
    }

    #[test]
    fn binomial_large_n_moments() {
        // Exercises the recursive beta-split path: n·p = 25 000 ≫ 30.
        let mut rng = StdRng::seed_from_u64(47);
        let (n, p) = (50_000u64, 0.5);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| binomial(&mut rng, n, p) as f64)
            .collect();
        let (mean, var) = moments(&xs);
        let want_mean = n as f64 * p;
        let want_var = n as f64 * p * (1.0 - p);
        assert!(
            (mean - want_mean).abs() < 3.0,
            "mean={mean}, want≈{want_mean}"
        );
        assert!(
            (var / want_var - 1.0).abs() < 0.05,
            "var={var}, want≈{want_var}"
        );
    }

    #[test]
    fn binomial_large_n_small_p_moments() {
        // Large n with tiny p exercises the split-then-BINV transition.
        let mut rng = StdRng::seed_from_u64(48);
        let (n, p) = (100_000u64, 1e-3);
        let xs: Vec<f64> = (0..50_000)
            .map(|_| binomial(&mut rng, n, p) as f64)
            .collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 100.0).abs() < 0.5, "mean={mean}");
        assert!((var / 99.9 - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn binomial_symmetry_high_p() {
        let mut rng = StdRng::seed_from_u64(49);
        let xs: Vec<f64> = (0..50_000)
            .map(|_| binomial(&mut rng, 100, 0.9) as f64)
            .collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 90.0).abs() < 0.1, "mean={mean}");
        assert!((var - 9.0).abs() < 0.3, "var={var}");
    }

    #[test]
    fn binomial_exact_distribution_small_case() {
        // Chi-square-style check against the exact pmf for Bin(5, 0.4).
        let mut rng = StdRng::seed_from_u64(50);
        let trials = 200_000usize;
        let mut counts = [0usize; 6];
        for _ in 0..trials {
            counts[binomial(&mut rng, 5, 0.4) as usize] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let want = crate::special::ln_binomial_pmf(5, 0.4, k as u64).exp();
            let got = c as f64 / trials as f64;
            assert!(
                (got - want).abs() < 0.005,
                "k={k}: got {got:.4}, want {want:.4}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "not in [0,1]")]
    fn binomial_rejects_bad_p() {
        let mut rng = StdRng::seed_from_u64(0);
        binomial(&mut rng, 5, 1.5);
    }

    #[test]
    fn gamma_moments() {
        let mut rng = StdRng::seed_from_u64(51);
        let (shape, scale) = (3.0, 2.0);
        let xs: Vec<f64> = (0..100_000)
            .map(|_| gamma(&mut rng, shape, scale))
            .collect();
        let (mean, var) = moments(&xs);
        assert!((mean - shape * scale).abs() < 0.05, "mean={mean}");
        assert!(
            (var - shape * scale * scale).abs() < 0.3,
            "var={var} want {}",
            shape * scale * scale
        );
    }

    #[test]
    fn gamma_small_shape() {
        let mut rng = StdRng::seed_from_u64(52);
        let xs: Vec<f64> = (0..100_000).map(|_| gamma(&mut rng, 0.5, 1.0)).collect();
        let (mean, _) = moments(&xs);
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn beta_moments() {
        let mut rng = StdRng::seed_from_u64(53);
        let (a, b) = (2.0, 5.0);
        let xs: Vec<f64> = (0..100_000).map(|_| beta(&mut rng, a, b)).collect();
        let (mean, var) = moments(&xs);
        let want_mean = a / (a + b);
        let want_var = a * b / ((a + b).powi(2) * (a + b + 1.0));
        assert!((mean - want_mean).abs() < 0.005, "mean={mean}");
        assert!((var - want_var).abs() < 0.002, "var={var}");
        assert!(xs.iter().all(|&x| x > 0.0 && x < 1.0));
    }

    #[test]
    fn multinomial_sums_and_moments() {
        let mut rng = StdRng::seed_from_u64(54);
        let probs = [0.1, 0.2, 0.3, 0.4];
        let trials = 20_000;
        let n = 100u64;
        let mut totals = [0u64; 4];
        for _ in 0..trials {
            let draw = multinomial(&mut rng, n, &probs);
            assert_eq!(draw.iter().sum::<u64>(), n);
            for (t, d) in totals.iter_mut().zip(&draw) {
                *t += d;
            }
        }
        for (i, &t) in totals.iter().enumerate() {
            let got = t as f64 / (trials as f64 * n as f64);
            assert!((got - probs[i]).abs() < 0.005, "bucket {i}: {got}");
        }
    }

    #[test]
    fn multinomial_unnormalized_weights() {
        let mut rng = StdRng::seed_from_u64(55);
        let draw = multinomial(&mut rng, 1000, &[1.0, 1.0]);
        assert_eq!(draw.iter().sum::<u64>(), 1000);
        assert!((draw[0] as f64 - 500.0).abs() < 100.0);
    }

    #[test]
    fn multinomial_zero_trials() {
        let mut rng = StdRng::seed_from_u64(56);
        assert_eq!(multinomial(&mut rng, 0, &[0.5, 0.5]), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn multinomial_rejects_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        multinomial(&mut rng, 5, &[]);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = StdRng::seed_from_u64(57);
        let hits = (0..100_000).filter(|_| bernoulli(&mut rng, 0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn bernoulli_degenerate() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(!bernoulli(&mut rng, 0.0));
        assert!(bernoulli(&mut rng, 1.0));
    }

    #[test]
    fn determinism_with_equal_seeds() {
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut g = GaussianSampler::new();
            (
                binomial(&mut rng, 10_000, 0.37),
                g.sample(&mut rng),
                gamma(&mut rng, 4.0, 0.5),
            )
        };
        assert_eq!(format!("{:?}", draw(99)), format!("{:?}", draw(99)));
        assert_ne!(format!("{:?}", draw(99)), format!("{:?}", draw(100)));
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn binomial_in_range(seed in 0u64..200, n in 0u64..200_000, p in 0.0f64..=1.0) {
                let mut rng = StdRng::seed_from_u64(seed);
                let x = binomial(&mut rng, n, p);
                prop_assert!(x <= n);
            }

            #[test]
            fn gamma_positive(seed in 0u64..200, shape in 0.01f64..20.0, scale in 0.01f64..10.0) {
                let mut rng = StdRng::seed_from_u64(seed);
                prop_assert!(gamma(&mut rng, shape, scale) > 0.0);
            }

            #[test]
            fn beta_in_unit_interval(seed in 0u64..200, a in 0.1f64..20.0, b in 0.1f64..20.0) {
                let mut rng = StdRng::seed_from_u64(seed);
                let x = beta(&mut rng, a, b);
                prop_assert!(x > 0.0 && x < 1.0);
            }

            #[test]
            fn multinomial_total(seed in 0u64..200, n in 0u64..10_000) {
                let mut rng = StdRng::seed_from_u64(seed);
                let draw = multinomial(&mut rng, n, &[0.2, 0.3, 0.5]);
                prop_assert_eq!(draw.iter().sum::<u64>(), n);
            }
        }
    }
}
