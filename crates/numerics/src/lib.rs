//! Thin numerics layer for the noisy-pooled-data reproduction.
//!
//! This crate provides exactly the numerical substrate the rest of the
//! workspace needs, implemented from scratch so the reproduction has no
//! dependency on heavyweight linear-algebra or distribution crates:
//!
//! * [`vector`] — operations on `f64` slices (dot products, norms, axpy).
//! * [`matrix`] — a dense row-major matrix with forward and transposed
//!   matrix–vector products, as needed by the AMP baseline.
//! * [`linalg`] — small `d × d` decompositions (Cholesky, LU solve,
//!   inverse) for the categorical matrix-AMP layer.
//! * [`sparse`] — a compressed sparse row (CSR) matrix for pooling graphs.
//! * [`rng`] — exact samplers for the Gaussian, binomial, multinomial, beta
//!   and gamma distributions on top of any [`rand::Rng`] uniform source.
//! * [`stats`] — streaming moments, quantiles, and five-number summaries
//!   (box plots) used by the experiment harness.
//! * [`special`] — `erf`/`erfc`, the standard normal CDF and quantile, and
//!   log-gamma/log-choose helpers used by the theory crate and tests.
//!
//! # Examples
//!
//! ```
//! use npd_numerics::{rng::GaussianSampler, stats::Summary};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut gauss = GaussianSampler::new();
//! let draws: Vec<f64> = (0..10_000).map(|_| gauss.sample(&mut rng)).collect();
//! let summary = Summary::from_slice(&draws);
//! assert!(summary.mean.abs() < 0.05);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod linalg;
pub mod matrix;
pub mod rng;
pub mod sparse;
pub mod special;
pub mod stats;
pub mod vector;

pub use matrix::Matrix;
pub use sparse::CsrMatrix;

/// Work threshold (in floating-point multiply-adds) below which the
/// parallel matrix–vector products fall back to their sequential loops.
///
/// Splitting a product across threads pays thread-pool latency in the tens
/// of microseconds; at ~64k flops the sequential loop finishes faster than
/// the fork-join overhead, so smaller products stay inline. Row-level
/// parallelism never splits an individual accumulation, so results are
/// bit-identical either way — the threshold is purely a performance knob.
pub const PAR_FLOP_THRESHOLD: usize = 1 << 16;
