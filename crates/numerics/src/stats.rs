//! Summary statistics for the experiment harness.
//!
//! Figure 5 of the paper reports box plots of the required number of queries,
//! and Figures 2–4 report per-configuration medians; this module provides the
//! corresponding estimators: streaming moments ([`Welford`]), order-statistic
//! quantiles ([`quantile`]), and the five-number summary ([`BoxPlot`]).

use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long runs; used by the parallel trial runner to
/// accumulate statistics without retaining every sample.
///
/// # Examples
///
/// ```
/// use npd_numerics::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert!((w.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`0.0` with fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (`0.0` when empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_sd(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
    }
}

/// Quantile of a sample using linear interpolation between order statistics
/// (the "type 7" estimator, the default in R and NumPy).
///
/// # Panics
///
/// Panics if `data` is empty or `q` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use npd_numerics::stats::quantile;
/// let data = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&data, 0.5), 2.5);
/// assert_eq!(quantile(&data, 0.0), 1.0);
/// assert_eq!(quantile(&data, 1.0), 4.0);
/// ```
pub fn quantile(data: &[f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile: empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile: q={q} not in [0,1]");
    let mut sorted = data.to_vec();
    #[allow(clippy::expect_used)]
    // xtask:allow(unwrap-audit): documented panic contract — a NaN sample is a caller bug, not a degradable state
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("quantile: NaN in sample"));
    quantile_sorted(&sorted, q)
}

/// [`quantile`] on data that is already sorted ascending (no copy).
///
/// # Panics
///
/// Panics if `data` is empty or `q` is outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile_sorted: empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile_sorted: q out of range");
    let h = (sorted.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = h - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median shortcut.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn median(data: &[f64]) -> f64 {
    quantile(data, 0.5)
}

/// Five-number summary backing one box in a box plot (Figure 5).
///
/// `whisker_low`/`whisker_high` follow the Tukey convention: the most extreme
/// data points within 1.5·IQR of the quartiles; points beyond are outliers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxPlot {
    /// Smallest observation.
    pub min: f64,
    /// Lower whisker (Tukey).
    pub whisker_low: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker (Tukey).
    pub whisker_high: f64,
    /// Largest observation.
    pub max: f64,
    /// Observations beyond the whiskers.
    pub outliers: Vec<f64>,
    /// Sample size.
    pub count: usize,
}

impl BoxPlot {
    /// Computes the summary from a sample.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or contains NaN.
    pub fn from_slice(data: &[f64]) -> Self {
        assert!(!data.is_empty(), "BoxPlot: empty sample");
        let mut sorted = data.to_vec();
        #[allow(clippy::expect_used)]
        // xtask:allow(unwrap-audit): documented panic contract — a NaN sample is a caller bug, not a degradable state
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("BoxPlot: NaN in sample"));
        let q1 = quantile_sorted(&sorted, 0.25);
        let med = quantile_sorted(&sorted, 0.5);
        let q3 = quantile_sorted(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        // Farthest data point within the fence, clamped to the quartile if
        // every point on that side lies beyond it (matplotlib's convention —
        // interpolated quartiles can exceed all non-outlier data on very
        // small samples).
        let whisker_low = sorted
            .iter()
            .copied()
            .find(|&x| x >= lo_fence)
            .unwrap_or(sorted[0])
            .min(q1);
        let whisker_high = sorted
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .unwrap_or(sorted[sorted.len() - 1])
            .max(q3);
        let outliers = sorted
            .iter()
            .copied()
            .filter(|&x| x < lo_fence || x > hi_fence)
            .collect();
        Self {
            min: sorted[0],
            whisker_low,
            q1,
            median: med,
            q3,
            whisker_high,
            max: sorted[sorted.len() - 1],
            outliers,
            count: sorted.len(),
        }
    }
}

/// Basic sample summary: count, mean, standard deviation, min, median, max.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub sd: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary from a sample.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or contains NaN.
    pub fn from_slice(data: &[f64]) -> Self {
        assert!(!data.is_empty(), "Summary: empty sample");
        let mut w = Welford::new();
        for &x in data {
            w.push(x);
        }
        let mut sorted = data.to_vec();
        #[allow(clippy::expect_used)]
        // xtask:allow(unwrap-audit): documented panic contract — a NaN sample is a caller bug, not a degradable state
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("Summary: NaN in sample"));
        Self {
            count: data.len(),
            mean: w.mean(),
            sd: w.sample_sd(),
            min: sorted[0],
            median: quantile_sorted(&sorted, 0.5),
            max: sorted[sorted.len() - 1],
        }
    }
}

/// Equal-width histogram over `[lo, hi)` with overflow/underflow folded into
/// the edge bins; used by diagnostic output in the experiment harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "Histogram: need at least one bin");
        assert!(lo < hi, "Histogram: lo={lo} must be below hi={hi}");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
        }
    }

    /// Adds one observation, clamping to the edge bins.
    pub fn push(&mut self, x: f64) {
        let n = self.bins.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * n as f64).floor() as i64).clamp(0, n as i64 - 1) as usize;
        self.bins[idx] += 1;
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn welford_matches_two_pass() {
        let data = [1.5, 2.5, 3.5, 10.0, -4.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.sample_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        w.push(5.0);
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.mean(), 3.0);
        let empty = Welford::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn quantile_interpolates() {
        let data = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile(&data, 0.5), 30.0);
        assert_eq!(quantile(&data, 0.25), 20.0);
        assert_eq!(quantile(&data, 0.1), 14.0);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[7.0], 0.0), 7.0);
        assert_eq!(quantile(&[7.0], 1.0), 7.0);
        assert_eq!(quantile(&[7.0], 0.33), 7.0);
    }

    #[test]
    fn quantile_unsorted_input() {
        let data = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&data, 0.5), 2.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[1.0, 3.0, 2.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn boxplot_no_outliers() {
        let data: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let bp = BoxPlot::from_slice(&data);
        assert_eq!(bp.median, 5.0);
        assert_eq!(bp.q1, 3.0);
        assert_eq!(bp.q3, 7.0);
        assert_eq!(bp.min, 1.0);
        assert_eq!(bp.max, 9.0);
        assert!(bp.outliers.is_empty());
        assert_eq!(bp.whisker_low, 1.0);
        assert_eq!(bp.whisker_high, 9.0);
    }

    #[test]
    fn boxplot_detects_outlier() {
        let mut data: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        data.push(100.0);
        let bp = BoxPlot::from_slice(&data);
        assert_eq!(bp.outliers, vec![100.0]);
        assert_eq!(bp.max, 100.0);
        assert!(bp.whisker_high < 100.0);
    }

    #[test]
    fn boxplot_constant_sample() {
        let bp = BoxPlot::from_slice(&[5.0; 10]);
        assert_eq!(bp.median, 5.0);
        assert_eq!(bp.q1, 5.0);
        assert_eq!(bp.q3, 5.0);
        assert!(bp.outliers.is_empty());
    }

    #[test]
    fn summary_basic() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 9.9, -3.0, 42.0] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[3, 0, 0, 0, 2]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    proptest! {
        /// Quantiles are monotone in q and bounded by the extremes.
        #[test]
        fn quantile_monotone(
            mut data in proptest::collection::vec(-1e6f64..1e6, 1..200),
            q1 in 0.0f64..=1.0,
            q2 in 0.0f64..=1.0,
        ) {
            data.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = (q1.min(q2), q1.max(q2));
            let v_lo = quantile_sorted(&data, lo);
            let v_hi = quantile_sorted(&data, hi);
            prop_assert!(v_lo <= v_hi + 1e-9);
            prop_assert!(v_lo >= data[0] - 1e-9);
            prop_assert!(v_hi <= data[data.len() - 1] + 1e-9);
        }

        /// BoxPlot invariants: min ≤ whisker_low ≤ q1 ≤ median ≤ q3 ≤ whisker_high ≤ max.
        #[test]
        fn boxplot_ordering(data in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
            let bp = BoxPlot::from_slice(&data);
            prop_assert!(bp.min <= bp.whisker_low + 1e-9);
            prop_assert!(bp.whisker_low <= bp.q1 + 1e-9);
            prop_assert!(bp.q1 <= bp.median + 1e-9);
            prop_assert!(bp.median <= bp.q3 + 1e-9);
            prop_assert!(bp.q3 <= bp.whisker_high + 1e-9);
            prop_assert!(bp.whisker_high <= bp.max + 1e-9);
            prop_assert_eq!(bp.count, data.len());
        }

        /// Welford merge is associative with sequential accumulation.
        #[test]
        fn welford_merge_property(
            a in proptest::collection::vec(-1e3f64..1e3, 0..50),
            b in proptest::collection::vec(-1e3f64..1e3, 0..50),
        ) {
            let mut seq = Welford::new();
            for &x in a.iter().chain(&b) { seq.push(x); }
            let mut wa = Welford::new();
            for &x in &a { wa.push(x); }
            let mut wb = Welford::new();
            for &x in &b { wb.push(x); }
            wa.merge(&wb);
            prop_assert_eq!(wa.count(), seq.count());
            prop_assert!((wa.mean() - seq.mean()).abs() < 1e-6);
            prop_assert!((wa.sample_variance() - seq.sample_variance()).abs() < 1e-6);
        }
    }
}
