//! Dense row-major matrix with the products needed by AMP.
//!
//! The AMP baseline iterates `z = y − Ax + …` and `v = Aᵀz + x`, so the only
//! operations required are the forward product [`Matrix::matvec`] and the
//! transposed product [`Matrix::matvec_t`], plus element-wise construction
//! helpers. The matrix itself stays minimal; the small `d × d`
//! decompositions the categorical matrix-AMP layer needs (Cholesky, LU
//! solve, inverse) live in [`crate::linalg`].

use serde::{Deserialize, Serialize};

/// Dense row-major `rows × cols` matrix of `f64`.
///
/// # Examples
///
/// ```
/// use npd_numerics::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
/// assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// assert_eq!(a.matvec_t(&[1.0, 1.0]), vec![4.0, 6.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        #[allow(clippy::expect_used)]
        let len = rows
            .checked_mul(cols)
            // xtask:allow(unwrap-audit): documented panic contract; an overflowing shape has no representable buffer to fall back to
            .expect("Matrix::zeros: dimension overflow");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "Matrix::get out of bounds");
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "Matrix::get_mut out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "Matrix::row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "Matrix::row_mut out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Raw row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Forward product `A·x`.
    ///
    /// Allocates the output; hot paths should prefer [`Matrix::matvec_into`]
    /// with a reused buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x, &mut out);
        out
    }

    /// Allocation-free forward product `out ← A·x`.
    ///
    /// Rows are processed in parallel (in row chunks) above
    /// [`crate::PAR_FLOP_THRESHOLD`] flops; each output element is a single
    /// sequential dot product, so the result is bit-identical to the
    /// sequential path at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `out.len() != rows`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: length mismatch");
        assert_eq!(out.len(), self.rows, "matvec: output length mismatch");
        let flops = self.rows * self.cols;
        let threads = rayon::current_num_threads();
        if threads <= 1 || flops < crate::PAR_FLOP_THRESHOLD {
            for (r, o) in out.iter_mut().enumerate() {
                *o = crate::vector::dot(self.row(r), x);
            }
            return;
        }
        use rayon::prelude::*;
        let chunk = self.rows.div_ceil(threads * 4).max(1);
        let cols = self.cols;
        let data = &self.data;
        out.par_chunks_mut(chunk).enumerate().for_each(|(ci, o)| {
            let base = ci * chunk;
            for (i, oi) in o.iter_mut().enumerate() {
                let r = base + i;
                *oi = crate::vector::dot(&data[r * cols..(r + 1) * cols], x);
            }
        });
    }

    /// Transposed product `Aᵀ·x`.
    ///
    /// Allocates the output; hot paths should prefer
    /// [`Matrix::matvec_t_into`] with a reused buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        self.matvec_t_into(x, &mut out);
        out
    }

    /// Allocation-free transposed product `out ← Aᵀ·x`.
    ///
    /// Sequential: the row-major scatter accumulates into every output
    /// element across rows, and the experiment determinism contract forbids
    /// reordering floating-point accumulations. Callers needing a parallel
    /// transposed product should hold an explicitly transposed matrix (as
    /// the AMP preprocessing does with its cached transposed CSR).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `out.len() != cols`.
    pub fn matvec_t_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "matvec_t: length mismatch");
        assert_eq!(out.len(), self.cols, "matvec_t: output length mismatch");
        out.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            crate::vector::axpy(xr, self.row(r), out);
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place<F: FnMut(f64) -> f64>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        crate::vector::norm2(&self.data)
    }

    /// Mean of each column, as a length-`cols` vector.
    pub fn col_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for r in 0..self.rows {
            crate::vector::axpy(1.0, self.row(r), &mut means);
        }
        if self.rows > 0 {
            crate::vector::scale(1.0 / self.rows as f64, &mut means);
        }
        means
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]])
    }

    #[test]
    fn shape_and_access() {
        let m = sample();
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn zeros_is_all_zero() {
        let m = Matrix::zeros(3, 2);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(m.as_slice().len(), 6);
    }

    #[test]
    fn get_mut_writes_through() {
        let mut m = Matrix::zeros(2, 2);
        *m.get_mut(0, 1) = 7.0;
        assert_eq!(m.get(0, 1), 7.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        sample().get(2, 0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_wrong_len_panics() {
        Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        Matrix::from_rows(&[&[1.0][..], &[1.0, 2.0][..]]);
    }

    #[test]
    fn matvec_hand_computed() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_hand_computed() {
        let m = sample();
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn into_variants_match_allocating_products() {
        let m = sample();
        let mut fwd = vec![9.0; 2];
        m.matvec_into(&[1.0, 0.0, -1.0], &mut fwd);
        assert_eq!(fwd, vec![-2.0, -2.0]);
        let mut t = vec![9.0; 3];
        m.matvec_t_into(&[1.0, 1.0], &mut t);
        assert_eq!(t, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn parallel_matvec_is_bit_identical_to_sequential() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let (rows, cols) = (300, 300); // 90k flops: above PAR_FLOP_THRESHOLD
        let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let m = Matrix::from_vec(rows, cols, data);
        let x: Vec<f64> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let seq: Vec<f64> = (0..rows)
            .map(|r| crate::vector::dot(m.row(r), &x))
            .collect();
        for threads in [2usize, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let par = pool.install(|| m.matvec(&x));
            assert!(
                par.iter()
                    .zip(&seq)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "threads={threads}: parallel product differs"
            );
        }
    }

    #[test]
    fn map_in_place_applies_function() {
        let mut m = sample();
        m.map_in_place(|v| v * 2.0);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    fn frobenius_norm_matches_flat_norm() {
        let m = sample();
        let expected = (1.0f64 + 4.0 + 9.0 + 16.0 + 25.0 + 36.0).sqrt();
        assert!((m.frobenius_norm() - expected).abs() < 1e-12);
    }

    #[test]
    fn col_means_average_rows() {
        let m = sample();
        assert_eq!(m.col_means(), vec![2.5, 3.5, 4.5]);
    }

    #[test]
    fn col_means_of_empty_matrix() {
        let m = Matrix::zeros(0, 3);
        assert_eq!(m.col_means(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn serde_roundtrip() {
        let m = sample();
        let json = serde_json_like(&m);
        // serde round-trip via the bincode-free path: use serde internals is
        // overkill; cloning through Serialize/Deserialize with a tiny format
        // is unnecessary — structural equality after clone suffices here.
        assert_eq!(json, serde_json_like(&m.clone()));
    }

    fn serde_json_like(m: &Matrix) -> String {
        format!("{:?}", m)
    }

    proptest! {
        /// `⟨Ax, y⟩ = ⟨x, Aᵀy⟩` — the adjoint identity ties `matvec` and
        /// `matvec_t` together; a bug in either breaks it.
        #[test]
        fn adjoint_identity(
            rows in 1usize..8,
            cols in 1usize..8,
            seed in 0u64..1000,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let a = Matrix::from_vec(rows, cols, data);
            let x: Vec<f64> = (0..cols).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let y: Vec<f64> = (0..rows).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let lhs = crate::vector::dot(&a.matvec(&x), &y);
            let rhs = crate::vector::dot(&x, &a.matvec_t(&y));
            prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
        }
    }
}
