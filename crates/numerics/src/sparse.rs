//! Compressed sparse row (CSR) matrix.
//!
//! The pooling design is a bipartite multigraph whose biadjacency matrix has
//! one row per query and one column per agent; the entry is the edge
//! multiplicity. Queries contain `Γ = n/2` slots, so roughly `1 − e^{−1/2}`
//! of the columns appear per row — sparse at small query counts, and still
//! far cheaper than dense storage for the transposed products AMP needs.

use serde::{Deserialize, Serialize};

/// CSR matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use npd_numerics::CsrMatrix;
///
/// // [[1, 0, 2],
/// //  [0, 3, 0]]
/// let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]);
/// assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
/// assert_eq!(m.nnz(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointers, length `rows + 1`.
    row_ptr: Vec<usize>,
    /// Column indices, length `nnz`, strictly increasing within a row.
    col_idx: Vec<u32>,
    /// Values, length `nnz`.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate `(row, col)` entries are summed, which is exactly what a
    /// multigraph biadjacency needs: each repeated slot adds 1 to the
    /// multiplicity.
    ///
    /// # Panics
    ///
    /// Panics if any triplet is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(
                r < rows && c < cols,
                "CsrMatrix::from_triplets: entry ({r},{c}) out of bounds for {rows}x{cols}"
            );
        }
        // Count entries per row, then bucket-sort triplets by row.
        let mut counts = vec![0usize; rows + 1];
        for &(r, _, _) in triplets {
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let mut by_row: Vec<(usize, f64)> = vec![(0, 0.0); triplets.len()];
        let mut next = counts.clone();
        for &(r, c, v) in triplets {
            by_row[next[r]] = (c, v);
            next[r] += 1;
        }
        // Within each row: sort by column and merge duplicates.
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        row_ptr.push(0);
        for r in 0..rows {
            let seg = &mut by_row[counts[r]..counts[r + 1]];
            seg.sort_unstable_by_key(|&(c, _)| c);
            let mut iter = seg.iter().copied().peekable();
            while let Some((c, mut v)) = iter.next() {
                while let Some(&(c2, v2)) = iter.peek() {
                    if c2 == c {
                        v += v2;
                        iter.next();
                    } else {
                        break;
                    }
                }
                col_idx.push(c as u32);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The stored entries of row `r` as parallel `(columns, values)` slices.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        assert!(r < self.rows, "CsrMatrix::row out of bounds");
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Value at `(r, c)`, zero if not stored.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "CsrMatrix::get out of bounds"
        );
        let (cols, vals) = self.row(r);
        match cols.binary_search(&(c as u32)) {
            Ok(i) => vals[i],
            Err(_) => 0.0,
        }
    }

    /// Forward product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "CsrMatrix::matvec: length mismatch");
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                acc += v * x[*c as usize];
            }
            *o = acc;
        }
        out
    }

    /// Transposed product `Aᵀ·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "CsrMatrix::matvec_t: length mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                out[*c as usize] += v * xr;
            }
        }
        out
    }

    /// Densifies into a [`crate::Matrix`] (intended for tests and small
    /// instances only).
    pub fn to_dense(&self) -> crate::Matrix {
        let mut m = crate::Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                *m.get_mut(r, *c as usize) = *v;
            }
        }
        m
    }

    /// Sum of all stored values (for a multigraph biadjacency: total number
    /// of edge slots, i.e. `m·Γ`).
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            4,
            &[
                (0, 1, 2.0),
                (0, 3, 1.0),
                (1, 0, 5.0),
                (2, 2, -1.0),
                (2, 0, 4.0),
            ],
        )
    }

    #[test]
    fn shape_and_nnz() {
        let m = sample();
        assert_eq!((m.rows(), m.cols(), m.nnz()), (3, 4, 5));
    }

    #[test]
    fn get_stored_and_missing() {
        let m = sample();
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(2, 0), 4.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(1, 2, &[(0, 1, 1.0), (0, 1, 1.0), (0, 1, 1.0)]);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn rows_are_sorted_by_column() {
        let m = sample();
        let (cols, _) = m.row(2);
        assert_eq!(cols, &[0, 2]);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = CsrMatrix::from_triplets(2, 2, &[]);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn triplet_out_of_bounds_panics() {
        CsrMatrix::from_triplets(1, 1, &[(0, 1, 1.0)]);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let d = m.to_dense();
        let x = [1.0, -1.0, 0.5, 2.0];
        assert_eq!(m.matvec(&x), d.matvec(&x));
    }

    #[test]
    fn matvec_t_matches_dense() {
        let m = sample();
        let d = m.to_dense();
        let x = [1.0, -1.0, 0.5];
        assert_eq!(m.matvec_t(&x), d.matvec_t(&x));
    }

    #[test]
    fn sum_counts_all_slots() {
        assert_eq!(sample().sum(), 11.0);
    }

    proptest! {
        /// CSR and dense products agree on random multigraph-like matrices.
        #[test]
        fn csr_equals_dense(
            rows in 1usize..10,
            cols in 1usize..10,
            seed in 0u64..500,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let nnz = rng.gen_range(0..rows * cols * 2);
            let triplets: Vec<(usize, usize, f64)> = (0..nnz)
                .map(|_| (rng.gen_range(0..rows), rng.gen_range(0..cols), 1.0))
                .collect();
            let m = CsrMatrix::from_triplets(rows, cols, &triplets);
            let d = m.to_dense();
            let x: Vec<f64> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let y: Vec<f64> = (0..rows).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let fwd_sparse = m.matvec(&x);
            let fwd_dense = d.matvec(&x);
            for (a, b) in fwd_sparse.iter().zip(&fwd_dense) {
                prop_assert!((a - b).abs() < 1e-9);
            }
            let t_sparse = m.matvec_t(&y);
            let t_dense = d.matvec_t(&y);
            for (a, b) in t_sparse.iter().zip(&t_dense) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }

        /// Triplet duplicate-merge preserves the total sum.
        #[test]
        fn sum_is_preserved(seed in 0u64..500) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let triplets: Vec<(usize, usize, f64)> = (0..rng.gen_range(0..50))
                .map(|_| (rng.gen_range(0..5), rng.gen_range(0..5), rng.gen_range(0.0..2.0)))
                .collect();
            let total: f64 = triplets.iter().map(|t| t.2).sum();
            let m = CsrMatrix::from_triplets(5, 5, &triplets);
            prop_assert!((m.sum() - total).abs() < 1e-9);
        }
    }
}
