//! Compressed sparse row (CSR) matrix.
//!
//! The pooling design is a bipartite multigraph whose biadjacency matrix has
//! one row per query and one column per agent; the entry is the edge
//! multiplicity. Queries contain `Γ = n/2` slots, so roughly `1 − e^{−1/2}`
//! of the columns appear per row — sparse at small query counts, and still
//! far cheaper than dense storage for the transposed products AMP needs.

use serde::{Deserialize, Serialize};

/// CSR matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use npd_numerics::CsrMatrix;
///
/// // [[1, 0, 2],
/// //  [0, 3, 0]]
/// let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]);
/// assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
/// assert_eq!(m.nnz(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointers, length `rows + 1`.
    row_ptr: Vec<usize>,
    /// Column indices, length `nnz`, strictly increasing within a row.
    col_idx: Vec<u32>,
    /// Values, length `nnz`.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate `(row, col)` entries are summed, which is exactly what a
    /// multigraph biadjacency needs: each repeated slot adds 1 to the
    /// multiplicity.
    ///
    /// # Panics
    ///
    /// Panics if any triplet is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(
                r < rows && c < cols,
                "CsrMatrix::from_triplets: entry ({r},{c}) out of bounds for {rows}x{cols}"
            );
        }
        // Count entries per row, then bucket-sort triplets by row.
        let mut counts = vec![0usize; rows + 1];
        for &(r, _, _) in triplets {
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let mut by_row: Vec<(usize, f64)> = vec![(0, 0.0); triplets.len()];
        let mut next = counts.clone();
        for &(r, c, v) in triplets {
            by_row[next[r]] = (c, v);
            next[r] += 1;
        }
        // Within each row: sort by column and merge duplicates.
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        row_ptr.push(0);
        for r in 0..rows {
            let seg = &mut by_row[counts[r]..counts[r + 1]];
            seg.sort_unstable_by_key(|&(c, _)| c);
            let mut iter = seg.iter().copied().peekable();
            while let Some((c, mut v)) = iter.next() {
                while let Some(&(c2, v2)) = iter.peek() {
                    if c2 == c {
                        v += v2;
                        iter.next();
                    } else {
                        break;
                    }
                }
                col_idx.push(c as u32);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds a CSR matrix directly from per-row entry lists whose columns
    /// are already strictly increasing (the natural form of the pooling
    /// design's run-length-encoded queries).
    ///
    /// Skips the triplet bucket-sort entirely — on paper-scale designs
    /// (millions of entries) this is an order of magnitude faster than
    /// [`CsrMatrix::from_triplets`] and is what keeps AMP's
    /// build-once-per-run preprocessing cheap.
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of bounds or a row's columns are
    /// not strictly increasing.
    pub fn from_sorted_rows<I, R>(rows: usize, cols: usize, row_entries: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: IntoIterator<Item = (u32, f64)>,
    {
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx: Vec<u32> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        row_ptr.push(0);
        for row in row_entries {
            let start = col_idx.len();
            for (c, v) in row {
                assert!(
                    (c as usize) < cols,
                    "CsrMatrix::from_sorted_rows: column {c} out of bounds for {cols}"
                );
                assert!(
                    col_idx.len() == start || col_idx.last().is_some_and(|&last| last < c),
                    "CsrMatrix::from_sorted_rows: columns must be strictly increasing"
                );
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        assert_eq!(
            row_ptr.len(),
            rows + 1,
            "CsrMatrix::from_sorted_rows: expected {rows} rows, got {}",
            row_ptr.len() - 1
        );
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The stored entries of row `r` as parallel `(columns, values)` slices.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        assert!(r < self.rows, "CsrMatrix::row out of bounds");
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Value at `(r, c)`, zero if not stored.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "CsrMatrix::get out of bounds"
        );
        let (cols, vals) = self.row(r);
        match cols.binary_search(&(c as u32)) {
            Ok(i) => vals[i],
            Err(_) => 0.0,
        }
    }

    /// Forward product `A·x`.
    ///
    /// Allocates the output; hot paths should prefer
    /// [`CsrMatrix::matvec_into`] with a reused buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x, &mut out);
        out
    }

    /// Allocation-free forward product `out ← A·x`.
    ///
    /// Rows are processed in parallel (in row chunks) above
    /// [`crate::PAR_FLOP_THRESHOLD`] stored entries; each output element is
    /// one sequential gather over its row, so the result is bit-identical
    /// to the sequential path at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `out.len() != rows`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "CsrMatrix::matvec: length mismatch");
        assert_eq!(
            out.len(),
            self.rows,
            "CsrMatrix::matvec: output length mismatch"
        );
        let threads = rayon::current_num_threads();
        if threads <= 1 || self.nnz() < crate::PAR_FLOP_THRESHOLD {
            for (r, o) in out.iter_mut().enumerate() {
                *o = self.row_dot(r, x);
            }
            return;
        }
        use rayon::prelude::*;
        let chunk = self.rows.div_ceil(threads * 4).max(1);
        out.par_chunks_mut(chunk).enumerate().for_each(|(ci, o)| {
            let base = ci * chunk;
            for (i, oi) in o.iter_mut().enumerate() {
                *oi = self.row_dot(base + i, x);
            }
        });
    }

    #[inline]
    fn row_dot(&self, r: usize, x: &[f64]) -> f64 {
        let (cols, vals) = self.row(r);
        let mut acc = 0.0;
        for (c, v) in cols.iter().zip(vals) {
            acc += v * x[*c as usize];
        }
        acc
    }

    /// Transposed product `Aᵀ·x`.
    ///
    /// Allocates the output; hot paths should prefer
    /// [`CsrMatrix::matvec_t_into`] with a reused buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        self.matvec_t_into(x, &mut out);
        out
    }

    /// Allocation-free transposed product `out ← Aᵀ·x`.
    ///
    /// Sequential scatter over rows: the accumulation order into each
    /// output element is part of the workspace's determinism contract, so
    /// this path never parallelizes. Iteration-heavy callers (AMP) hold an
    /// explicitly [`CsrMatrix::transpose`]d copy instead, whose *forward*
    /// product is an equivalent gather with the same per-element
    /// accumulation order — and that one parallelizes across rows.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `out.len() != cols`.
    pub fn matvec_t_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "CsrMatrix::matvec_t: length mismatch");
        assert_eq!(
            out.len(),
            self.cols,
            "CsrMatrix::matvec_t: output length mismatch"
        );
        out.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                out[*c as usize] += v * xr;
            }
        }
    }

    /// The transposed matrix in CSR form.
    ///
    /// Row `c` of the result stores the entries of column `c` ordered by
    /// original row index — so `transpose().matvec(x)` accumulates each
    /// output element in exactly the same order as [`CsrMatrix::matvec_t`],
    /// making the two bit-identical on finite inputs while the former
    /// parallelizes across rows. Built once per decode by the AMP
    /// preprocessing, never per iteration.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        let mut next = counts.clone();
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                let slot = next[*c as usize];
                col_idx[slot] = r as u32;
                values[slot] = *v;
                next[*c as usize] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr: counts,
            col_idx,
            values,
        }
    }

    /// Densifies into a [`crate::Matrix`] (intended for tests and small
    /// instances only).
    pub fn to_dense(&self) -> crate::Matrix {
        let mut m = crate::Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                *m.get_mut(r, *c as usize) = *v;
            }
        }
        m
    }

    /// Sum of all stored values (for a multigraph biadjacency: total number
    /// of edge slots, i.e. `m·Γ`).
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            4,
            &[
                (0, 1, 2.0),
                (0, 3, 1.0),
                (1, 0, 5.0),
                (2, 2, -1.0),
                (2, 0, 4.0),
            ],
        )
    }

    #[test]
    fn shape_and_nnz() {
        let m = sample();
        assert_eq!((m.rows(), m.cols(), m.nnz()), (3, 4, 5));
    }

    #[test]
    fn get_stored_and_missing() {
        let m = sample();
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(2, 0), 4.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(1, 2, &[(0, 1, 1.0), (0, 1, 1.0), (0, 1, 1.0)]);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn rows_are_sorted_by_column() {
        let m = sample();
        let (cols, _) = m.row(2);
        assert_eq!(cols, &[0, 2]);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = CsrMatrix::from_triplets(2, 2, &[]);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn triplet_out_of_bounds_panics() {
        CsrMatrix::from_triplets(1, 1, &[(0, 1, 1.0)]);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let d = m.to_dense();
        let x = [1.0, -1.0, 0.5, 2.0];
        assert_eq!(m.matvec(&x), d.matvec(&x));
    }

    #[test]
    fn matvec_t_matches_dense() {
        let m = sample();
        let d = m.to_dense();
        let x = [1.0, -1.0, 0.5];
        assert_eq!(m.matvec_t(&x), d.matvec_t(&x));
    }

    #[test]
    fn sum_counts_all_slots() {
        assert_eq!(sample().sum(), 11.0);
    }

    #[test]
    fn from_sorted_rows_matches_triplets() {
        let m = sample();
        let rebuilt = CsrMatrix::from_sorted_rows(
            3,
            4,
            (0..3).map(|r| {
                let (cols, vals) = m.row(r);
                cols.iter()
                    .copied()
                    .zip(vals.iter().copied())
                    .collect::<Vec<_>>()
            }),
        );
        assert_eq!(rebuilt, m);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_sorted_rows_rejects_unsorted() {
        CsrMatrix::from_sorted_rows(1, 3, [vec![(2u32, 1.0), (1, 1.0)]]);
    }

    #[test]
    fn transpose_swaps_entries() {
        let m = sample();
        let t = m.transpose();
        assert_eq!((t.rows(), t.cols(), t.nnz()), (4, 3, 5));
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                assert_eq!(m.get(r, c), t.get(c, r), "entry ({r},{c})");
            }
        }
    }

    #[test]
    fn transpose_matvec_equals_matvec_t() {
        let m = sample();
        let x = [1.0, -1.0, 0.5];
        assert_eq!(m.transpose().matvec(&x), m.matvec_t(&x));
    }

    #[test]
    fn into_variants_match_allocating_products() {
        let m = sample();
        let x = [1.0, -1.0, 0.5, 2.0];
        let y = [0.25, -0.5, 4.0];
        let mut fwd = vec![7.0; 3];
        m.matvec_into(&x, &mut fwd);
        assert_eq!(fwd, m.matvec(&x));
        let mut t = vec![7.0; 4];
        m.matvec_t_into(&y, &mut t);
        assert_eq!(t, m.matvec_t(&y));
    }

    #[test]
    fn parallel_matvec_is_bit_identical_to_sequential() {
        use rand::{Rng, SeedableRng};
        // Large enough to clear PAR_FLOP_THRESHOLD: 600 x 600 with ~40%
        // density is ~144k stored entries.
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let (rows, cols) = (600, 600);
        let triplets: Vec<(usize, usize, f64)> = (0..rows * cols / 4)
            .map(|_| {
                (
                    rng.gen_range(0..rows),
                    rng.gen_range(0..cols),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let m = CsrMatrix::from_triplets(rows, cols, &triplets);
        assert!(m.nnz() >= crate::PAR_FLOP_THRESHOLD, "nnz={}", m.nnz());
        let x: Vec<f64> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let seq: Vec<f64> = (0..rows).map(|r| m.row_dot(r, &x)).collect();
        for threads in [1usize, 2, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let par = pool.install(|| m.matvec(&x));
            assert!(
                par.iter()
                    .zip(&seq)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "threads={threads}: parallel product differs"
            );
        }
    }

    proptest! {
        /// CSR and dense products agree on random multigraph-like matrices.
        #[test]
        fn csr_equals_dense(
            rows in 1usize..10,
            cols in 1usize..10,
            seed in 0u64..500,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let nnz = rng.gen_range(0..rows * cols * 2);
            let triplets: Vec<(usize, usize, f64)> = (0..nnz)
                .map(|_| (rng.gen_range(0..rows), rng.gen_range(0..cols), 1.0))
                .collect();
            let m = CsrMatrix::from_triplets(rows, cols, &triplets);
            let d = m.to_dense();
            let x: Vec<f64> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let y: Vec<f64> = (0..rows).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let fwd_sparse = m.matvec(&x);
            let fwd_dense = d.matvec(&x);
            for (a, b) in fwd_sparse.iter().zip(&fwd_dense) {
                prop_assert!((a - b).abs() < 1e-9);
            }
            let t_sparse = m.matvec_t(&y);
            let t_dense = d.matvec_t(&y);
            for (a, b) in t_sparse.iter().zip(&t_dense) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }

        /// Triplet duplicate-merge preserves the total sum.
        #[test]
        fn sum_is_preserved(seed in 0u64..500) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let triplets: Vec<(usize, usize, f64)> = (0..rng.gen_range(0..50))
                .map(|_| (rng.gen_range(0..5), rng.gen_range(0..5), rng.gen_range(0.0..2.0)))
                .collect();
            let total: f64 = triplets.iter().map(|t| t.2).sum();
            let m = CsrMatrix::from_triplets(5, 5, &triplets);
            prop_assert!((m.sum() - total).abs() < 1e-9);
        }
    }
}
