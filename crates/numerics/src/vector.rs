//! Dense vector operations on `f64` slices.
//!
//! These free functions implement the handful of BLAS-level-1 primitives the
//! AMP iteration and the score bookkeeping need. All functions panic on
//! mismatched lengths — in this workspace a length mismatch is always a
//! programming error, never a data error.

/// Resets `buf` to exactly `len` copies of `value`, reusing its capacity.
///
/// The canonical workspace-buffer reset: `clear` + `resize` never shrinks
/// the allocation, so repeated decodes on same-shaped problems stay off
/// the allocator (shared by the greedy, BP and AMP workspaces).
pub fn resize_fill<T: Copy>(buf: &mut Vec<T>, len: usize, value: T) {
    buf.clear();
    buf.resize(len, value);
}

/// Dot product `xᵀy`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
///
/// # Examples
///
/// ```
/// let x = [1.0, 2.0, 3.0];
/// let y = [4.0, 5.0, 6.0];
/// assert_eq!(npd_numerics::vector::dot(&x, &y), 32.0);
/// ```
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// In-place `y ← y + alpha * x` (the BLAS `axpy`).
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place scaling `x ← alpha * x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm `‖x‖₂`.
///
/// Uses a scaled accumulation so intermediate squares cannot overflow for
/// inputs whose absolute values are representable.
///
/// # Examples
///
/// ```
/// assert_eq!(npd_numerics::vector::norm2(&[3.0, 4.0]), 5.0);
/// ```
pub fn norm2(x: &[f64]) -> f64 {
    let max = x.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    if max == 0.0 || !max.is_finite() {
        return max;
    }
    let sum: f64 = x.iter().map(|v| (v / max) * (v / max)).sum();
    max * sum.sqrt()
}

/// Squared Euclidean norm `‖x‖₂²`.
pub fn norm2_sq(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

/// Element-wise difference `x − y` as a new vector.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Element-wise sum `x + y` as a new vector.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "add: length mismatch");
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Maximum absolute difference `‖x − y‖∞`, useful as a convergence check.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "max_abs_diff: length mismatch");
    x.iter()
        .zip(y)
        .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
}

/// Indices of the `k` largest entries of `x`, ties broken toward the smaller
/// index (deterministic).
///
/// This is the rank-selection step of the greedy decoder: the `k` agents with
/// the highest neighborhood scores are declared to hold bit one.
///
/// # Panics
///
/// Panics if `k > x.len()`.
///
/// # Examples
///
/// ```
/// let idx = npd_numerics::vector::top_k_indices(&[0.5, 2.0, 1.5, 2.0], 2);
/// assert_eq!(idx, vec![1, 3]);
/// ```
pub fn top_k_indices(x: &[f64], k: usize) -> Vec<usize> {
    assert!(k <= x.len(), "top_k_indices: k={} > len={}", k, x.len());
    let mut order: Vec<usize> = (0..x.len()).collect();
    order.sort_by(|&a, &b| {
        x[b].partial_cmp(&x[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut out: Vec<usize> = order.into_iter().take(k).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_hand_computation() {
        assert_eq!(dot(&[1.0, -2.0], &[3.0, 4.0]), -5.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn norm2_is_pythagorean() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn norm2_handles_large_values_without_overflow() {
        let big = 1e200;
        let n = norm2(&[big, big]);
        assert!((n - big * std::f64::consts::SQRT_2).abs() / n < 1e-12);
    }

    #[test]
    fn norm2_of_empty_and_zero() {
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn norm2_sq_matches_norm2() {
        let x = [1.0, 2.0, 2.0];
        assert!((norm2_sq(&x) - norm2(&x).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn add_sub_roundtrip() {
        let x = vec![1.0, 2.0];
        let y = vec![0.5, -0.5];
        assert_eq!(sub(&add(&x, &y), &y), x);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_simple() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn max_abs_diff_finds_worst_coordinate() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[1.5, 4.0]), 1.0);
    }

    #[test]
    fn top_k_selects_largest_and_sorts_indices() {
        let x = [0.1, 9.0, -1.0, 3.0, 8.0];
        assert_eq!(top_k_indices(&x, 3), vec![1, 3, 4]);
    }

    #[test]
    fn top_k_breaks_ties_by_index() {
        let x = [2.0, 2.0, 2.0];
        assert_eq!(top_k_indices(&x, 2), vec![0, 1]);
    }

    #[test]
    fn top_k_zero_and_full() {
        let x = [1.0, 2.0];
        assert!(top_k_indices(&x, 0).is_empty());
        assert_eq!(top_k_indices(&x, 2), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "top_k_indices")]
    fn top_k_too_large_panics() {
        top_k_indices(&[1.0], 2);
    }
}
